//! Wire format for the discovery protocol.
//!
//! A small, explicit binary codec (length-prefixed strings, fixed-width
//! integers, big-endian) rather than a serde format: the MAC's MTU matters
//! here — lookup replies are packed until they no longer fit, with a
//! truncation flag, exactly the kind of constraint a 1500-byte frame imposes
//! on a real discovery protocol.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Globally unique service identifier (provider-generated).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ServiceId(pub u64);

/// A registered service: its type, searchable attributes, and an opaque
/// proxy blob (the stand-in for Jini's downloadable proxy object — "mobile
/// code" in the paper's terms).
#[derive(Clone, Debug, PartialEq)]
pub struct ServiceItem {
    /// Identifier.
    pub id: ServiceId,
    /// Service type, e.g. `"projector/display"`.
    pub kind: String,
    /// Searchable key/value attributes.
    pub attributes: Vec<(String, String)>,
    /// Node providing the service (who to talk to after lookup).
    pub provider: u32,
    /// Opaque proxy payload handed to clients.
    pub proxy: Bytes,
}

impl ServiceItem {
    /// Attribute lookup by key.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// A lookup template: `kind` must match exactly if present; every listed
/// attribute must be present with the same value.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Template {
    /// Required service type (`None` = any).
    pub kind: Option<String>,
    /// Required attribute values.
    pub attributes: Vec<(String, String)>,
}

impl Template {
    /// Match-anything template.
    pub fn any() -> Self {
        Template::default()
    }

    /// Template requiring a service type.
    pub fn of_kind(kind: &str) -> Self {
        Template {
            kind: Some(kind.to_string()),
            attributes: Vec::new(),
        }
    }

    /// Add a required attribute.
    pub fn with_attr(mut self, key: &str, value: &str) -> Self {
        self.attributes.push((key.to_string(), value.to_string()));
        self
    }

    /// Does `item` satisfy this template?
    pub fn matches(&self, item: &ServiceItem) -> bool {
        if let Some(k) = &self.kind {
            if *k != item.kind {
                return false;
            }
        }
        self.attributes
            .iter()
            .all(|(k, v)| item.attr(k) == Some(v.as_str()))
    }
}

/// Event kinds pushed to subscribers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A matching service appeared.
    Registered,
    /// A matching service's lease lapsed.
    Expired,
    /// A matching service withdrew.
    Unregistered,
    /// A matching service re-registered with *different* content
    /// (attributes, proxy, provider…) — subscribers holding a cached
    /// `ServiceItem` must refresh it. A pure lease refresh (identical
    /// item) emits nothing.
    Updated,
}

/// A discovery-protocol message.
#[derive(Clone, Debug, PartialEq)]
pub enum Msg {
    /// Client/provider multicast: "any lookup services out there?"
    DiscoverReq {
        /// Matches responses to requests.
        nonce: u64,
    },
    /// Registrar's unicast answer.
    DiscoverResp {
        /// Echoed nonce.
        nonce: u64,
    },
    /// Provider registers (or re-registers) a service.
    Register {
        /// The service.
        item: ServiceItem,
        /// Requested lease, milliseconds.
        lease_ms: u64,
    },
    /// Registrar confirms a registration.
    RegisterAck {
        /// The service id registered.
        id: ServiceId,
        /// Granted lease, milliseconds (≤ requested).
        granted_ms: u64,
    },
    /// Provider renews a lease.
    Renew {
        /// The service id.
        id: ServiceId,
    },
    /// Registrar answers a renewal.
    RenewAck {
        /// The service id.
        id: ServiceId,
        /// False if the registration is unknown (lapsed): re-register.
        ok: bool,
        /// New lease if `ok`, milliseconds.
        granted_ms: u64,
    },
    /// Provider withdraws a service.
    Unregister {
        /// The service id.
        id: ServiceId,
    },
    /// Client queries for matching services.
    Lookup {
        /// Matches replies to queries.
        req: u64,
        /// What to match.
        template: Template,
    },
    /// Registrar's reply (possibly truncated to fit the MTU).
    LookupReply {
        /// Echoed request id.
        req: u64,
        /// Matching services (MTU-bounded prefix).
        items: Vec<ServiceItem>,
        /// True if more matches existed than fit.
        truncated: bool,
    },
    /// Client subscribes to events matching a template.
    Subscribe {
        /// What to watch.
        template: Template,
    },
    /// Registrar pushes an event to a subscriber.
    Event {
        /// What happened.
        kind: EventKind,
        /// To which service.
        item: ServiceItem,
    },
}

/// Protocol discriminator: first byte of every discovery message, so apps
/// multiplexing several protocols on one node can route unambiguously.
pub const PROTO_DISCOVERY: u8 = 0xD1;

const TAG_DISCOVER_REQ: u8 = 1;
const TAG_DISCOVER_RESP: u8 = 2;
const TAG_REGISTER: u8 = 3;
const TAG_REGISTER_ACK: u8 = 4;
const TAG_RENEW: u8 = 5;
const TAG_RENEW_ACK: u8 = 6;
const TAG_UNREGISTER: u8 = 7;
const TAG_LOOKUP: u8 = 8;
const TAG_LOOKUP_REPLY: u8 = 9;
const TAG_SUBSCRIBE: u8 = 10;
const TAG_EVENT: u8 = 11;

/// Codec errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// Buffer ended mid-message.
    Truncated,
    /// Unknown message tag.
    BadTag(u8),
    /// String was not UTF-8.
    BadString,
    /// Bytes remained after a well-formed message — a framing bug or a
    /// smuggled payload; wire messages must parse exactly.
    TrailingBytes {
        /// How many bytes were left over.
        remaining: usize,
    },
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "message truncated"),
            CodecError::BadTag(t) => write!(f, "unknown message tag {t}"),
            CodecError::BadString => write!(f, "invalid UTF-8 in string"),
            CodecError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after message")
            }
        }
    }
}

impl std::error::Error for CodecError {}

pub(crate) fn put_str(buf: &mut BytesMut, s: &str) {
    debug_assert!(s.len() <= u16::MAX as usize, "string too long for codec");
    buf.put_u16(s.len() as u16);
    buf.put_slice(s.as_bytes());
}

pub(crate) fn get_str(buf: &mut Bytes) -> Result<String, CodecError> {
    if buf.remaining() < 2 {
        return Err(CodecError::Truncated);
    }
    let len = buf.get_u16() as usize;
    if buf.remaining() < len {
        return Err(CodecError::Truncated);
    }
    let raw = buf.split_to(len);
    String::from_utf8(raw.to_vec()).map_err(|_| CodecError::BadString)
}

pub(crate) fn put_item(buf: &mut BytesMut, item: &ServiceItem) {
    buf.put_u64(item.id.0);
    put_str(buf, &item.kind);
    buf.put_u16(item.attributes.len() as u16);
    for (k, v) in &item.attributes {
        put_str(buf, k);
        put_str(buf, v);
    }
    buf.put_u32(item.provider);
    buf.put_u16(item.proxy.len() as u16);
    buf.put_slice(&item.proxy);
}

pub(crate) fn get_item(buf: &mut Bytes) -> Result<ServiceItem, CodecError> {
    if buf.remaining() < 8 {
        return Err(CodecError::Truncated);
    }
    let id = ServiceId(buf.get_u64());
    let kind = get_str(buf)?;
    if buf.remaining() < 2 {
        return Err(CodecError::Truncated);
    }
    let n = buf.get_u16() as usize;
    let mut attributes = Vec::with_capacity(n);
    for _ in 0..n {
        let k = get_str(buf)?;
        let v = get_str(buf)?;
        attributes.push((k, v));
    }
    if buf.remaining() < 6 {
        return Err(CodecError::Truncated);
    }
    let provider = buf.get_u32();
    let proxy_len = buf.get_u16() as usize;
    if buf.remaining() < proxy_len {
        return Err(CodecError::Truncated);
    }
    let proxy = buf.split_to(proxy_len);
    Ok(ServiceItem {
        id,
        kind,
        attributes,
        provider,
        proxy,
    })
}

pub(crate) fn put_template(buf: &mut BytesMut, t: &Template) {
    match &t.kind {
        Some(k) => {
            buf.put_u8(1);
            put_str(buf, k);
        }
        None => buf.put_u8(0),
    }
    buf.put_u16(t.attributes.len() as u16);
    for (k, v) in &t.attributes {
        put_str(buf, k);
        put_str(buf, v);
    }
}

pub(crate) fn get_template(buf: &mut Bytes) -> Result<Template, CodecError> {
    if buf.remaining() < 1 {
        return Err(CodecError::Truncated);
    }
    let kind = if buf.get_u8() == 1 {
        Some(get_str(buf)?)
    } else {
        None
    };
    if buf.remaining() < 2 {
        return Err(CodecError::Truncated);
    }
    let n = buf.get_u16() as usize;
    let mut attributes = Vec::with_capacity(n);
    for _ in 0..n {
        let k = get_str(buf)?;
        let v = get_str(buf)?;
        attributes.push((k, v));
    }
    Ok(Template { kind, attributes })
}

impl Msg {
    /// Encode to wire bytes (prefixed with [`PROTO_DISCOVERY`]).
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(64);
        buf.put_u8(PROTO_DISCOVERY);
        match self {
            Msg::DiscoverReq { nonce } => {
                buf.put_u8(TAG_DISCOVER_REQ);
                buf.put_u64(*nonce);
            }
            Msg::DiscoverResp { nonce } => {
                buf.put_u8(TAG_DISCOVER_RESP);
                buf.put_u64(*nonce);
            }
            Msg::Register { item, lease_ms } => {
                buf.put_u8(TAG_REGISTER);
                buf.put_u64(*lease_ms);
                put_item(&mut buf, item);
            }
            Msg::RegisterAck { id, granted_ms } => {
                buf.put_u8(TAG_REGISTER_ACK);
                buf.put_u64(id.0);
                buf.put_u64(*granted_ms);
            }
            Msg::Renew { id } => {
                buf.put_u8(TAG_RENEW);
                buf.put_u64(id.0);
            }
            Msg::RenewAck {
                id,
                ok,
                granted_ms,
            } => {
                buf.put_u8(TAG_RENEW_ACK);
                buf.put_u64(id.0);
                buf.put_u8(*ok as u8);
                buf.put_u64(*granted_ms);
            }
            Msg::Unregister { id } => {
                buf.put_u8(TAG_UNREGISTER);
                buf.put_u64(id.0);
            }
            Msg::Lookup { req, template } => {
                buf.put_u8(TAG_LOOKUP);
                buf.put_u64(*req);
                put_template(&mut buf, template);
            }
            Msg::LookupReply {
                req,
                items,
                truncated,
            } => {
                buf.put_u8(TAG_LOOKUP_REPLY);
                buf.put_u64(*req);
                buf.put_u8(*truncated as u8);
                buf.put_u16(items.len() as u16);
                for item in items {
                    put_item(&mut buf, item);
                }
            }
            Msg::Subscribe { template } => {
                buf.put_u8(TAG_SUBSCRIBE);
                put_template(&mut buf, template);
            }
            Msg::Event { kind, item } => {
                buf.put_u8(TAG_EVENT);
                buf.put_u8(match kind {
                    EventKind::Registered => 0,
                    EventKind::Expired => 1,
                    EventKind::Unregistered => 2,
                    EventKind::Updated => 3,
                });
                put_item(&mut buf, item);
            }
        }
        buf.freeze()
    }

    /// Decode from wire bytes (expects the [`PROTO_DISCOVERY`] prefix).
    pub fn decode(mut buf: Bytes) -> Result<Msg, CodecError> {
        if buf.remaining() < 2 {
            return Err(CodecError::Truncated);
        }
        let proto = buf.get_u8();
        if proto != PROTO_DISCOVERY {
            return Err(CodecError::BadTag(proto));
        }
        let tag = buf.get_u8();
        let need_u64 = |buf: &mut Bytes| -> Result<u64, CodecError> {
            if buf.remaining() < 8 {
                Err(CodecError::Truncated)
            } else {
                Ok(buf.get_u64())
            }
        };
        let msg = match tag {
            TAG_DISCOVER_REQ => Ok(Msg::DiscoverReq {
                nonce: need_u64(&mut buf)?,
            }),
            TAG_DISCOVER_RESP => Ok(Msg::DiscoverResp {
                nonce: need_u64(&mut buf)?,
            }),
            TAG_REGISTER => {
                let lease_ms = need_u64(&mut buf)?;
                let item = get_item(&mut buf)?;
                Ok(Msg::Register { item, lease_ms })
            }
            TAG_REGISTER_ACK => Ok(Msg::RegisterAck {
                id: ServiceId(need_u64(&mut buf)?),
                granted_ms: need_u64(&mut buf)?,
            }),
            TAG_RENEW => Ok(Msg::Renew {
                id: ServiceId(need_u64(&mut buf)?),
            }),
            TAG_RENEW_ACK => {
                let id = ServiceId(need_u64(&mut buf)?);
                if buf.remaining() < 1 {
                    return Err(CodecError::Truncated);
                }
                let ok = buf.get_u8() != 0;
                let granted_ms = need_u64(&mut buf)?;
                Ok(Msg::RenewAck {
                    id,
                    ok,
                    granted_ms,
                })
            }
            TAG_UNREGISTER => Ok(Msg::Unregister {
                id: ServiceId(need_u64(&mut buf)?),
            }),
            TAG_LOOKUP => {
                let req = need_u64(&mut buf)?;
                let template = get_template(&mut buf)?;
                Ok(Msg::Lookup { req, template })
            }
            TAG_LOOKUP_REPLY => {
                let req = need_u64(&mut buf)?;
                if buf.remaining() < 3 {
                    return Err(CodecError::Truncated);
                }
                let truncated = buf.get_u8() != 0;
                let n = buf.get_u16() as usize;
                let mut items = Vec::with_capacity(n.min(64));
                for _ in 0..n {
                    items.push(get_item(&mut buf)?);
                }
                Ok(Msg::LookupReply {
                    req,
                    items,
                    truncated,
                })
            }
            TAG_SUBSCRIBE => Ok(Msg::Subscribe {
                template: get_template(&mut buf)?,
            }),
            TAG_EVENT => {
                if buf.remaining() < 1 {
                    return Err(CodecError::Truncated);
                }
                let kind = match buf.get_u8() {
                    0 => EventKind::Registered,
                    1 => EventKind::Expired,
                    2 => EventKind::Unregistered,
                    3 => EventKind::Updated,
                    t => return Err(CodecError::BadTag(t)),
                };
                let item = get_item(&mut buf)?;
                Ok(Msg::Event { kind, item })
            }
            t => Err(CodecError::BadTag(t)),
        }?;
        // Wire messages must parse exactly; leftover bytes mean a framing
        // bug or a smuggled payload riding behind the message.
        if buf.remaining() > 0 {
            return Err(CodecError::TrailingBytes {
                remaining: buf.remaining(),
            });
        }
        Ok(msg)
    }

    /// Encoded size in bytes (used for MTU packing).
    pub fn encoded_len(&self) -> usize {
        self.encode().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item() -> ServiceItem {
        ServiceItem {
            id: ServiceId(0xDEADBEEF),
            kind: "projector/display".into(),
            attributes: vec![
                ("room".into(), "A-101".into()),
                ("resolution".into(), "1024x768".into()),
            ],
            provider: 7,
            proxy: Bytes::from_static(b"proxy-code"),
        }
    }

    #[test]
    fn all_variants_round_trip() {
        let msgs = vec![
            Msg::DiscoverReq { nonce: 42 },
            Msg::DiscoverResp { nonce: 42 },
            Msg::Register {
                item: item(),
                lease_ms: 30_000,
            },
            Msg::RegisterAck {
                id: ServiceId(1),
                granted_ms: 10_000,
            },
            Msg::Renew { id: ServiceId(9) },
            Msg::RenewAck {
                id: ServiceId(9),
                ok: true,
                granted_ms: 10_000,
            },
            Msg::Unregister { id: ServiceId(9) },
            Msg::Lookup {
                req: 5,
                template: Template::of_kind("projector/display").with_attr("room", "A-101"),
            },
            Msg::LookupReply {
                req: 5,
                items: vec![item(), item()],
                truncated: true,
            },
            Msg::Subscribe {
                template: Template::any(),
            },
            Msg::Event {
                kind: EventKind::Expired,
                item: item(),
            },
        ];
        for m in msgs {
            let decoded = Msg::decode(m.encode()).expect("decode");
            assert_eq!(decoded, m);
        }
    }

    #[test]
    fn truncated_buffer_rejected_not_panicking() {
        let full = Msg::Register {
            item: item(),
            lease_ms: 1,
        }
        .encode();
        for cut in 0..full.len() {
            let r = Msg::decode(full.slice(0..cut));
            assert!(r.is_err(), "prefix of {cut} bytes decoded successfully");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let msgs = [
            Msg::DiscoverReq { nonce: 42 },
            Msg::Register {
                item: item(),
                lease_ms: 1,
            },
            Msg::LookupReply {
                req: 5,
                items: vec![item()],
                truncated: false,
            },
        ];
        for m in msgs {
            let mut buf = bytes::BytesMut::new();
            buf.put_slice(&m.encode());
            buf.put_slice(&[0xAA, 0xBB]);
            assert_eq!(
                Msg::decode(buf.freeze()),
                Err(CodecError::TrailingBytes { remaining: 2 })
            );
        }
    }

    #[test]
    fn unknown_tag_rejected() {
        assert_eq!(
            Msg::decode(Bytes::from_static(&[200, 0, 0])),
            Err(CodecError::BadTag(200))
        );
    }

    #[test]
    fn bad_utf8_rejected() {
        // Hand-craft a DiscoverReq-like Register with invalid UTF-8 kind.
        let mut buf = bytes::BytesMut::new();
        buf.put_u8(PROTO_DISCOVERY);
        buf.put_u8(3); // TAG_REGISTER
        buf.put_u64(100); // lease
        buf.put_u64(1); // id
        buf.put_u16(2); // kind length
        buf.put_slice(&[0xFF, 0xFE]); // invalid UTF-8
        assert_eq!(Msg::decode(buf.freeze()), Err(CodecError::BadString));
    }

    #[test]
    fn template_matching_semantics() {
        let it = item();
        assert!(Template::any().matches(&it));
        assert!(Template::of_kind("projector/display").matches(&it));
        assert!(!Template::of_kind("printer").matches(&it));
        assert!(Template::of_kind("projector/display")
            .with_attr("room", "A-101")
            .matches(&it));
        assert!(!Template::of_kind("projector/display")
            .with_attr("room", "B-202")
            .matches(&it));
        assert!(!Template::any().with_attr("missing", "x").matches(&it));
    }

    #[test]
    fn attr_lookup() {
        let it = item();
        assert_eq!(it.attr("room"), Some("A-101"));
        assert_eq!(it.attr("nope"), None);
    }

    #[test]
    fn encoded_len_matches_encoding() {
        let m = Msg::LookupReply {
            req: 1,
            items: vec![item()],
            truncated: false,
        };
        assert_eq!(m.encoded_len(), m.encode().len());
    }
}
