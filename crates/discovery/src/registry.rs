//! The lookup service's state machine, independent of the network.
//!
//! Pure logic: register/renew/expire/unregister with leases, template
//! matching, and subscription bookkeeping. The [`crate::apps::RegistrarApp`]
//! wraps this in protocol I/O; keeping the core pure makes the lease
//! invariants (no registration outlives its lease without renewal; events
//! fire exactly once per transition) directly testable.

use crate::codec::{EventKind, ServiceId, ServiceItem, Template};
use aroma_sim::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// A live registration.
#[derive(Clone, Debug)]
pub struct Registration {
    /// The service.
    pub item: ServiceItem,
    /// When the lease lapses unless renewed.
    pub lease_expires: SimTime,
}

/// An event produced by a registry transition, addressed to a subscriber.
#[derive(Clone, Debug, PartialEq)]
pub struct RegistryEvent {
    /// Subscriber's node id (as registered via [`ServiceRegistry::subscribe`]).
    pub subscriber: u32,
    /// What happened.
    pub kind: EventKind,
    /// The service involved.
    pub item: ServiceItem,
}

/// The lookup service's registration table.
///
/// `BTreeMap`-backed so that *every* traversal — lookup replies, the expiry
/// sweep's event order, model-checker snapshots — happens in `ServiceId`
/// order by construction. The registry's output reaches protocol replies,
/// subscriber notifications, and chaos-report traces, all of which the
/// determinism gate (`aroma-lint`, DESIGN.md §14) requires to be pure
/// functions of the seed; a hash-backed table made the expiry event order
/// depend on `HashMap`'s per-process iteration order.
#[derive(Clone, Debug)]
pub struct ServiceRegistry {
    /// Maximum lease the registrar will grant.
    pub max_lease: SimDuration,
    regs: BTreeMap<ServiceId, Registration>,
    subs: Vec<(u32, Template)>,
}

impl ServiceRegistry {
    /// Registry granting leases of at most `max_lease`.
    pub fn new(max_lease: SimDuration) -> Self {
        ServiceRegistry {
            max_lease,
            regs: BTreeMap::new(),
            subs: Vec::new(),
        }
    }

    /// Number of live registrations (expired ones may linger until
    /// [`ServiceRegistry::expire`] runs).
    pub fn len(&self) -> usize {
        self.regs.len()
    }

    /// True when no registrations exist.
    pub fn is_empty(&self) -> bool {
        self.regs.is_empty()
    }

    /// Register (or refresh) a service. Returns the granted lease and any
    /// subscriber events: `Registered` for a fresh id, `Updated` when an
    /// existing id comes back with *different* content (attributes, proxy,
    /// provider…), and nothing for a pure lease refresh with an identical
    /// item.
    pub fn register(
        &mut self,
        now: SimTime,
        item: ServiceItem,
        requested: SimDuration,
    ) -> (SimDuration, Vec<RegistryEvent>) {
        let granted = requested.min(self.max_lease);
        let kind = match self.regs.get(&item.id) {
            None => Some(EventKind::Registered),
            Some(prev) if prev.item != item => Some(EventKind::Updated),
            Some(_) => None,
        };
        self.regs.insert(
            item.id,
            Registration {
                item: item.clone(),
                lease_expires: now + granted,
            },
        );
        let events = match kind {
            Some(k) => self.events_for(k, &item),
            None => Vec::new(),
        };
        (granted, events)
    }

    /// Renew a lease. Returns the new lease if the registration is live.
    ///
    /// ## The expiry boundary
    ///
    /// A lease expiring exactly at `now` is **already dead** — the boundary
    /// is inclusive on the dead side (`lease_expires <= now` ⇒ lapsed), and
    /// every reader of `lease_expires` in this registry agrees on it:
    /// `renew` rejects at the instant of expiry (the caller must
    /// re-register), [`ServiceRegistry::lookup_live`] hides the entry from
    /// that same instant (`lease_expires > now` to be served), and
    /// [`ServiceRegistry::expire`] sweeps it (`lease_expires <= now`). If
    /// any one of these flipped to the other convention a service could be
    /// looked up at an instant where its renewal is refused (or vice
    /// versa), re-opening the stale-lookup window `aroma-check` proves
    /// closed. Pinned by `expiry_boundary_*` unit tests below.
    pub fn renew(&mut self, now: SimTime, id: ServiceId) -> Option<SimDuration> {
        let reg = self.regs.get_mut(&id)?;
        if reg.lease_expires <= now {
            return None; // lapsed; caller must re-register
        }
        let granted = self.max_lease;
        reg.lease_expires = now + granted;
        Some(granted)
    }

    /// Withdraw a service. Returns subscriber events if it existed.
    pub fn unregister(&mut self, id: ServiceId) -> Vec<RegistryEvent> {
        match self.regs.remove(&id) {
            Some(reg) => self.events_for(EventKind::Unregistered, &reg.item),
            None => Vec::new(),
        }
    }

    /// Drop every registration whose lease has lapsed; returns their events
    /// in `ServiceId` order (`regs` is a `BTreeMap`, so the sweep visits —
    /// and notifies subscribers about — lapsed services deterministically;
    /// pinned by `expiry_sweep_event_order_is_registration_order_free`).
    pub fn expire(&mut self, now: SimTime) -> Vec<RegistryEvent> {
        let lapsed: Vec<ServiceId> = self
            .regs
            .iter()
            .filter(|(_, r)| r.lease_expires <= now)
            .map(|(id, _)| *id)
            .collect();
        let mut events = Vec::new();
        for id in lapsed {
            if let Some(reg) = self.regs.remove(&id) {
                events.extend(self.events_for(EventKind::Expired, &reg.item));
            }
        }
        events
    }

    /// Earliest lease expiry among live registrations (to schedule the next
    /// expiry sweep precisely instead of polling).
    pub fn next_expiry(&self) -> Option<SimTime> {
        self.regs.values().map(|r| r.lease_expires).min()
    }

    /// All registrations matching `template`, in `ServiceId` order — by
    /// construction: `regs` is a `BTreeMap`, so no post-hoc sort is needed
    /// for deterministic replies.
    ///
    /// Includes lapsed-but-unswept registrations; protocol-facing callers
    /// must use [`ServiceRegistry::lookup_live`] instead so a lookup
    /// arriving between a lease's expiry instant and the next expiry sweep
    /// never observes the stale entry (the no-stale-lookup invariant
    /// `aroma-check` proves).
    pub fn lookup(&self, template: &Template) -> Vec<&ServiceItem> {
        self.regs
            .values()
            .filter(|r| template.matches(&r.item))
            .map(|r| &r.item)
            .collect()
    }

    /// Registrations matching `template` whose lease is still live as of
    /// `now`, in `ServiceId` order. A lease expiring exactly at `now` is
    /// already dead ([`ServiceRegistry::renew`] uses the same boundary).
    pub fn lookup_live(&self, now: SimTime, template: &Template) -> Vec<&ServiceItem> {
        self.regs
            .values()
            .filter(|r| r.lease_expires > now && template.matches(&r.item))
            .map(|r| &r.item)
            .collect()
    }

    /// Subscribe `node` to events for services matching `template`.
    pub fn subscribe(&mut self, node: u32, template: Template) {
        self.subs.push((node, template));
    }

    /// Number of subscriptions.
    pub fn subscription_count(&self) -> usize {
        self.subs.len()
    }

    /// The stored expiry for `id` (lapsed-but-unswept included).
    pub fn expiry_of(&self, id: ServiceId) -> Option<SimTime> {
        self.regs.get(&id).map(|r| r.lease_expires)
    }

    /// Every stored registration with its expiry, in `ServiceId` order —
    /// including lapsed-but-unswept entries. This is the snapshot capture
    /// path ([`crate::snapshot::LeaseSnapshot`]): persisting the raw table
    /// (not just the live subset) keeps a restored registry byte-equivalent
    /// to the original, sweep-pending entries and all.
    pub fn entries(&self) -> impl Iterator<Item = (&ServiceItem, SimTime)> {
        self.regs.values().map(|r| (&r.item, r.lease_expires))
    }

    /// Install a registration with an exact expiry instant, bypassing lease
    /// capping and subscriber events. Snapshot restore and replicated log
    /// application use this: the lease was granted (and capped, and
    /// notified) by the original registrar; replaying it must reproduce the
    /// stored state bit-for-bit, not re-run grant policy at restore time.
    pub fn install(&mut self, item: ServiceItem, lease_expires: SimTime) {
        self.regs.insert(item.id, Registration { item, lease_expires });
    }

    /// Model-checker introspection (feature `model-check`): every stored
    /// registration as `(id, lease_expires)`, in id order — including
    /// lapsed-but-unswept entries, which `aroma-check` distinguishes
    /// because re-registration semantics differ before and after a sweep.
    #[cfg(feature = "model-check")]
    pub fn snapshot(&self) -> Vec<(ServiceId, SimTime)> {
        self.regs.iter().map(|(id, r)| (*id, r.lease_expires)).collect()
    }

    fn events_for(&self, kind: EventKind, item: &ServiceItem) -> Vec<RegistryEvent> {
        self.subs
            .iter()
            .filter(|(_, t)| t.matches(item))
            .map(|(node, _)| RegistryEvent {
                subscriber: *node,
                kind,
                item: item.clone(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn item(id: u64, kind: &str) -> ServiceItem {
        ServiceItem {
            id: ServiceId(id),
            kind: kind.into(),
            attributes: vec![("room".into(), "A".into())],
            provider: 1,
            proxy: Bytes::new(),
        }
    }

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn register_grants_capped_lease() {
        let mut r = ServiceRegistry::new(SimDuration::from_secs(10));
        let (granted, _) = r.register(t(0), item(1, "a"), SimDuration::from_secs(60));
        assert_eq!(granted, SimDuration::from_secs(10));
        let (granted2, _) = r.register(t(0), item(2, "a"), SimDuration::from_secs(5));
        assert_eq!(granted2, SimDuration::from_secs(5));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn lookup_matches_templates() {
        let mut r = ServiceRegistry::new(SimDuration::from_secs(10));
        r.register(t(0), item(1, "projector"), SimDuration::from_secs(5));
        r.register(t(0), item(2, "printer"), SimDuration::from_secs(5));
        assert_eq!(r.lookup(&Template::any()).len(), 2);
        assert_eq!(r.lookup(&Template::of_kind("projector")).len(), 1);
        assert_eq!(r.lookup(&Template::of_kind("scanner")).len(), 0);
    }

    #[test]
    fn lookup_is_deterministically_ordered() {
        let mut r = ServiceRegistry::new(SimDuration::from_secs(10));
        for id in [5u64, 3, 9, 1] {
            r.register(t(0), item(id, "x"), SimDuration::from_secs(5));
        }
        let ids: Vec<u64> = r.lookup(&Template::any()).iter().map(|i| i.id.0).collect();
        assert_eq!(ids, vec![1, 3, 5, 9]);
    }

    #[test]
    fn replies_and_sweep_events_are_registration_order_free() {
        // The determinism contract (DESIGN.md §14): everything the registry
        // emits — lookup replies AND the expiry sweep's subscriber events —
        // must be a pure function of the registered *set*, not of the order
        // services happened to arrive (nor of any hash seed). Register the
        // same services in several shuffled orders and demand byte-identical
        // behaviour from each registry.
        let ids = [7u64, 2, 9, 4, 1, 8, 3];
        let orders: [&[u64]; 3] = [
            &[7, 2, 9, 4, 1, 8, 3],
            &[1, 2, 3, 4, 7, 8, 9],
            &[9, 8, 7, 4, 3, 2, 1],
        ];
        let mut lookups: Vec<Vec<u64>> = Vec::new();
        let mut sweeps: Vec<Vec<(u64, EventKind)>> = Vec::new();
        for order in orders {
            let mut r = ServiceRegistry::new(SimDuration::from_secs(10));
            r.subscribe(42, Template::any());
            for &id in order {
                // Odd ids get short leases so the sweep fires on a strict
                // subset, in an order the sweep must itself determine.
                let lease = if id % 2 == 1 { 1 } else { 10 };
                r.register(t(0), item(id, "x"), SimDuration::from_secs(lease));
            }
            lookups.push(r.lookup(&Template::any()).iter().map(|i| i.id.0).collect());
            sweeps.push(
                r.expire(t(1_000))
                    .into_iter()
                    .map(|e| (e.item.id.0, e.kind))
                    .collect(),
            );
        }
        let sorted: Vec<u64> = {
            let mut v = ids.to_vec();
            v.sort_unstable();
            v
        };
        for (lookup, sweep) in lookups.iter().zip(&sweeps) {
            assert_eq!(*lookup, sorted, "replies in ServiceId order");
            assert_eq!(
                *sweep,
                vec![
                    (1, EventKind::Expired),
                    (3, EventKind::Expired),
                    (7, EventKind::Expired),
                    (9, EventKind::Expired)
                ],
                "sweep events in ServiceId order"
            );
        }
    }

    #[test]
    fn expiry_removes_lapsed_leases() {
        let mut r = ServiceRegistry::new(SimDuration::from_secs(10));
        r.register(t(0), item(1, "a"), SimDuration::from_secs(1));
        r.register(t(0), item(2, "a"), SimDuration::from_secs(10));
        let ev = r.expire(t(1_000));
        assert_eq!(r.len(), 1);
        assert!(ev.is_empty(), "no subscribers yet");
        assert!(r.lookup(&Template::any())[0].id == ServiceId(2));
    }

    #[test]
    fn lookup_live_hides_lapsed_but_unswept_entries() {
        let mut r = ServiceRegistry::new(SimDuration::from_secs(10));
        r.register(t(0), item(1, "a"), SimDuration::from_secs(1));
        r.register(t(0), item(2, "a"), SimDuration::from_secs(10));
        // No expiry sweep has run: the raw table still holds both, but a
        // protocol reply at t=1s (the expiry boundary is inclusive-dead)
        // must not serve the lapsed service.
        assert_eq!(r.lookup(&Template::any()).len(), 2);
        let live = r.lookup_live(t(1_000), &Template::any());
        assert_eq!(live.len(), 1);
        assert_eq!(live[0].id, ServiceId(2));
        // Just before the boundary it is still live.
        assert_eq!(r.lookup_live(t(999), &Template::any()).len(), 2);
    }

    #[test]
    fn renewal_extends_lease() {
        let mut r = ServiceRegistry::new(SimDuration::from_secs(2));
        r.register(t(0), item(1, "a"), SimDuration::from_secs(2));
        assert!(r.renew(t(1_000), ServiceId(1)).is_some());
        // Would have expired at 2 s without renewal.
        r.expire(t(2_500));
        assert_eq!(r.len(), 1);
        r.expire(t(3_100));
        assert_eq!(r.len(), 0);
    }

    #[test]
    fn renewing_lapsed_or_unknown_fails() {
        let mut r = ServiceRegistry::new(SimDuration::from_secs(1));
        r.register(t(0), item(1, "a"), SimDuration::from_secs(1));
        assert!(r.renew(t(1_000), ServiceId(1)).is_none(), "lease just lapsed");
        assert!(r.renew(t(500), ServiceId(99)).is_none(), "unknown id");
    }

    #[test]
    fn unregister_removes_and_notifies() {
        let mut r = ServiceRegistry::new(SimDuration::from_secs(10));
        r.subscribe(42, Template::of_kind("projector"));
        r.register(t(0), item(1, "projector"), SimDuration::from_secs(5));
        let ev = r.unregister(ServiceId(1));
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].subscriber, 42);
        assert_eq!(ev[0].kind, EventKind::Unregistered);
        assert!(r.is_empty());
        assert!(r.unregister(ServiceId(1)).is_empty(), "double unregister");
    }

    #[test]
    fn subscribers_notified_on_register_and_expire() {
        let mut r = ServiceRegistry::new(SimDuration::from_secs(1));
        r.subscribe(7, Template::of_kind("projector"));
        r.subscribe(8, Template::of_kind("printer"));
        let (_, ev) = r.register(t(0), item(1, "projector"), SimDuration::from_secs(1));
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].subscriber, 7);
        assert_eq!(ev[0].kind, EventKind::Registered);
        let ev = r.expire(t(1_000));
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].kind, EventKind::Expired);
    }

    #[test]
    fn reregistration_does_not_renotify() {
        let mut r = ServiceRegistry::new(SimDuration::from_secs(10));
        r.subscribe(7, Template::any());
        let (_, ev1) = r.register(t(0), item(1, "a"), SimDuration::from_secs(5));
        assert_eq!(ev1.len(), 1);
        let (_, ev2) = r.register(t(100), item(1, "a"), SimDuration::from_secs(5));
        assert!(ev2.is_empty(), "refresh is not a new registration");
    }

    #[test]
    fn changed_reregistration_notifies_updated() {
        let mut r = ServiceRegistry::new(SimDuration::from_secs(10));
        r.subscribe(7, Template::any());
        r.register(t(0), item(1, "a"), SimDuration::from_secs(5));
        // Same id, different attributes: subscribers must learn about it.
        let mut changed = item(1, "a");
        changed.attributes = vec![("room".into(), "B".into())];
        let (_, ev) = r.register(t(100), changed.clone(), SimDuration::from_secs(5));
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].kind, EventKind::Updated);
        assert_eq!(ev[0].item, changed);
        // The stored item was replaced, not just the lease.
        assert_eq!(r.lookup(&Template::any())[0].attributes[0].1, "B");
        // And only subscribers whose template matches hear it.
        let mut r2 = ServiceRegistry::new(SimDuration::from_secs(10));
        r2.subscribe(9, Template::of_kind("printer"));
        r2.register(t(0), item(1, "a"), SimDuration::from_secs(5));
        let mut changed2 = item(1, "a");
        changed2.provider = 99;
        let (_, ev2) = r2.register(t(100), changed2, SimDuration::from_secs(5));
        assert!(ev2.is_empty(), "non-matching subscriber must not be notified");
    }

    #[test]
    fn expiry_boundary_renew_is_inclusive_dead() {
        // Pin: at the exact expiry instant, renewal is refused; one
        // nanosecond earlier it succeeds.
        let mut r = ServiceRegistry::new(SimDuration::from_secs(1));
        r.register(t(0), item(1, "a"), SimDuration::from_secs(1));
        let just_before = SimTime::from_nanos(1_000_000_000 - 1);
        assert!(r.renew(just_before, ServiceId(1)).is_some());
        // (the successful renewal moved the expiry; rebuild to re-test)
        let mut r = ServiceRegistry::new(SimDuration::from_secs(1));
        r.register(t(0), item(1, "a"), SimDuration::from_secs(1));
        assert!(
            r.renew(t(1_000), ServiceId(1)).is_none(),
            "a lease expiring exactly now is already dead for renewal"
        );
    }

    #[test]
    fn expiry_boundary_lookup_live_agrees_with_renew() {
        // Pin: lookup_live sits on the same inclusive-dead boundary as
        // renew — there is no instant where a service is servable but
        // unrenewable, or renewable but hidden.
        let mut r = ServiceRegistry::new(SimDuration::from_secs(1));
        r.register(t(0), item(1, "a"), SimDuration::from_secs(1));
        let just_before = SimTime::from_nanos(1_000_000_000 - 1);
        let at_expiry = t(1_000);
        // One nanosecond before expiry: both live.
        assert_eq!(r.lookup_live(just_before, &Template::any()).len(), 1);
        assert!(r.clone().renew(just_before, ServiceId(1)).is_some());
        // At the exact expiry instant: both dead.
        assert_eq!(r.lookup_live(at_expiry, &Template::any()).len(), 0);
        assert!(r.renew(at_expiry, ServiceId(1)).is_none());
        // And the expiry sweep uses the same boundary.
        assert_eq!(r.expire(at_expiry).len(), 0, "no subscribers");
        assert!(r.is_empty(), "expire(now) sweeps a lease expiring at now");
    }

    #[test]
    fn next_expiry_tracks_minimum() {
        let mut r = ServiceRegistry::new(SimDuration::from_secs(10));
        assert_eq!(r.next_expiry(), None);
        r.register(t(0), item(1, "a"), SimDuration::from_secs(5));
        r.register(t(0), item(2, "a"), SimDuration::from_secs(2));
        assert_eq!(r.next_expiry(), Some(t(2_000)));
    }
}
