//! The replicated registrar as a network application.
//!
//! [`ReplicatedRegistrarApp`] wraps one [`ReplicaNode`] per registrar and
//! wires it into the simulated stack: client traffic (the PR-3 discovery
//! protocol, unchanged on the wire) arrives over the WLAN, replication
//! traffic ([`RepMsg`], `0xD2`-framed) flows over the wired federation
//! links, and three timers drive heartbeats, rank-staggered elections and
//! expiry sweeps. Every state change is "fsynced": the node's
//! [`DurableState`] is re-encoded into a field the fault plane's
//! `ProcessKill` does not clear, so a killed registrar restarts from its
//! snapshot + retained log suffix exactly as a daemon would from disk.
//!
//! Serving discipline (the no-stale-lookup argument, see DESIGN.md §15):
//! only the **active primary** answers `DiscoverReq`, lookups and lease
//! operations. Replicas stay silent towards clients, so after a failover
//! the providers' and clients' existing recovery loops (renew timeout →
//! rediscover) land them on the new primary without any new protocol.
//!
//! Election timeouts are staggered by member rank (`ELECTION_BASE +
//! rank · ELECTION_STAGGER` of primary silence), so the owner of the next
//! epoch campaigns first and elections need no randomness.

use crate::codec::Msg;
use crate::replication::{
    ClientAck, ClusterConfig, DurableState, Effect, RepMsg, RepStats, ReplicaNode,
    PROTO_REPLICATION,
};
use aroma_net::{Address, NetApp, NetCtx, NodeId, MTU_BYTES};
use aroma_sim::telemetry::{Layer, Recorder};
use aroma_sim::SimDuration;
use bytes::Bytes;

const T_HEARTBEAT: u64 = 11;
const T_ELECTION: u64 = 12;
const T_SWEEP: u64 = 13;

/// Primary → replica heartbeat period.
pub const HEARTBEAT_PERIOD: SimDuration = SimDuration::from_millis(100);
/// Base primary-silence span before the rank-1 owner campaigns.
pub const ELECTION_BASE: SimDuration = SimDuration::from_millis(600);
/// Extra silence each further rank waits, so owners campaign in epoch
/// order and elections never race.
pub const ELECTION_STAGGER: SimDuration = SimDuration::from_millis(300);
/// Expiry-sweep (and damper-housekeeping) period.
pub const SWEEP_PERIOD: SimDuration = SimDuration::from_millis(250);

/// A registrar participating in a replicated cluster.
pub struct ReplicatedRegistrarApp {
    cfg: ClusterConfig,
    /// The replication state machine (absent only before `on_start`).
    node: Option<ReplicaNode>,
    /// The persisted durable blob — survives `on_crash` (it is "disk").
    persisted: Option<Bytes>,
    /// False while the fault plane holds this node down.
    alive: bool,
    /// Telemetry mirror baseline: counters already flushed.
    flushed: RepStats,
    /// Lookups answered (this incarnation and prior ones).
    pub lookups_served: u64,
    /// Durable restores performed across restarts.
    pub restores: u64,
    started: bool,
}

impl ReplicatedRegistrarApp {
    /// A cluster member with the given configuration. The experiment must
    /// cable every member pair (`add_wired_link`) and assign node ids
    /// matching `cfg.members`.
    pub fn new(cfg: ClusterConfig) -> Self {
        ReplicatedRegistrarApp {
            cfg,
            node: None,
            persisted: None,
            alive: true,
            flushed: RepStats::default(),
            lookups_served: 0,
            restores: 0,
            started: false,
        }
    }

    /// The replication core, for post-run inspection.
    pub fn replica(&self) -> Option<&ReplicaNode> {
        self.node.as_ref()
    }

    fn rank(&self, me: u32) -> u64 {
        self.cfg.members.iter().position(|&m| m == me).unwrap_or(0) as u64
    }

    fn election_timeout(&self, me: u32) -> SimDuration {
        ELECTION_BASE + SimDuration::from_nanos(ELECTION_STAGGER.as_nanos() * self.rank(me))
    }

    fn arm_timers(&self, ctx: &mut NetCtx<'_>) {
        ctx.set_timer(HEARTBEAT_PERIOD, T_HEARTBEAT);
        ctx.set_timer(self.election_timeout(ctx.node().0), T_ELECTION);
        ctx.set_timer(SWEEP_PERIOD, T_SWEEP);
    }

    /// Carry out the effects the replication core requested, then persist
    /// and mirror the counters into telemetry.
    fn run_effects(&mut self, ctx: &mut NetCtx<'_>, effects: Vec<Effect>) {
        for e in effects {
            match e {
                Effect::Send { to, msg } => {
                    ctx.send_wired(NodeId(to), msg.encode());
                }
                Effect::Notify(ev) => {
                    let msg = Msg::Event { kind: ev.kind, item: ev.item };
                    ctx.send(Address::Node(NodeId(ev.subscriber)), msg.encode());
                }
                Effect::Ack { to, ack } => {
                    let msg = match ack {
                        ClientAck::Register { id, granted_ms } => {
                            Msg::RegisterAck { id, granted_ms }
                        }
                        ClientAck::Renew { id, ok, granted_ms } => {
                            Msg::RenewAck { id, ok, granted_ms }
                        }
                    };
                    ctx.send(Address::Node(NodeId(to)), msg.encode());
                }
            }
        }
        self.persist();
        self.flush_stats(ctx);
    }

    /// Re-encode the durable fraction (the synchronous "fsync" after every
    /// state change; cheap at simulation scale, and what makes
    /// `ProcessKill` recoverable).
    fn persist(&mut self) {
        if let Some(n) = &self.node {
            self.persisted = Some(n.durable().encode());
        }
    }

    /// Mirror `RepStats` deltas into `disc.repl.*` counters.
    fn flush_stats(&mut self, ctx: &mut NetCtx<'_>) {
        let Some(n) = &self.node else { return };
        let s = n.stats;
        let rec = ctx.telemetry();
        if !rec.enabled() {
            self.flushed = s;
            return;
        }
        let d = |a: u64, b: u64| a.saturating_sub(b);
        let pairs: [(&'static str, u64); 9] = [
            ("disc.repl.appends", d(s.appends_tx, self.flushed.appends_tx)),
            ("disc.repl.committed", d(s.committed, self.flushed.committed)),
            ("disc.repl.applied", d(s.applied, self.flushed.applied)),
            ("disc.repl.epoch_bumps", d(s.epoch_bumps, self.flushed.epoch_bumps)),
            ("disc.repl.elections", d(s.elections, self.flushed.elections)),
            ("disc.repl.snapshots_taken", d(s.snapshots_taken, self.flushed.snapshots_taken)),
            (
                "disc.repl.snapshot_installs_tx",
                d(s.snapshot_installs_tx, self.flushed.snapshot_installs_tx),
            ),
            (
                "disc.repl.snapshot_installs_rx",
                d(s.snapshot_installs_rx, self.flushed.snapshot_installs_rx),
            ),
            ("disc.repl.flap_absorbed", d(s.flap_absorbed, self.flushed.flap_absorbed)),
        ];
        for (name, delta) in pairs {
            if delta > 0 {
                rec.count(name, delta);
            }
        }
        rec.gauge("disc.repl.log_lag", s.log_lag_max as f64);
        if s.epoch_bumps > self.flushed.epoch_bumps {
            let (t, me, epoch, active) = (
                ctx.now().as_nanos(),
                ctx.node().0,
                self.node.as_ref().unwrap().epoch,
                self.node.as_ref().unwrap().is_active(ctx.now()),
            );
            ctx.telemetry().event(t, Layer::Abstract, "repl.epoch", me, epoch as i64, active as i64);
        }
        self.flushed = s;
    }

    /// Serve one lookup from the applied table (active primary only; the
    /// caller checked). Mirrors `RegistrarApp`'s reply packing and its
    /// `lookup.serve` event shape so the chaos experiments read both the
    /// same way.
    fn serve_lookup(&mut self, ctx: &mut NetCtx<'_>, from: NodeId, req: u64, template: crate::codec::Template) {
        let node = self.node.as_ref().unwrap();
        let now = ctx.now();
        self.lookups_served += 1;
        let matches = node.lookup_live(now, &template);
        let total = matches.len();
        let mut items: Vec<crate::codec::ServiceItem> = Vec::new();
        for item in matches {
            items.push(item.clone());
            let candidate = Msg::LookupReply { req, items: items.clone(), truncated: false };
            if candidate.encoded_len() > MTU_BYTES {
                items.pop();
                break;
            }
        }
        let live = items.len();
        let truncated = live < total;
        if ctx.telemetry().enabled() {
            let node = self.node.as_ref().unwrap();
            let all = node.table().lookup(&template).len();
            let stale = (all - total) as i64;
            let rec = ctx.telemetry();
            rec.count("disc.lookups", 1);
            rec.event(now.as_nanos(), Layer::Abstract, "lookup.serve", from.0, live as i64, stale);
            if stale > 0 {
                rec.count("disc.lease.stale_window_hits", stale as u64);
            }
        }
        ctx.send(Address::Node(from), Msg::LookupReply { req, items, truncated }.encode());
    }

    fn on_client_msg(&mut self, ctx: &mut NetCtx<'_>, from: NodeId, msg: Msg) {
        let now = ctx.now();
        // Replicas — and primaries whose serving lease has lapsed — are
        // silent towards clients: unanswered RPCs drive the existing
        // provider/client recovery loops to the active primary.
        if !self.node.as_ref().is_some_and(|n| n.is_active(now)) {
            return;
        }
        match msg {
            Msg::DiscoverReq { nonce } => {
                ctx.send(Address::Node(from), Msg::DiscoverResp { nonce }.encode());
            }
            Msg::Register { item, lease_ms } => {
                let id = item.id;
                let fx = self.node.as_mut().unwrap().client_register(
                    now,
                    from.0,
                    item,
                    SimDuration::from_millis(lease_ms),
                );
                let rec = ctx.telemetry();
                rec.count("disc.lease.grants", 1);
                rec.event(now.as_nanos(), Layer::Abstract, "lease.grant", from.0, id.0 as i64, 0);
                self.run_effects(ctx, fx);
            }
            Msg::Renew { id } => {
                let fx = self.node.as_mut().unwrap().client_renew(now, from.0, id);
                ctx.telemetry().count("disc.lease.renewals", 1);
                self.run_effects(ctx, fx);
            }
            Msg::Unregister { id } => {
                let fx = self.node.as_mut().unwrap().client_unregister(now, from.0, id);
                self.run_effects(ctx, fx);
            }
            Msg::Lookup { req, template } => {
                self.serve_lookup(ctx, from, req, template);
            }
            Msg::Subscribe { template } => {
                self.node.as_mut().unwrap().subscribe(from.0, template);
            }
            _ => {}
        }
    }
}

impl NetApp for ReplicatedRegistrarApp {
    fn on_start(&mut self, ctx: &mut NetCtx<'_>) {
        // `on_restart` defaults to re-running `on_start`; distinguish the
        // boot (fresh state machine) from a recovery (durable restore).
        let me = ctx.node().0;
        self.alive = true;
        if !self.started {
            self.started = true;
            self.node = Some(ReplicaNode::new(me, self.cfg.clone()));
        } else {
            let restored = match self.persisted.clone().map(DurableState::decode) {
                Some(Ok(d)) => ReplicaNode::restore(me, self.cfg.clone(), d),
                // Power-cycle with state intact keeps the live node; a lost
                // or corrupt blob means rejoining empty (snapshot install
                // will refill us).
                _ => {
                    let mut n = self.node.take().unwrap_or_else(|| {
                        ReplicaNode::new(me, self.cfg.clone())
                    });
                    n.step_down_for_restart();
                    n
                }
            };
            self.restores += 1;
            self.flushed = restored.stats;
            ctx.telemetry().count("disc.repl.restores", 1);
            self.node = Some(restored);
        }
        // A (re)joining node grants any incumbent a full quiet period
        // before its first campaign.
        let now = ctx.now();
        self.node.as_mut().unwrap().note_heard(now);
        self.persist();
        self.arm_timers(ctx);
    }

    fn on_packet(&mut self, ctx: &mut NetCtx<'_>, from: NodeId, payload: &Bytes) {
        if !self.alive || self.node.is_none() {
            return;
        }
        if payload.first() == Some(&PROTO_REPLICATION) {
            let Ok(msg) = RepMsg::decode(payload.clone()) else {
                return;
            };
            let now = ctx.now();
            let fx = self.node.as_mut().unwrap().on_message(now, from.0, msg);
            self.run_effects(ctx, fx);
            return;
        }
        let Ok(msg) = Msg::decode(payload.clone()) else {
            return;
        };
        self.on_client_msg(ctx, from, msg);
    }

    fn on_timer(&mut self, ctx: &mut NetCtx<'_>, token: u64) {
        if !self.alive || self.node.is_none() {
            return;
        }
        let now = ctx.now();
        match token {
            T_HEARTBEAT => {
                let fx = self.node.as_mut().unwrap().heartbeat(now);
                self.run_effects(ctx, fx);
                ctx.set_timer(HEARTBEAT_PERIOD, T_HEARTBEAT);
            }
            T_ELECTION => {
                let timeout = self.election_timeout(ctx.node().0);
                let node = self.node.as_mut().unwrap();
                if !node.is_active(now) && now.saturating_since(node.last_heard()) >= timeout {
                    let fx = node.election_timeout(now);
                    self.run_effects(ctx, fx);
                }
                ctx.set_timer(timeout, T_ELECTION);
            }
            T_SWEEP => {
                let node = self.node.as_mut().unwrap();
                if node.is_active(now) {
                    let fx = node.sweep(now);
                    self.run_effects(ctx, fx);
                }
                ctx.set_timer(SWEEP_PERIOD, T_SWEEP);
            }
            _ => {}
        }
    }

    /// The fault plane took this registrar down. Volatile state dies with
    /// the incarnation; `self.persisted` is the disk and survives.
    fn on_crash(&mut self, _ctx: &mut NetCtx<'_>) {
        self.alive = false;
        self.node = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::{ClientApp, ProviderApp};
    use crate::codec::{ServiceId, ServiceItem, Template};
    use aroma_env::radio::{Channel, RadioEnvironment};
    use aroma_env::space::Point;
    use aroma_net::{MacConfig, Network, NodeConfig};

    fn quiet() -> RadioEnvironment {
        RadioEnvironment { shadowing_sigma_db: 0.0, ..Default::default() }
    }

    fn projector(id: u64) -> ServiceItem {
        ServiceItem {
            id: ServiceId(id),
            kind: "projector/display".into(),
            attributes: vec![("room".into(), "A-101".into())],
            provider: 0,
            proxy: Bytes::from_static(b"proxy"),
        }
    }

    struct Cluster {
        net: Network,
        regs: [NodeId; 3],
        client: NodeId,
    }

    /// Three registrars on a wired triangle, one provider, one polling
    /// client — all in one room.
    fn cluster(seed: u64) -> Cluster {
        let mut net = Network::new(quiet(), MacConfig::default(), seed);
        let cfg = ClusterConfig::of(vec![0, 1, 2]);
        let regs = [
            net.add_node(
                NodeConfig::at_on(Point::new(0.0, 0.0), Channel::CH1),
                Box::new(ReplicatedRegistrarApp::new(cfg.clone())),
            ),
            net.add_node(
                NodeConfig::at_on(Point::new(5.0, 0.0), Channel::CH1),
                Box::new(ReplicatedRegistrarApp::new(cfg.clone())),
            ),
            net.add_node(
                NodeConfig::at_on(Point::new(0.0, 5.0), Channel::CH1),
                Box::new(ReplicatedRegistrarApp::new(cfg)),
            ),
        ];
        for i in 0..3 {
            for j in (i + 1)..3 {
                net.add_wired_link(regs[i], regs[j], SimDuration::from_millis(1), 10_000_000);
            }
        }
        net.add_node(
            NodeConfig::at_on(Point::new(3.0, 3.0), Channel::CH1),
            Box::new(ProviderApp::new(projector(1), 8_000)),
        );
        let client = net.add_node(
            NodeConfig::at_on(Point::new(2.0, 1.0), Channel::CH1),
            Box::new(ClientApp::new(Template::of_kind("projector/display")).polling()),
        );
        Cluster { net, regs, client }
    }

    #[test]
    fn cluster_serves_and_replicates() {
        let mut c = cluster(7);
        c.net.run_for(SimDuration::from_secs(4));
        let client = c.net.app_as::<ClientApp>(c.client).unwrap();
        assert!(client.service_found_at.is_some(), "client found the projector");
        // The lease is committed on every replica, not just the primary.
        for r in c.regs {
            let app = c.net.app_as::<ReplicatedRegistrarApp>(r).unwrap();
            let node = app.replica().unwrap();
            assert_eq!(node.table().len(), 1, "registrar {} holds the lease", r.0);
            assert!(node.commit_index() >= 1);
        }
        let primary = c.net.app_as::<ReplicatedRegistrarApp>(c.regs[0]).unwrap();
        let end = aroma_sim::SimTime::ZERO + SimDuration::from_secs(4);
        assert!(primary.replica().unwrap().is_active(end), "heartbeat acks keep the lease fresh");
        assert!(primary.lookups_served > 0);
        // Replicas never answered a client.
        for r in &c.regs[1..] {
            assert_eq!(c.net.app_as::<ReplicatedRegistrarApp>(*r).unwrap().lookups_served, 0);
        }
    }

    #[test]
    fn failover_without_stale_lookups() {
        use aroma_faults::FaultSchedule;
        let mut c = cluster(11);
        // Kill the bootstrap primary's process mid-run; restore it later.
        let schedule = FaultSchedule::builder(11)
            .process_kill_restart(1_500_000_000, 3_500_000_000, 0)
            .build();
        c.net.attach_faults(&schedule);
        c.net.run_for(SimDuration::from_secs(6));
        // Node 1 (owner of epoch 1) took over.
        let end = aroma_sim::SimTime::ZERO + SimDuration::from_secs(6);
        let standby = c.net.app_as::<ReplicatedRegistrarApp>(c.regs[1]).unwrap();
        let node = standby.replica().unwrap();
        assert!(node.is_active(end), "epoch-1 owner must take over");
        assert!(node.epoch >= 1);
        assert_eq!(node.table().len(), 1, "committed lease survived the failover");
        // The client kept finding the service through the new primary.
        assert!(standby.lookups_served > 0, "clients failed over to the standby");
        // The killed node came back as a follower via durable restore.
        let old = c.net.app_as::<ReplicatedRegistrarApp>(c.regs[0]).unwrap();
        assert_eq!(old.restores, 1);
        let old_node = old.replica().unwrap();
        assert!(!old_node.is_active(end), "restored node must not reclaim primacy");
        assert_eq!(old_node.table().len(), 1, "rejoined with the committed lease");
    }
}
