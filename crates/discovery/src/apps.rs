//! The discovery protocol's network roles.
//!
//! Three [`NetApp`]s implement the Jini roles over the simulated WLAN:
//!
//! * [`RegistrarApp`] — the lookup service. Soft state only: a crash
//!   (injectable, for the E3 fault experiment) loses every registration,
//!   exactly as a restarted Jini registrar would before leases are renewed.
//! * [`ProviderApp`] — registers one service and keeps its lease alive,
//!   re-discovering and re-registering after registrar failures.
//! * [`ClientApp`] — discovers the registrar, polls lookups until a match
//!   appears, and records *time-to-service*, the paper's implicit metric for
//!   "automatically discover and use remote services".

use crate::codec::{EventKind, Msg, ServiceId, ServiceItem, Template};
use crate::registry::ServiceRegistry;
use aroma_net::{Address, NetApp, NetCtx, NodeId, MTU_BYTES};
use aroma_sim::telemetry::{Layer, Recorder};
use aroma_sim::{SimDuration, SimTime};
use bytes::Bytes;

// Timer tokens (per-app namespaces; apps never share a node).
const T_EXPIRE: u64 = 1;
const T_DISCOVER: u64 = 2;
const T_REG_TIMEOUT: u64 = 3;
const T_RENEW: u64 = 4;
const T_RENEW_TIMEOUT: u64 = 5;
const T_LOOKUP: u64 = 6;

/// How often providers/clients repeat multicast discovery while unanswered.
pub const DISCOVER_PERIOD: SimDuration = SimDuration::from_millis(500);
/// How long a provider waits for a RegisterAck/RenewAck before recovering.
pub const RPC_TIMEOUT: SimDuration = SimDuration::from_millis(300);
/// How often a client repeats an unanswered or empty lookup.
pub const LOOKUP_PERIOD: SimDuration = SimDuration::from_millis(300);
/// Backoff cap: discovery retries never wait more than 4× the base period.
pub const MAX_BACKOFF_SHIFT: u32 = 2;
/// Consecutive unanswered lookups after which a polling client decides the
/// registrar is gone and falls back to discovery.
pub const LOOKUP_GIVE_UP: u32 = 3;

/// The lookup service.
pub struct RegistrarApp {
    /// Registration table (public for post-run inspection).
    pub registry: ServiceRegistry,
    /// False = crashed: ignores all traffic (fault injection).
    pub alive: bool,
    /// Lookups answered.
    pub lookups_served: u64,
    /// Registrations accepted.
    pub registrations: u64,
    /// Renewals granted.
    pub renewals: u64,
    /// Discovery requests answered.
    pub discoveries_answered: u64,
    /// Peer lookup service reachable over a wired link ("connecting
    /// portable wireless devices to traditional networks"): registrations,
    /// renewals and withdrawals from this registrar's radio domain are
    /// mirrored to the peer, so clients in the other room can *find*
    /// services beyond their radio horizon.
    pub federation_peer: Option<NodeId>,
    /// Registrations mirrored to the peer.
    pub federated_out: u64,
    /// Event notifications encoded (one per distinct `(kind, item)` run —
    /// subscribers of the same transition share the encoding).
    pub event_encodings: u64,
    /// Event notifications the MAC refused to accept (full queue). The
    /// subscriber silently misses the transition and resynchronises on its
    /// next lookup; the counter (and `disc.events_dropped`) makes the loss
    /// observable instead of silent.
    pub events_dropped: u64,
}

impl RegistrarApp {
    /// A registrar granting leases of at most `max_lease`.
    pub fn new(max_lease: SimDuration) -> Self {
        RegistrarApp {
            registry: ServiceRegistry::new(max_lease),
            alive: true,
            lookups_served: 0,
            registrations: 0,
            renewals: 0,
            discoveries_answered: 0,
            federation_peer: None,
            federated_out: 0,
            event_encodings: 0,
            events_dropped: 0,
        }
    }

    /// Federate with a peer registrar over a wired link.
    pub fn federated_with(mut self, peer: NodeId) -> Self {
        self.federation_peer = Some(peer);
        self
    }

    /// Mirror a message to the federation peer over the wire — but never
    /// one that itself arrived from the peer (pairwise federation, no
    /// loops).
    fn mirror(&mut self, ctx: &mut NetCtx<'_>, from: NodeId, msg: &Msg) {
        let Some(peer) = self.federation_peer else {
            return;
        };
        if from == peer {
            return;
        }
        if ctx.send_wired(peer, msg.encode()) {
            self.federated_out += 1;
        }
    }

    /// Simulate a crash: all soft state is lost and traffic is ignored
    /// until [`RegistrarApp::restart`].
    pub fn crash(&mut self) {
        self.alive = false;
        let max = self.registry.max_lease;
        self.registry = ServiceRegistry::new(max);
    }

    /// Bring a crashed registrar back (empty, as after a reboot).
    pub fn restart(&mut self) {
        self.alive = true;
    }

    fn schedule_expiry(&self, ctx: &mut NetCtx<'_>) {
        if let Some(at) = self.registry.next_expiry() {
            let delay = at.saturating_since(ctx.now());
            ctx.set_timer(delay, T_EXPIRE);
        }
    }

    /// Push event notifications to subscribers, encoding each distinct
    /// transition once: `events_for` emits one event per matching
    /// subscriber of the *same* `(kind, item)`, so consecutive events in a
    /// batch share their wire bytes (a refcounted [`Bytes`] clone per
    /// subscriber, not a re-encode). A full MAC queue drops the
    /// notification — counted, never silent.
    fn flush_events(&mut self, ctx: &mut NetCtx<'_>, events: Vec<crate::registry::RegistryEvent>) {
        let mut cached: Option<(EventKind, ServiceItem, Bytes)> = None;
        for ev in events {
            let reuse = cached
                .as_ref()
                .is_some_and(|(k, it, _)| *k == ev.kind && *it == ev.item);
            if !reuse {
                let wire = Msg::Event {
                    kind: ev.kind,
                    item: ev.item.clone(),
                }
                .encode();
                self.event_encodings += 1;
                cached = Some((ev.kind, ev.item, wire));
            }
            let wire = cached.as_ref().expect("cache populated above").2.clone();
            if !ctx.send(Address::Node(NodeId(ev.subscriber)), wire) {
                self.events_dropped += 1;
                let now_ns = ctx.now().as_nanos();
                let rec = ctx.telemetry();
                rec.count("disc.events_dropped", 1);
                rec.event(
                    now_ns,
                    Layer::Abstract,
                    "disc.event.drop",
                    ev.subscriber,
                    0,
                    0,
                );
            }
        }
    }

    /// Pack as many matching items as fit in one MTU-sized reply.
    ///
    /// Only leases live at `now` are served: the expiry sweep is
    /// timer-driven, so without the filter a lookup landing between a
    /// lease's expiry instant and the sweep would return the stale
    /// registration (the no-stale-lookup invariant `aroma-check` proves).
    fn build_reply(&self, req: u64, now: aroma_sim::SimTime, template: &Template) -> Msg {
        let matches = self.registry.lookup_live(now, template);
        let total = matches.len();
        let mut items: Vec<ServiceItem> = Vec::new();
        for item in matches {
            items.push(item.clone());
            let candidate = Msg::LookupReply {
                req,
                items: items.clone(),
                truncated: false,
            };
            if candidate.encoded_len() > MTU_BYTES {
                items.pop();
                break;
            }
        }
        let truncated = items.len() < total;
        Msg::LookupReply {
            req,
            items,
            truncated,
        }
    }
}

impl NetApp for RegistrarApp {
    fn on_packet(&mut self, ctx: &mut NetCtx<'_>, from: NodeId, payload: &Bytes) {
        if !self.alive {
            return;
        }
        let Ok(msg) = Msg::decode(payload.clone()) else {
            return; // not ours / corrupt
        };
        match msg {
            Msg::DiscoverReq { nonce } => {
                self.discoveries_answered += 1;
                ctx.send(Address::Node(from), Msg::DiscoverResp { nonce }.encode());
            }
            Msg::Register { item, lease_ms } => {
                self.registrations += 1;
                let id = item.id;
                let msg = Msg::Register {
                    item: item.clone(),
                    lease_ms,
                };
                self.mirror(ctx, from, &msg);
                let (granted, events) =
                    self.registry
                        .register(ctx.now(), item, SimDuration::from_millis(lease_ms));
                let t = ctx.now().as_nanos();
                let rec = ctx.telemetry();
                rec.count("disc.lease.grants", 1);
                rec.event(
                    t,
                    Layer::Abstract,
                    "lease.grant",
                    from.0,
                    id.0 as i64,
                    granted.as_millis() as i64,
                );
                // A mirrored registration from the peer needs no ack (and
                // the peer may be beyond radio range anyway).
                if Some(from) != self.federation_peer {
                    ctx.send(
                        Address::Node(from),
                        Msg::RegisterAck {
                            id,
                            granted_ms: granted.as_millis(),
                        }
                        .encode(),
                    );
                }
                self.flush_events(ctx, events);
                self.schedule_expiry(ctx);
            }
            Msg::Renew { id } => {
                self.mirror(ctx, from, &Msg::Renew { id });
                let granted = self.registry.renew(ctx.now(), id);
                if granted.is_some() {
                    self.renewals += 1;
                }
                let t = ctx.now().as_nanos();
                let rec = ctx.telemetry();
                rec.count(
                    if granted.is_some() {
                        "disc.lease.renewals"
                    } else {
                        "disc.lease.renewals_refused"
                    },
                    1,
                );
                rec.event(
                    t,
                    Layer::Abstract,
                    "lease.renew",
                    from.0,
                    id.0 as i64,
                    granted.is_some() as i64,
                );
                if Some(from) != self.federation_peer {
                    ctx.send(
                        Address::Node(from),
                        Msg::RenewAck {
                            id,
                            ok: granted.is_some(),
                            granted_ms: granted.map(|g| g.as_millis()).unwrap_or(0),
                        }
                        .encode(),
                    );
                }
                self.schedule_expiry(ctx);
            }
            Msg::Unregister { id } => {
                self.mirror(ctx, from, &Msg::Unregister { id });
                let events = self.registry.unregister(id);
                self.flush_events(ctx, events);
            }
            Msg::Lookup { req, template } => {
                self.lookups_served += 1;
                let now = ctx.now();
                let reply = self.build_reply(req, now, &template);
                if ctx.telemetry().enabled() {
                    // Stale window: registrations whose lease expired but
                    // whose expiry sweep has not yet run. `lookup_live`
                    // filters them out of the reply; count how many the
                    // filter hid from this lookup.
                    let all = self.registry.lookup(&template).len();
                    let live = self.registry.lookup_live(now, &template).len();
                    let stale = (all - live) as i64;
                    let rec = ctx.telemetry();
                    rec.count("disc.lookups", 1);
                    // `live` is what the reply carries: a positive value here
                    // is a successful `lookup_live`, which is the signal the
                    // chaos experiment uses to time discovery recovery.
                    rec.event(
                        now.as_nanos(),
                        Layer::Abstract,
                        "lookup.serve",
                        from.0,
                        live as i64,
                        stale,
                    );
                    if stale > 0 {
                        rec.count("disc.lease.stale_window_hits", stale as u64);
                        rec.event(
                            now.as_nanos(),
                            Layer::Abstract,
                            "lease.stale_window",
                            from.0,
                            stale,
                            live as i64,
                        );
                    }
                }
                ctx.send(Address::Node(from), reply.encode());
            }
            Msg::Subscribe { template } => {
                self.registry.subscribe(from.0, template);
            }
            _ => {} // replies are never addressed to a registrar
        }
    }

    fn on_timer(&mut self, ctx: &mut NetCtx<'_>, token: u64) {
        if token == T_EXPIRE && self.alive {
            let now = ctx.now();
            // Expiry count comes from the table size, not the event list:
            // registry events are per-subscriber fan-out (zero subscribers
            // means zero events even when leases lapsed).
            let before = self.registry.len();
            let events = self.registry.expire(now);
            let expired = (before - self.registry.len()) as u64;
            if expired > 0 {
                let rec = ctx.telemetry();
                rec.count("disc.lease.expiries", expired);
                rec.event(
                    now.as_nanos(),
                    Layer::Abstract,
                    "lease.expire",
                    0,
                    expired as i64,
                    self.registry.len() as i64,
                );
            }
            self.flush_events(ctx, events);
            self.schedule_expiry(ctx);
        }
    }

    /// Fault-plane crash: lose the soft state, exactly as the manual
    /// [`RegistrarApp::crash`] used by the E3 availability arm.
    fn on_crash(&mut self, _ctx: &mut NetCtx<'_>) {
        self.crash();
    }

    /// Fault-plane restart: come back empty and start serving again.
    fn on_restart(&mut self, _ctx: &mut NetCtx<'_>) {
        self.restart();
    }
}

/// Provider lifecycle state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProviderState {
    /// Multicasting discovery requests.
    Discovering,
    /// Register sent, awaiting ack.
    Registering,
    /// Lease live; renewing on schedule.
    Registered,
}

/// A node offering one service through the lookup service.
pub struct ProviderApp {
    /// The service this node exports (provider field filled at start).
    pub item: ServiceItem,
    /// Lease duration to request, ms.
    pub lease_request_ms: u64,
    /// Current state.
    pub state: ProviderState,
    /// The registrar, once discovered.
    pub registrar: Option<NodeId>,
    /// Completed registrations (re-registrations count).
    pub registrations_completed: u64,
    /// Successful renewals.
    pub renewals_completed: u64,
    /// Times the provider had to fall back to discovery.
    pub rediscoveries: u64,
    /// Times a renewal timeout was recovered by re-registering at a standby
    /// registrar instead of a full re-discovery.
    pub failovers: u64,
    /// Every registrar that has ever answered a discovery round, in
    /// first-seen order (the failover candidates).
    pub known_registrars: Vec<NodeId>,
    /// Consecutive unanswered discovery rounds (drives the backoff).
    attempts: u32,
    nonce: u64,
    /// A Renew is in flight with no answer yet.
    renewal_outstanding: bool,
}

impl ProviderApp {
    /// Provider exporting `item`, requesting `lease_request_ms` leases.
    pub fn new(item: ServiceItem, lease_request_ms: u64) -> Self {
        ProviderApp {
            item,
            lease_request_ms,
            state: ProviderState::Discovering,
            registrar: None,
            registrations_completed: 0,
            renewals_completed: 0,
            rediscoveries: 0,
            failovers: 0,
            known_registrars: Vec::new(),
            attempts: 0,
            nonce: 0,
            renewal_outstanding: false,
        }
    }

    fn note_registrar(&mut self, reg: NodeId) {
        if !self.known_registrars.contains(&reg) {
            self.known_registrars.push(reg);
        }
    }

    /// Delay before the next discovery round.
    ///
    /// The first attempt and the first retry wait exactly
    /// [`DISCOVER_PERIOD`] and draw no randomness, so runs where discovery
    /// succeeds (or loses at most one frame) are bit-identical to the
    /// pre-backoff protocol. From the second consecutive unanswered round
    /// on — i.e. only when the registrar is genuinely gone — the period
    /// doubles up to [`MAX_BACKOFF_SHIFT`] with jitter in
    /// `[0, DISCOVER_PERIOD / 2)` to de-synchronise recovering providers.
    fn retry_delay(&mut self, ctx: &mut NetCtx<'_>) -> SimDuration {
        if self.attempts < 2 {
            return DISCOVER_PERIOD;
        }
        let shift = (self.attempts - 1).min(MAX_BACKOFF_SHIFT);
        let base = DISCOVER_PERIOD.as_nanos() << shift;
        let jitter = ctx.rng().below(DISCOVER_PERIOD.as_nanos() / 2);
        SimDuration::from_nanos(base + jitter)
    }

    fn discover(&mut self, ctx: &mut NetCtx<'_>) {
        self.state = ProviderState::Discovering;
        self.registrar = None;
        self.nonce = ctx.rng().next_u64_raw();
        ctx.send(
            Address::Broadcast,
            Msg::DiscoverReq { nonce: self.nonce }.encode(),
        );
        let delay = self.retry_delay(ctx);
        ctx.set_timer(delay, T_DISCOVER);
    }

    fn register(&mut self, ctx: &mut NetCtx<'_>) {
        let Some(reg) = self.registrar else { return };
        self.state = ProviderState::Registering;
        let msg = Msg::Register {
            item: self.item.clone(),
            lease_ms: self.lease_request_ms,
        };
        ctx.send(Address::Node(reg), msg.encode());
        ctx.set_timer(RPC_TIMEOUT, T_REG_TIMEOUT);
    }
}

impl NetApp for ProviderApp {
    fn on_start(&mut self, ctx: &mut NetCtx<'_>) {
        self.item.provider = ctx.node().0;
        self.discover(ctx);
    }

    fn on_packet(&mut self, ctx: &mut NetCtx<'_>, from: NodeId, payload: &Bytes) {
        let Ok(msg) = Msg::decode(payload.clone()) else {
            return;
        };
        match msg {
            Msg::DiscoverResp { nonce }
                if nonce == self.nonce && self.state == ProviderState::Discovering =>
            {
                self.attempts = 0;
                self.note_registrar(from);
                self.registrar = Some(from);
                self.register(ctx);
            }
            // A further registrar answering the same round: remember it as
            // a failover standby.
            Msg::DiscoverResp { nonce } if nonce == self.nonce => {
                self.note_registrar(from);
            }
            Msg::RegisterAck { id, granted_ms }
                if id == self.item.id && self.state == ProviderState::Registering =>
            {
                self.state = ProviderState::Registered;
                self.registrations_completed += 1;
                ctx.set_timer(SimDuration::from_millis(granted_ms / 2), T_RENEW);
            }
            Msg::RenewAck { id, ok, granted_ms } if id == self.item.id => {
                self.renewal_outstanding = false;
                if ok {
                    self.renewals_completed += 1;
                    ctx.set_timer(SimDuration::from_millis(granted_ms / 2), T_RENEW);
                } else {
                    // Lease lapsed at the registrar (e.g. it restarted):
                    // re-register immediately.
                    self.register(ctx);
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut NetCtx<'_>, token: u64) {
        match (token, self.state) {
            (T_DISCOVER, ProviderState::Discovering) => {
                self.rediscoveries += 1;
                self.attempts += 1;
                self.discover(ctx);
            }
            (T_REG_TIMEOUT, ProviderState::Registering) => {
                // Ack never came: registrar gone or unreachable.
                self.discover(ctx);
            }
            (T_RENEW, ProviderState::Registered) => {
                if let Some(reg) = self.registrar {
                    self.renewal_outstanding = true;
                    ctx.send(Address::Node(reg), Msg::Renew { id: self.item.id }.encode());
                    ctx.set_timer(RPC_TIMEOUT, T_RENEW_TIMEOUT);
                }
            }
            (T_RENEW_TIMEOUT, ProviderState::Registered)
                // No RenewAck since the Renew went out: registrar is gone or
                // unreachable — fail over to a standby registrar if one ever
                // answered discovery, else fall back to discovery.
                if self.renewal_outstanding => {
                    self.renewal_outstanding = false;
                    let standby = self
                        .known_registrars
                        .iter()
                        .copied()
                        .find(|r| Some(*r) != self.registrar);
                    if let Some(next) = standby {
                        self.failovers += 1;
                        self.registrar = Some(next);
                        self.register(ctx);
                    } else {
                        self.discover(ctx);
                    }
                }
            _ => {}
        }
    }

    /// A node crash loses all protocol state (the lease, the registrar, the
    /// in-flight RPC); the subsequent restart re-enters discovery cold.
    fn on_crash(&mut self, _ctx: &mut NetCtx<'_>) {
        self.state = ProviderState::Discovering;
        self.registrar = None;
        self.renewal_outstanding = false;
        self.attempts = 0;
    }
}

/// A node wanting to find and use services.
pub struct ClientApp {
    /// What the client is looking for.
    pub template: Template,
    /// The registrar, once discovered.
    pub registrar: Option<NodeId>,
    /// Services found so far (latest lookup reply).
    pub found: Vec<ServiceItem>,
    /// When discovery succeeded.
    pub discovered_at: Option<SimTime>,
    /// When the first non-empty lookup reply arrived (time-to-service).
    pub service_found_at: Option<SimTime>,
    /// Lookups transmitted.
    pub lookups_sent: u64,
    /// Events received (if subscribed).
    pub events: Vec<(SimTime, EventKind, ServiceId)>,
    /// Subscribe to events after discovery?
    pub subscribe: bool,
    /// Keep polling lookups after the first hit (long-lived clients that
    /// must notice registrar failures and re-discover).
    pub continuous: bool,
    /// Times the client abandoned an unresponsive registrar and went back
    /// to discovery.
    pub rediscoveries: u64,
    /// Lookup replies received (empty or not).
    pub lookup_replies: u64,
    /// Consecutive lookups with no reply of any kind.
    unanswered: u32,
    nonce: u64,
    next_req: u64,
}

impl ClientApp {
    /// Client searching for services matching `template`.
    pub fn new(template: Template) -> Self {
        ClientApp {
            template,
            registrar: None,
            found: Vec::new(),
            discovered_at: None,
            service_found_at: None,
            lookups_sent: 0,
            events: Vec::new(),
            subscribe: false,
            continuous: false,
            rediscoveries: 0,
            lookup_replies: 0,
            unanswered: 0,
            nonce: 0,
            next_req: 1,
        }
    }

    /// Enable event subscription after discovery.
    pub fn with_subscription(mut self) -> Self {
        self.subscribe = true;
        self
    }

    /// Keep polling lookups forever instead of stopping at the first hit,
    /// re-discovering after [`LOOKUP_GIVE_UP`] consecutive silent lookups.
    pub fn polling(mut self) -> Self {
        self.continuous = true;
        self
    }

    fn discover(&mut self, ctx: &mut NetCtx<'_>) {
        self.nonce = ctx.rng().next_u64_raw();
        ctx.send(
            Address::Broadcast,
            Msg::DiscoverReq { nonce: self.nonce }.encode(),
        );
        ctx.set_timer(DISCOVER_PERIOD, T_DISCOVER);
    }

    fn lookup(&mut self, ctx: &mut NetCtx<'_>) {
        let Some(reg) = self.registrar else { return };
        let req = self.next_req;
        self.next_req += 1;
        self.lookups_sent += 1;
        self.unanswered += 1;
        ctx.send(
            Address::Node(reg),
            Msg::Lookup {
                req,
                template: self.template.clone(),
            }
            .encode(),
        );
        ctx.set_timer(LOOKUP_PERIOD, T_LOOKUP);
    }
}

impl NetApp for ClientApp {
    fn on_start(&mut self, ctx: &mut NetCtx<'_>) {
        self.discover(ctx);
    }

    fn on_packet(&mut self, ctx: &mut NetCtx<'_>, from: NodeId, payload: &Bytes) {
        let Ok(msg) = Msg::decode(payload.clone()) else {
            return;
        };
        match msg {
            Msg::DiscoverResp { nonce } if nonce == self.nonce && self.registrar.is_none() => {
                self.registrar = Some(from);
                if self.discovered_at.is_none() {
                    self.discovered_at = Some(ctx.now());
                }
                if self.subscribe {
                    ctx.send(
                        Address::Node(from),
                        Msg::Subscribe {
                            template: self.template.clone(),
                        }
                        .encode(),
                    );
                }
                self.lookup(ctx);
            }
            Msg::LookupReply { items, .. } => {
                self.lookup_replies += 1;
                self.unanswered = 0;
                if !items.is_empty() {
                    if self.service_found_at.is_none() {
                        self.service_found_at = Some(ctx.now());
                    }
                    self.found = items;
                }
            }
            Msg::Event { kind, item } => {
                self.events.push((ctx.now(), kind, item.id));
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut NetCtx<'_>, token: u64) {
        match token {
            T_DISCOVER if self.registrar.is_none() => self.discover(ctx),
            T_LOOKUP
                if (self.service_found_at.is_none() || self.continuous)
                    && self.registrar.is_some() =>
            {
                if self.continuous && self.unanswered >= LOOKUP_GIVE_UP {
                    // The registrar has been silent for LOOKUP_GIVE_UP
                    // straight lookups: abandon it and re-discover (the
                    // answer may come from a standby).
                    self.rediscoveries += 1;
                    self.registrar = None;
                    self.unanswered = 0;
                    self.discover(ctx);
                } else {
                    self.lookup(ctx);
                }
            }
            _ => {}
        }
    }

    /// A node crash forgets the registrar binding; restart re-discovers.
    fn on_crash(&mut self, _ctx: &mut NetCtx<'_>) {
        self.registrar = None;
        self.unanswered = 0;
    }
}
