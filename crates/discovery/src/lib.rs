//! # aroma-discovery — Jini-style service discovery
//!
//! The Smart Projector's services are found through Jini: *"the ability to
//! automatically discover the projector service is implemented using Jini
//! and relies on having a Jini lookup service present"* — a resource-layer
//! dependency the paper explicitly flags as fragile outside the laboratory.
//! This crate is the substitute substrate: the same protocol roles
//! (multicast discovery of a **lookup service**, attribute-matched
//! registration with **leases**, client **lookup**, and **remote events**
//! notifying interested parties of registrations and expirations), running
//! over the simulated WLAN of `aroma-net`.
//!
//! * [`registry`] — the lookup service's pure state machine: registrations,
//!   lease grant/renew/expiry, template matching, event subscriptions.
//!   Separated from I/O so its invariants are directly unit- and
//!   property-testable.
//! * [`codec`] — the binary wire format (length-prefixed, MTU-aware).
//! * [`proxy`] — the mobile-code gate: service-item proxy bytes claiming
//!   to be `aroma-mcode` programs must pass the static verifier under the
//!   client's syscall policy before they can ever run.
//! * [`apps`] — the three network roles as [`aroma_net::NetApp`]s:
//!   [`apps::RegistrarApp`] (the lookup service), [`apps::ProviderApp`]
//!   (registers a service and keeps its lease alive; re-discovers after a
//!   registrar crash), [`apps::ClientApp`] (discovers, looks up, measures
//!   time-to-service — the E3 metric).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apps;
pub mod codec;
pub mod proxy;
pub mod registry;

pub use codec::{Msg, ServiceId, ServiceItem, Template};
pub use proxy::{vet_proxy, ProxyError, VettedProxy, MCODE_MAGIC};
pub use registry::{RegistryEvent, ServiceRegistry};
