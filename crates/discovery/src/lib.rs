//! # aroma-discovery — Jini-style service discovery
//!
//! The Smart Projector's services are found through Jini: *"the ability to
//! automatically discover the projector service is implemented using Jini
//! and relies on having a Jini lookup service present"* — a resource-layer
//! dependency the paper explicitly flags as fragile outside the laboratory.
//! This crate is the substitute substrate: the same protocol roles
//! (multicast discovery of a **lookup service**, attribute-matched
//! registration with **leases**, client **lookup**, and **remote events**
//! notifying interested parties of registrations and expirations), running
//! over the simulated WLAN of `aroma-net`.
//!
//! * [`registry`] — the lookup service's pure state machine: registrations,
//!   lease grant/renew/expiry, template matching, event subscriptions.
//!   Separated from I/O so its invariants are directly unit- and
//!   property-testable.
//! * [`codec`] — the binary wire format (length-prefixed, MTU-aware).
//! * [`proxy`] — the mobile-code gate: service-item proxy bytes claiming
//!   to be `aroma-mcode` programs must pass the static verifier under the
//!   client's syscall policy before they can ever run.
//! * [`apps`] — the three network roles as [`aroma_net::NetApp`]s:
//!   [`apps::RegistrarApp`] (the lookup service), [`apps::ProviderApp`]
//!   (registers a service and keeps its lease alive; re-discovers after a
//!   registrar crash), [`apps::ClientApp`] (discovers, looks up, measures
//!   time-to-service — the E3 metric).
//!
//! PR 9 makes the registrar replicated and persistent:
//!
//! * [`shard`] — the lease table split into hash-routed
//!   [`registry::ServiceRegistry`] shards with order-preserving merges, so
//!   sharding is unobservable in any output.
//! * [`replication`] — log-shipped lease replication between registrars:
//!   epoch-owned primaries, majority commit, and election on lease timeout
//!   (at most one active primary per epoch by construction).
//! * [`snapshot`] — deterministic versioned lease-table snapshots; the
//!   replication log truncates behind them and restarted registrars rejoin
//!   from snapshot + log suffix.
//! * [`flap`] — BGP-style flap damping: churning services accumulate an
//!   exponentially decaying penalty and are absorbed at the registrar's
//!   edge while suppressed.
//! * [`cluster`] — [`cluster::ReplicatedRegistrarApp`], the replicated
//!   registrar as a [`aroma_net::NetApp`]: heartbeats, rank-staggered
//!   elections, synchronous durable persistence across process kills, and
//!   primary-only client serving.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apps;
pub mod cluster;
pub mod codec;
pub mod flap;
pub mod proxy;
pub mod registry;
pub mod replication;
pub mod shard;
pub mod snapshot;

pub use cluster::ReplicatedRegistrarApp;
pub use codec::{Msg, ServiceId, ServiceItem, Template};
pub use flap::{FlapConfig, FlapDamper, FlapDecision};
pub use proxy::{vet_proxy, ProxyError, VettedProxy, MCODE_MAGIC};
pub use registry::{RegistryEvent, ServiceRegistry};
pub use replication::{
    ClientAck, ClusterConfig, DurableState, Effect, LogEntry, RepMsg, RepOp, RepStats,
    ReplicaNode, Role, PROTO_REPLICATION,
};
pub use shard::ShardedRegistry;
pub use snapshot::{LeaseSnapshot, SNAPSHOT_VERSION};
