//! Deterministic, versioned lease-table snapshots.
//!
//! The replication log ([`crate::replication`]) cannot grow forever: once
//! entries are committed and applied everywhere they carry no information
//! the lease table itself doesn't. A [`LeaseSnapshot`] freezes the applied
//! table — every registration with its exact expiry instant, in global
//! `ServiceId` order — together with the log position it covers
//! (`last_index`/`last_epoch`), so the log can be truncated up to that
//! point. A restarted registrar rejoins by decoding its persisted snapshot
//! (or a `SnapshotInstall` shipped by the primary) and replaying only the
//! log suffix, instead of rebuilding from an empty table behind a stale
//! window.
//!
//! The encoding is the discovery codec's own discipline (big-endian,
//! length-prefixed, no self-describing framing): byte-identical for equal
//! tables, version-prefixed so a future layout bump is an explicit
//! [`CodecError::BadTag`] instead of silent misparsing, and `decode`
//! consumes the buffer exactly (`TrailingBytes` otherwise).

use crate::codec::{get_item, put_item, CodecError, ServiceItem};
use crate::shard::ShardedRegistry;
use aroma_sim::{SimDuration, SimTime};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Current snapshot layout version (first byte on the wire).
pub const SNAPSHOT_VERSION: u8 = 1;

/// A frozen lease table plus the replication-log position it covers.
#[derive(Clone, Debug, PartialEq)]
pub struct LeaseSnapshot {
    /// Index of the last log entry folded into this snapshot (0 = none).
    pub last_index: u64,
    /// Epoch of that entry (0 when `last_index` is 0).
    pub last_epoch: u64,
    /// Every registration with its exact expiry, in `ServiceId` order.
    pub entries: Vec<(ServiceItem, SimTime)>,
}

impl LeaseSnapshot {
    /// Freeze `table` as of log position (`last_index`, `last_epoch`).
    pub fn capture(table: &ShardedRegistry, last_index: u64, last_epoch: u64) -> Self {
        LeaseSnapshot {
            last_index,
            last_epoch,
            entries: table
                .entries()
                .into_iter()
                .map(|(item, expires)| (item.clone(), expires))
                .collect(),
        }
    }

    /// Rebuild a lease table from this snapshot. Grant policy (`max_lease`)
    /// and shard count are the restoring registrar's own configuration; the
    /// stored expiries are installed verbatim, so the restored table equals
    /// the captured one regardless of either knob.
    pub fn restore(&self, shards: usize, max_lease: SimDuration) -> ShardedRegistry {
        let mut table = ShardedRegistry::new(shards, max_lease);
        for (item, expires) in &self.entries {
            table.install(item.clone(), *expires);
        }
        table
    }

    /// Encode to bytes (versioned, deterministic).
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(32 + self.entries.len() * 64);
        buf.put_u8(SNAPSHOT_VERSION);
        buf.put_u64(self.last_index);
        buf.put_u64(self.last_epoch);
        buf.put_u32(self.entries.len() as u32);
        for (item, expires) in &self.entries {
            put_item(&mut buf, item);
            buf.put_u64(expires.as_nanos());
        }
        buf.freeze()
    }

    /// Decode from bytes; must consume the buffer exactly.
    pub fn decode(mut buf: Bytes) -> Result<Self, CodecError> {
        if buf.remaining() < 1 {
            return Err(CodecError::Truncated);
        }
        let version = buf.get_u8();
        if version != SNAPSHOT_VERSION {
            return Err(CodecError::BadTag(version));
        }
        if buf.remaining() < 8 + 8 + 4 {
            return Err(CodecError::Truncated);
        }
        let last_index = buf.get_u64();
        let last_epoch = buf.get_u64();
        let n = buf.get_u32() as usize;
        let mut entries = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            let item = get_item(&mut buf)?;
            if buf.remaining() < 8 {
                return Err(CodecError::Truncated);
            }
            entries.push((item, SimTime::from_nanos(buf.get_u64())));
        }
        if buf.remaining() > 0 {
            return Err(CodecError::TrailingBytes { remaining: buf.remaining() });
        }
        Ok(LeaseSnapshot { last_index, last_epoch, entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{ServiceId, Template};

    fn item(id: u64) -> ServiceItem {
        ServiceItem {
            id: ServiceId(id),
            kind: "projector/display".into(),
            attributes: vec![("room".into(), format!("A-{id}"))],
            provider: id as u32,
            proxy: Bytes::from(vec![id as u8; 4]),
        }
    }

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    fn table() -> ShardedRegistry {
        let mut r = ShardedRegistry::new(4, SimDuration::from_secs(10));
        for id in [44u64, 7, 190, 3] {
            r.register(t(0), item(id), SimDuration::from_secs(5 + id));
        }
        r
    }

    #[test]
    fn capture_restore_round_trips_the_table() {
        let orig = table();
        let snap = LeaseSnapshot::capture(&orig, 12, 3);
        // Restore into a *different* shard count and lease cap: the stored
        // state must still come back bit-for-bit.
        let back = snap.restore(7, SimDuration::from_secs(1));
        let render = |r: &ShardedRegistry| {
            r.entries()
                .into_iter()
                .map(|(i, e)| (i.clone(), e))
                .collect::<Vec<_>>()
        };
        assert_eq!(render(&orig), render(&back));
        assert_eq!(back.lookup(&Template::any()).len(), 4);
    }

    #[test]
    fn encode_decode_identity() {
        let snap = LeaseSnapshot::capture(&table(), 99, 2);
        let decoded = LeaseSnapshot::decode(snap.encode()).expect("decode");
        assert_eq!(decoded, snap);
    }

    #[test]
    fn encoding_is_deterministic() {
        // Two captures of tables built in different orders encode equal.
        let a = LeaseSnapshot::capture(&table(), 5, 1).encode();
        let mut r = ShardedRegistry::new(4, SimDuration::from_secs(10));
        for id in [3u64, 190, 7, 44] {
            r.register(t(0), item(id), SimDuration::from_secs(5 + id));
        }
        let b = LeaseSnapshot::capture(&r, 5, 1).encode();
        assert_eq!(a, b);
    }

    #[test]
    fn wrong_version_rejected() {
        let good = LeaseSnapshot::capture(&table(), 1, 1).encode();
        let mut raw = BytesMut::new();
        raw.put_u8(SNAPSHOT_VERSION + 1);
        raw.put_slice(&good.slice(1..));
        assert_eq!(LeaseSnapshot::decode(raw.freeze()), Err(CodecError::BadTag(SNAPSHOT_VERSION + 1)));
    }

    #[test]
    fn truncation_and_trailing_rejected() {
        let full = LeaseSnapshot::capture(&table(), 1, 1).encode();
        for cut in 0..full.len() {
            assert!(LeaseSnapshot::decode(full.slice(0..cut)).is_err(), "prefix {cut} decoded");
        }
        let mut padded = BytesMut::new();
        padded.put_slice(&full);
        padded.put_u8(0xEE);
        assert_eq!(
            LeaseSnapshot::decode(padded.freeze()),
            Err(CodecError::TrailingBytes { remaining: 1 })
        );
    }

    #[test]
    fn empty_table_snapshots() {
        let r = ShardedRegistry::new(2, SimDuration::from_secs(1));
        let snap = LeaseSnapshot::capture(&r, 0, 0);
        let decoded = LeaseSnapshot::decode(snap.encode()).expect("decode");
        assert!(decoded.entries.is_empty());
        assert!(decoded.restore(2, SimDuration::from_secs(1)).is_empty());
    }
}
