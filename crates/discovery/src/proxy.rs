//! Vetting downloaded service proxies before they can run.
//!
//! A [`ServiceItem`]'s `proxy` bytes are mobile code from an untrusted
//! provider — Jini's downloadable-proxy idea, and exactly the code the
//! paper's model says crosses administrative boundaries. This module is
//! the single gate between "bytes arrived from the network" and "a
//! program the client will execute": blobs that *claim* to be mcode
//! (leading [`MCODE_MAGIC`] byte) must decode **and** pass the static
//! verifier ([`aroma_mcode::verify`]) under the client's syscall policy,
//! yielding a [`VerifiedProgram`] certificate; anything else is a typed
//! [`ProxyError`], never a runnable program. Blobs without the magic are
//! classified [`VettedProxy::Inert`] — legacy registrations carry plain
//! tokens (`b"display-proxy"`) that clients treat as data, not code.

use crate::codec::ServiceItem;
use aroma_mcode::program::ProgramError;
use aroma_mcode::{Program, VerifiedProgram, VerifyConfig, VerifyError};
use bytes::Bytes;

/// First byte of every encoded mcode program ("Aroma Code"). A proxy blob
/// starting with this byte claims to be executable mobile code and must
/// verify; anything else is inert data.
pub const MCODE_MAGIC: u8 = 0xAC;

/// A proxy blob after vetting.
#[derive(Clone, Debug, PartialEq)]
pub enum VettedProxy {
    /// Not mobile code (no magic): an opaque token the client may only
    /// treat as data.
    Inert(Bytes),
    /// Statically verified mobile code, ready for the VM's fast path.
    Mcode(VerifiedProgram),
}

/// Why a proxy blob claiming to be mobile code was rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProxyError {
    /// The bytes do not decode to a structurally valid program.
    Malformed(ProgramError),
    /// The program decodes but the static verifier cannot prove it safe
    /// (stack discipline, local initialization, termination shape, or
    /// syscalls beyond the client's policy).
    Unverifiable(VerifyError),
}

/// Vet `proxy` bytes under the client's verification `config`.
///
/// The only constructor of [`VettedProxy::Mcode`] in the workspace:
/// callers that match on it are guaranteed the program passed the static
/// verifier with the policy *they* chose.
pub fn vet_proxy(proxy: &Bytes, config: &VerifyConfig) -> Result<VettedProxy, ProxyError> {
    if proxy.first() != Some(&MCODE_MAGIC) {
        return Ok(VettedProxy::Inert(proxy.clone()));
    }
    let program = Program::decode(proxy.clone()).map_err(ProxyError::Malformed)?;
    let verified = program.verify(config).map_err(ProxyError::Unverifiable)?;
    Ok(VettedProxy::Mcode(verified))
}

impl ServiceItem {
    /// Vet this item's proxy blob under `config` — see [`vet_proxy`].
    pub fn vet_proxy(&self, config: &VerifyConfig) -> Result<VettedProxy, ProxyError> {
        vet_proxy(&self.proxy, config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aroma_mcode::isa::DecodeError;
    use aroma_mcode::{Op, SyscallPolicy, SyscallSet};

    fn cfg() -> VerifyConfig {
        VerifyConfig::default()
    }

    #[test]
    fn legacy_inert_blobs_pass_through() {
        let blob = Bytes::from_static(b"display-proxy");
        assert_eq!(
            vet_proxy(&blob, &cfg()),
            Ok(VettedProxy::Inert(blob.clone()))
        );
        assert_eq!(
            vet_proxy(&Bytes::new(), &cfg()),
            Ok(VettedProxy::Inert(Bytes::new()))
        );
    }

    #[test]
    fn wellformed_mcode_verifies() {
        let p = Program::new(vec![Op::Arg(0), Op::PushI(2), Op::Mul, Op::Halt]).unwrap();
        match vet_proxy(&p.encode(), &cfg()) {
            Ok(VettedProxy::Mcode(vp)) => assert_eq!(vp.program(), &p),
            other => panic!("expected verified mcode, got {other:?}"),
        }
    }

    #[test]
    fn truncated_mcode_rejected_as_malformed() {
        let p = Program::new(vec![Op::PushI(7), Op::Halt]).unwrap();
        let full = p.encode();
        let e = vet_proxy(&full.slice(0..full.len() - 1), &cfg()).unwrap_err();
        assert!(matches!(
            e,
            ProxyError::Malformed(ProgramError::Decode(DecodeError::Truncated))
        ));
    }

    #[test]
    fn unverifiable_mcode_rejected_with_cause() {
        // Decodes fine, but underflows: validation alone would run it.
        let p = Program::new(vec![Op::Add, Op::Halt]).unwrap();
        let e = vet_proxy(&p.encode(), &cfg()).unwrap_err();
        assert!(matches!(
            e,
            ProxyError::Unverifiable(VerifyError::StackUnderflow { at: 0, .. })
        ));
    }

    #[test]
    fn syscall_policy_is_the_clients_choice() {
        let p = Program::new(vec![Op::Syscall(4, 0), Op::Halt]).unwrap();
        let blob = p.encode();
        // Default policy: pure computation only → rejected.
        assert!(matches!(
            vet_proxy(&blob, &cfg()),
            Err(ProxyError::Unverifiable(VerifyError::ForbiddenSyscall {
                id: 4,
                ..
            }))
        ));
        // A client granting syscall 4 accepts the same bytes.
        let open = VerifyConfig::with_syscalls(SyscallPolicy::Allow(SyscallSet::of(&[4])));
        assert!(matches!(vet_proxy(&blob, &open), Ok(VettedProxy::Mcode(_))));
    }

    #[test]
    fn service_item_method_delegates() {
        use crate::codec::ServiceId;
        let item = ServiceItem {
            id: ServiceId(1),
            kind: "projector/control".into(),
            attributes: vec![],
            provider: 7,
            proxy: Program::new(vec![Op::PushI(1), Op::Halt]).unwrap().encode(),
        };
        assert!(matches!(item.vet_proxy(&cfg()), Ok(VettedProxy::Mcode(_))));
    }
}
