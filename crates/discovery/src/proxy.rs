//! Vetting downloaded service proxies before they can run.
//!
//! A [`ServiceItem`]'s `proxy` bytes are mobile code from an untrusted
//! provider — Jini's downloadable-proxy idea, and exactly the code the
//! paper's model says crosses administrative boundaries. This module is
//! the single gate between "bytes arrived from the network" and "a
//! program the client will execute": blobs that *claim* to be mcode
//! (leading [`MCODE_MAGIC`] byte) must decode **and** pass the static
//! verifier ([`aroma_mcode::verify`]) under the client's syscall policy,
//! yielding a [`VerifiedProgram`] certificate; anything else is a typed
//! [`ProxyError`], never a runnable program. Blobs without the magic are
//! classified [`VettedProxy::Inert`] — legacy registrations carry plain
//! tokens (`b"display-proxy"`) that clients treat as data, not code.

use crate::codec::ServiceItem;
use aroma_mcode::program::ProgramError;
use aroma_mcode::{FlowError, FlowPolicy, Program, VerifiedProgram, VerifyConfig, VerifyError};
use bytes::Bytes;

/// First byte of every encoded mcode program ("Aroma Code"). A proxy blob
/// starting with this byte claims to be executable mobile code and must
/// verify; anything else is inert data.
pub const MCODE_MAGIC: u8 = 0xAC;

/// Well-known syscall numbers for the Aroma device fabric. Clients build
/// [`SyscallPolicy`](aroma_mcode::SyscallPolicy) capability sets and
/// [`FlowPolicy`] source/sink labels from these ids.
pub mod syscalls {
    /// Read the room's ambient-light/occupancy sensor (privacy source).
    pub const READ_SENSOR: u8 = 10;
    /// Send a datagram beyond the administrative boundary (public sink).
    pub const NET_SEND: u8 = 20;
    /// Read the wall clock (neither source nor sink).
    pub const GET_TIME: u8 = 30;
}

/// The default information-flow policy for vetting device proxies:
/// whatever a proxy learns from the room sensor must never reach the
/// network sink, directly or through branching on it.
pub fn default_flow_policy() -> FlowPolicy {
    FlowPolicy::forbid_strict(&[syscalls::READ_SENSOR], &[syscalls::NET_SEND])
}

/// A proxy blob after vetting.
#[derive(Clone, Debug, PartialEq)]
pub enum VettedProxy {
    /// Not mobile code (no magic): an opaque token the client may only
    /// treat as data.
    Inert(Bytes),
    /// Statically verified mobile code, ready for the VM's fast path.
    Mcode(VerifiedProgram),
}

/// Why a proxy blob claiming to be mobile code was rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProxyError {
    /// The bytes do not decode to a structurally valid program.
    Malformed(ProgramError),
    /// The program decodes but the static verifier cannot prove it safe
    /// (stack discipline, local initialization, termination shape, or
    /// syscalls beyond the client's policy).
    Unverifiable(VerifyError),
    /// The program verifies — every syscall is individually permitted —
    /// but taint analysis found a forbidden information flow from a
    /// source syscall to a sink (e.g. sensor data reaching the network).
    FlowViolation(FlowError),
}

/// Vet `proxy` bytes under the client's verification `config`.
///
/// The only constructor of [`VettedProxy::Mcode`] in the workspace:
/// callers that match on it are guaranteed the program passed the static
/// verifier with the policy *they* chose.
pub fn vet_proxy(proxy: &Bytes, config: &VerifyConfig) -> Result<VettedProxy, ProxyError> {
    if proxy.first() != Some(&MCODE_MAGIC) {
        return Ok(VettedProxy::Inert(proxy.clone()));
    }
    let program = Program::decode(proxy.clone()).map_err(ProxyError::Malformed)?;
    let verified = program.verify(config).map_err(ProxyError::Unverifiable)?;
    Ok(VettedProxy::Mcode(verified))
}

/// Vet `proxy` bytes under `config` **and** an information-flow policy.
///
/// This is the stronger gate: [`vet_proxy`] answers "may each syscall
/// happen at all?" (capabilities); the flow check answers "may data move
/// from these syscalls to those?" (end-to-end). A proxy that reads the
/// sensor *and* sends on the network is fine per capability — both grants
/// may be individually justified — yet rejected here if the sent value
/// depends on the sensed one. Inert blobs pass through untouched: there
/// is no code to leak anything.
pub fn vet_proxy_with_flow(
    proxy: &Bytes,
    config: &VerifyConfig,
    flow: &FlowPolicy,
) -> Result<VettedProxy, ProxyError> {
    let vetted = vet_proxy(proxy, config)?;
    if let VettedProxy::Mcode(ref vp) = vetted {
        aroma_mcode::flow::check_flow(vp, flow).map_err(ProxyError::FlowViolation)?;
    }
    Ok(vetted)
}

impl ServiceItem {
    /// Vet this item's proxy blob under `config` — see [`vet_proxy`].
    pub fn vet_proxy(&self, config: &VerifyConfig) -> Result<VettedProxy, ProxyError> {
        vet_proxy(&self.proxy, config)
    }

    /// Vet this item's proxy blob under `config` and `flow` — see
    /// [`vet_proxy_with_flow`].
    pub fn vet_proxy_with_flow(
        &self,
        config: &VerifyConfig,
        flow: &FlowPolicy,
    ) -> Result<VettedProxy, ProxyError> {
        vet_proxy_with_flow(&self.proxy, config, flow)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aroma_mcode::isa::DecodeError;
    use aroma_mcode::{Op, SyscallPolicy, SyscallSet};

    fn cfg() -> VerifyConfig {
        VerifyConfig::default()
    }

    #[test]
    fn legacy_inert_blobs_pass_through() {
        let blob = Bytes::from_static(b"display-proxy");
        assert_eq!(
            vet_proxy(&blob, &cfg()),
            Ok(VettedProxy::Inert(blob.clone()))
        );
        assert_eq!(
            vet_proxy(&Bytes::new(), &cfg()),
            Ok(VettedProxy::Inert(Bytes::new()))
        );
    }

    #[test]
    fn wellformed_mcode_verifies() {
        let p = Program::new(vec![Op::Arg(0), Op::PushI(2), Op::Mul, Op::Halt]).unwrap();
        match vet_proxy(&p.encode(), &cfg()) {
            Ok(VettedProxy::Mcode(vp)) => assert_eq!(vp.program(), &p),
            other => panic!("expected verified mcode, got {other:?}"),
        }
    }

    #[test]
    fn truncated_mcode_rejected_as_malformed() {
        let p = Program::new(vec![Op::PushI(7), Op::Halt]).unwrap();
        let full = p.encode();
        let e = vet_proxy(&full.slice(0..full.len() - 1), &cfg()).unwrap_err();
        assert!(matches!(
            e,
            ProxyError::Malformed(ProgramError::Decode(DecodeError::Truncated))
        ));
    }

    #[test]
    fn unverifiable_mcode_rejected_with_cause() {
        // Decodes fine, but underflows: validation alone would run it.
        let p = Program::new(vec![Op::Add, Op::Halt]).unwrap();
        let e = vet_proxy(&p.encode(), &cfg()).unwrap_err();
        assert!(matches!(
            e,
            ProxyError::Unverifiable(VerifyError::StackUnderflow { at: 0, .. })
        ));
    }

    #[test]
    fn syscall_policy_is_the_clients_choice() {
        let p = Program::new(vec![Op::Syscall(4, 0), Op::Halt]).unwrap();
        let blob = p.encode();
        // Default policy: pure computation only → rejected.
        assert!(matches!(
            vet_proxy(&blob, &cfg()),
            Err(ProxyError::Unverifiable(VerifyError::ForbiddenSyscall {
                id: 4,
                ..
            }))
        ));
        // A client granting syscall 4 accepts the same bytes.
        let open = VerifyConfig::with_syscalls(SyscallPolicy::Allow(SyscallSet::of(&[4])));
        assert!(matches!(vet_proxy(&blob, &open), Ok(VettedProxy::Mcode(_))));
    }

    /// A capability policy wide enough for a sensor-driven network service.
    fn sensor_net_cfg() -> VerifyConfig {
        VerifyConfig::with_syscalls(SyscallPolicy::Allow(SyscallSet::of(&[
            syscalls::READ_SENSOR,
            syscalls::NET_SEND,
        ])))
    }

    #[test]
    fn exfiltration_proxy_passes_capabilities_but_fails_flow() {
        use aroma_mcode::asm::assemble;
        // Reads the sensor and sends the reading out — each syscall is
        // individually granted, so the capability gate accepts it.
        let leak = assemble(
            "syscall 10 0   ; read_sensor → reading on stack
             syscall 20 1   ; net_send(reading)
             halt",
        )
        .unwrap()
        .encode();
        assert!(matches!(
            vet_proxy(&leak, &sensor_net_cfg()),
            Ok(VettedProxy::Mcode(_))
        ));
        // The flow gate sees sensor data reaching the network sink.
        assert!(matches!(
            vet_proxy_with_flow(&leak, &sensor_net_cfg(), &default_flow_policy()),
            Err(ProxyError::FlowViolation(FlowError::TaintedSink {
                id: syscalls::NET_SEND,
                ..
            }))
        ));
    }

    #[test]
    fn sensor_using_proxy_with_clean_sends_passes_flow() {
        use aroma_mcode::asm::assemble;
        // Reads the sensor for its *own* result, sends only a constant
        // heartbeat: no tainted value reaches the sink.
        let benign = assemble(
            "push 1
             syscall 20 1   ; net_send(1) — constant heartbeat
             drop
             syscall 10 0   ; read_sensor, kept local
             halt",
        )
        .unwrap()
        .encode();
        assert!(matches!(
            vet_proxy_with_flow(&benign, &sensor_net_cfg(), &default_flow_policy()),
            Ok(VettedProxy::Mcode(_))
        ));
    }

    #[test]
    fn implicit_flows_are_caught_by_the_strict_policy() {
        use aroma_mcode::asm::assemble;
        // Branches on the sensor reading, then sends a constant — the
        // *choice* to send still leaks one bit per run.
        let covert = assemble(
            "syscall 10 0
             jz quiet
             push 1
             syscall 20 1
             drop
             quiet:
             push 0
             halt",
        )
        .unwrap()
        .encode();
        assert!(matches!(
            vet_proxy_with_flow(&covert, &sensor_net_cfg(), &default_flow_policy()),
            Err(ProxyError::FlowViolation(FlowError::TaintedSink { .. }))
        ));
    }

    #[test]
    fn inert_blobs_bypass_the_flow_gate() {
        let blob = Bytes::from_static(b"display-proxy");
        assert_eq!(
            vet_proxy_with_flow(&blob, &cfg(), &default_flow_policy()),
            Ok(VettedProxy::Inert(blob.clone()))
        );
    }

    #[test]
    fn service_item_flow_method_delegates() {
        use crate::codec::ServiceId;
        let item = ServiceItem {
            id: ServiceId(3),
            kind: "sensor/ambient".into(),
            attributes: vec![],
            provider: 9,
            proxy: Program::new(vec![Op::Syscall(10, 0), Op::Syscall(20, 1), Op::Halt])
                .unwrap()
                .encode(),
        };
        assert!(matches!(
            item.vet_proxy_with_flow(&sensor_net_cfg(), &default_flow_policy()),
            Err(ProxyError::FlowViolation(_))
        ));
        assert!(matches!(
            item.vet_proxy(&sensor_net_cfg()),
            Ok(VettedProxy::Mcode(_))
        ));
    }

    #[test]
    fn service_item_method_delegates() {
        use crate::codec::ServiceId;
        let item = ServiceItem {
            id: ServiceId(1),
            kind: "projector/control".into(),
            attributes: vec![],
            provider: 7,
            proxy: Program::new(vec![Op::PushI(1), Op::Halt]).unwrap().encode(),
        };
        assert!(matches!(item.vet_proxy(&cfg()), Ok(VettedProxy::Mcode(_))));
    }
}
