//! Federation over the wired backbone: "connecting portable wireless
//! devices to traditional networks" (Aroma research area / AirJava [2]).
//!
//! Two rooms on orthogonal radio channels, each with its own lookup
//! service; the registrars share a building cable. A client in room B must
//! *find* the projector that lives in room A even though no radio frame
//! can cross between the rooms' channels.

use aroma_discovery::apps::{ClientApp, ProviderApp, RegistrarApp};
use aroma_discovery::codec::{ServiceId, ServiceItem, Template};
use aroma_env::radio::{Channel, RadioEnvironment};
use aroma_env::space::Point;
use aroma_net::{MacConfig, Network, NodeConfig, NodeId};
use aroma_sim::SimDuration;
use bytes::Bytes;

fn quiet() -> RadioEnvironment {
    RadioEnvironment {
        shadowing_sigma_db: 0.0,
        ..Default::default()
    }
}

fn projector(id: u64) -> ServiceItem {
    ServiceItem {
        id: ServiceId(id),
        kind: "projector/display".into(),
        attributes: vec![("room".into(), "A-101".into())],
        provider: 0,
        proxy: Bytes::from_static(b"proxy"),
    }
}

struct Building {
    net: Network,
    reg_a: NodeId,
    reg_b: NodeId,
    client_b: NodeId,
}

/// Room A on channel 1 (registrar + projector provider), room B on channel
/// 11 (registrar + client), 10 Mbit/s cable with 1 ms latency between the
/// registrars.
fn building(seed: u64, federate: bool) -> Building {
    let mut net = Network::new(quiet(), MacConfig::default(), seed);
    // Node ids are assigned in order; pre-compute the registrar ids so the
    // federation pointers can be set at construction.
    let reg_a_id = NodeId(0);
    let reg_b_id = NodeId(1);
    let reg_a_app = if federate {
        RegistrarApp::new(SimDuration::from_secs(5)).federated_with(reg_b_id)
    } else {
        RegistrarApp::new(SimDuration::from_secs(5))
    };
    let reg_b_app = if federate {
        RegistrarApp::new(SimDuration::from_secs(5)).federated_with(reg_a_id)
    } else {
        RegistrarApp::new(SimDuration::from_secs(5))
    };
    let reg_a = net.add_node(
        NodeConfig::at_on(Point::new(0.0, 0.0), Channel::CH1),
        Box::new(reg_a_app),
    );
    let reg_b = net.add_node(
        NodeConfig::at_on(Point::new(40.0, 0.0), Channel::CH11),
        Box::new(reg_b_app),
    );
    assert_eq!((reg_a, reg_b), (reg_a_id, reg_b_id));
    net.add_wired_link(reg_a, reg_b, SimDuration::from_millis(1), 10_000_000);
    // Room A: the projector's provider.
    net.add_node(
        NodeConfig::at_on(Point::new(3.0, 0.0), Channel::CH1),
        Box::new(ProviderApp::new(projector(1), 20_000)),
    );
    // Room B: a client hunting for a projector.
    let client_b = net.add_node(
        NodeConfig::at_on(Point::new(43.0, 0.0), Channel::CH11),
        Box::new(ClientApp::new(Template::of_kind("projector/display"))),
    );
    Building {
        net,
        reg_a,
        reg_b,
        client_b,
    }
}

#[test]
fn client_finds_the_other_rooms_projector_through_the_wire() {
    let mut b = building(1, true);
    b.net.run_for(SimDuration::from_secs(5));
    let client = b.net.app_as::<ClientApp>(b.client_b).unwrap();
    assert!(
        client.service_found_at.is_some(),
        "federated lookup should surface the room-A projector"
    );
    assert_eq!(client.found.len(), 1);
    assert_eq!(client.found[0].attr("room"), Some("A-101"));
    let reg_a = b.net.app_as::<RegistrarApp>(b.reg_a).unwrap();
    assert!(reg_a.federated_out >= 1, "room A mirrored its registration");
    let reg_b = b.net.app_as::<RegistrarApp>(b.reg_b).unwrap();
    assert_eq!(reg_b.registry.len(), 1, "mirror landed in room B's registry");
    assert!(b.net.stats().wired_frames >= 1, "traffic crossed the cable");
}

#[test]
fn without_federation_the_rooms_are_islands() {
    let mut b = building(2, false);
    b.net.run_for(SimDuration::from_secs(5));
    let client = b.net.app_as::<ClientApp>(b.client_b).unwrap();
    assert!(client.discovered_at.is_some(), "room B's own registrar answers");
    assert!(
        client.service_found_at.is_none(),
        "the room-A projector must be invisible without the wire"
    );
    assert_eq!(b.net.stats().wired_frames, 0);
}

#[test]
fn mirrored_registrations_renew_through_the_wire() {
    // Leases are 5 s; run 16 s: without renewal forwarding the mirror in
    // room B would lapse.
    let mut b = building(3, true);
    b.net.run_for(SimDuration::from_secs(16));
    let reg_b = b.net.app_as::<RegistrarApp>(b.reg_b).unwrap();
    assert_eq!(
        reg_b.registry.len(),
        1,
        "forwarded renewals must keep the mirror alive"
    );
}

#[test]
fn dead_provider_fades_from_both_rooms() {
    let mut b = building(4, true);
    b.net.run_for(SimDuration::from_secs(3));
    assert_eq!(b.net.app_as::<RegistrarApp>(b.reg_b).unwrap().registry.len(), 1);
    // Kill room A's registrar: the provider's renewals stop being mirrored
    // AND room B's own copy stops being refreshed → it lapses by lease.
    b.net.app_as_mut::<RegistrarApp>(b.reg_a).unwrap().crash();
    b.net.run_for(SimDuration::from_secs(12));
    let reg_b = b.net.app_as::<RegistrarApp>(b.reg_b).unwrap();
    assert_eq!(
        reg_b.registry.len(),
        0,
        "stale federated state must age out by lease, not linger forever"
    );
}
