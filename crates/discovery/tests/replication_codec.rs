//! Property-based tests for the replication wire and durable codecs
//! (PR 9): [`RepMsg`], [`LeaseSnapshot`], and [`DurableState`] round-trip
//! bit-exactly, reject trailing bytes, and fail loudly on truncation —
//! the registrar's "disk" format and peer protocol share the discovery
//! codec's discipline (big-endian, length-prefixed, version-tagged, no
//! silent misparsing).

use aroma_discovery::codec::{ServiceId, ServiceItem};
use aroma_discovery::replication::{DurableState, LogEntry, RepMsg, RepOp};
use aroma_discovery::snapshot::{LeaseSnapshot, SNAPSHOT_VERSION};
use aroma_sim::SimTime;
use bytes::Bytes;
use proptest::prelude::*;

fn arb_string() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9/_-]{0,16}"
}

fn arb_item() -> impl Strategy<Value = ServiceItem> {
    (
        any::<u64>(),
        arb_string(),
        prop::collection::vec((arb_string(), arb_string()), 0..3),
        any::<u32>(),
        prop::collection::vec(any::<u8>(), 0..32),
    )
        .prop_map(|(id, kind, attributes, provider, proxy)| ServiceItem {
            id: ServiceId(id),
            kind,
            attributes,
            provider,
            proxy: Bytes::from(proxy),
        })
}

fn arb_op() -> impl Strategy<Value = RepOp> {
    prop_oneof![
        (arb_item(), any::<u64>()).prop_map(|(item, lease_ms)| RepOp::Register { item, lease_ms }),
        any::<u64>().prop_map(|id| RepOp::Renew { id: ServiceId(id) }),
        any::<u64>().prop_map(|id| RepOp::Unregister { id: ServiceId(id) }),
        Just(RepOp::Sweep),
    ]
}

fn arb_entry() -> impl Strategy<Value = LogEntry> {
    (any::<u64>(), any::<u64>(), arb_op())
        .prop_map(|(epoch, at_nanos, op)| LogEntry { epoch, at_nanos, op })
}

fn arb_snapshot() -> impl Strategy<Value = LeaseSnapshot> {
    (
        any::<u64>(),
        any::<u64>(),
        prop::collection::vec((arb_item(), any::<u64>()), 0..4),
    )
        .prop_map(|(last_index, last_epoch, rows)| LeaseSnapshot {
            last_index,
            last_epoch,
            entries: rows
                .into_iter()
                .map(|(item, t)| (item, SimTime::from_nanos(t)))
                .collect(),
        })
}

fn arb_msg() -> impl Strategy<Value = RepMsg> {
    prop_oneof![
        (
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            prop::collection::vec(arb_entry(), 0..4)
        )
            .prop_map(|(epoch, prev_index, prev_epoch, commit, sent_nanos, entries)| {
                RepMsg::Append { epoch, prev_index, prev_epoch, commit, sent_nanos, entries }
            }),
        (any::<u64>(), any::<bool>(), any::<u64>(), any::<u64>()).prop_map(
            |(epoch, ok, match_index, heard_nanos)| RepMsg::AppendAck {
                epoch,
                ok,
                match_index,
                heard_nanos
            }
        ),
        (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(epoch, last_index, last_epoch)| {
            RepMsg::VoteReq { epoch, last_index, last_epoch }
        }),
        any::<u64>().prop_map(|epoch| RepMsg::VoteGrant { epoch }),
        (any::<u64>(), any::<u64>(), arb_snapshot()).prop_map(|(epoch, sent_nanos, snapshot)| {
            RepMsg::SnapshotInstall { epoch, sent_nanos, snapshot }
        }),
    ]
}

fn arb_durable() -> impl Strategy<Value = DurableState> {
    (
        any::<u64>(),
        arb_snapshot(),
        any::<u64>(),
        prop::collection::vec(arb_entry(), 0..4),
    )
        .prop_map(|(epoch, snapshot, log_start, log)| DurableState {
            epoch,
            snapshot,
            log_start,
            log,
        })
}

proptest! {
    /// Every replication message round-trips unchanged.
    #[test]
    fn repmsg_round_trip(msg in arb_msg()) {
        let encoded = msg.encode();
        let decoded = RepMsg::decode(encoded).expect("decode");
        prop_assert_eq!(decoded, msg);
    }

    /// Every snapshot round-trips unchanged — the blob a rejoining replica
    /// installs is exactly the table the primary froze.
    #[test]
    fn snapshot_round_trip(snap in arb_snapshot()) {
        let encoded = snap.encode();
        let decoded = LeaseSnapshot::decode(encoded).expect("decode");
        prop_assert_eq!(decoded, snap);
    }

    /// Every durable blob round-trips unchanged — what a restarted
    /// registrar reads back is exactly what it fsynced.
    #[test]
    fn durable_round_trip(d in arb_durable()) {
        let encoded = d.encode();
        let decoded = DurableState::decode(encoded).expect("decode");
        prop_assert_eq!(decoded, d);
    }

    /// Decoding arbitrary byte soup never panics on any of the three
    /// decoders — it returns Ok or Err.
    #[test]
    fn decode_arbitrary_bytes_is_total(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = RepMsg::decode(Bytes::from(bytes.clone()));
        let _ = LeaseSnapshot::decode(Bytes::from(bytes.clone()));
        let _ = DurableState::decode(Bytes::from(bytes));
    }

    /// A strict prefix of a valid encoding never decodes to the full
    /// value (no silent truncation), and extra trailing bytes are an
    /// explicit error (no silent garbage after a valid body).
    #[test]
    fn repmsg_prefixes_and_suffixes_fail(msg in arb_msg()) {
        let encoded = msg.encode();
        for cut in 0..encoded.len() {
            if let Ok(m) = RepMsg::decode(encoded.slice(0..cut)) {
                prop_assert_ne!(m, msg.clone(), "prefix {} decoded to the full message", cut);
            }
        }
        let mut padded = encoded[..].to_vec();
        padded.push(0);
        prop_assert!(RepMsg::decode(Bytes::from(padded)).is_err());
    }

    /// Same discipline for the snapshot blob.
    #[test]
    fn snapshot_prefixes_and_suffixes_fail(snap in arb_snapshot()) {
        let encoded = snap.encode();
        for cut in 0..encoded.len() {
            if let Ok(s) = LeaseSnapshot::decode(encoded.slice(0..cut)) {
                prop_assert_ne!(s, snap.clone(), "prefix {} decoded to the full snapshot", cut);
            }
        }
        let mut padded = encoded[..].to_vec();
        padded.push(0);
        prop_assert!(LeaseSnapshot::decode(Bytes::from(padded)).is_err());
    }

    /// Same discipline for the durable blob.
    #[test]
    fn durable_prefixes_and_suffixes_fail(d in arb_durable()) {
        let encoded = d.encode();
        for cut in 0..encoded.len() {
            if let Ok(v) = DurableState::decode(encoded.slice(0..cut)) {
                prop_assert_ne!(v, d.clone(), "prefix {} decoded to the full blob", cut);
            }
        }
        let mut padded = encoded[..].to_vec();
        padded.push(0);
        prop_assert!(DurableState::decode(Bytes::from(padded)).is_err());
    }

    /// A bumped version byte is an explicit [`BadTag`]-style rejection,
    /// never a misparse: the layout can evolve without silent corruption.
    #[test]
    fn snapshot_version_is_enforced(snap in arb_snapshot()) {
        let mut bytes = snap.encode()[..].to_vec();
        bytes[0] = SNAPSHOT_VERSION + 1;
        prop_assert!(LeaseSnapshot::decode(Bytes::from(bytes)).is_err());
    }

    /// The snapshot/table round trip: restore() rebuilds exactly the rows
    /// capture() froze, at any shard count — sharding is unobservable in
    /// the durable format.
    #[test]
    fn snapshot_restore_matches_capture(snap in arb_snapshot(), shards in 1usize..9) {
        use aroma_sim::SimDuration;
        let table = snap.restore(shards, SimDuration::from_secs(10));
        let recaptured = LeaseSnapshot::capture(&table, snap.last_index, snap.last_epoch);
        // capture() emits ServiceId order and last-write-wins on duplicate
        // ids; normalise the input the same way before comparing.
        let mut want: std::collections::BTreeMap<u64, (ServiceItem, SimTime)> =
            Default::default();
        for (item, t) in &snap.entries {
            want.insert(item.id.0, (item.clone(), *t));
        }
        let want: Vec<(ServiceItem, SimTime)> = want.into_values().collect();
        prop_assert_eq!(recaptured.entries, want);
    }
}
