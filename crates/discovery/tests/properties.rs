//! Property-based tests for the discovery codec and registry.

use aroma_discovery::codec::{EventKind, Msg, ServiceId, ServiceItem, Template};
use aroma_discovery::registry::ServiceRegistry;
use aroma_sim::{SimDuration, SimTime};
use bytes::Bytes;
use proptest::prelude::*;

fn arb_string() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9/_-]{0,24}"
}

fn arb_item() -> impl Strategy<Value = ServiceItem> {
    (
        any::<u64>(),
        arb_string(),
        prop::collection::vec((arb_string(), arb_string()), 0..5),
        any::<u32>(),
        prop::collection::vec(any::<u8>(), 0..64),
    )
        .prop_map(|(id, kind, attributes, provider, proxy)| ServiceItem {
            id: ServiceId(id),
            kind,
            attributes,
            provider,
            proxy: Bytes::from(proxy),
        })
}

fn arb_template() -> impl Strategy<Value = Template> {
    (
        prop::option::of(arb_string()),
        prop::collection::vec((arb_string(), arb_string()), 0..4),
    )
        .prop_map(|(kind, attributes)| Template { kind, attributes })
}

fn arb_msg() -> impl Strategy<Value = Msg> {
    prop_oneof![
        any::<u64>().prop_map(|nonce| Msg::DiscoverReq { nonce }),
        any::<u64>().prop_map(|nonce| Msg::DiscoverResp { nonce }),
        (arb_item(), any::<u64>()).prop_map(|(item, lease_ms)| Msg::Register { item, lease_ms }),
        (any::<u64>(), any::<u64>()).prop_map(|(id, granted_ms)| Msg::RegisterAck {
            id: ServiceId(id),
            granted_ms
        }),
        any::<u64>().prop_map(|id| Msg::Renew { id: ServiceId(id) }),
        (any::<u64>(), any::<bool>(), any::<u64>()).prop_map(|(id, ok, granted_ms)| {
            Msg::RenewAck {
                id: ServiceId(id),
                ok,
                granted_ms,
            }
        }),
        any::<u64>().prop_map(|id| Msg::Unregister { id: ServiceId(id) }),
        (any::<u64>(), arb_template()).prop_map(|(req, template)| Msg::Lookup { req, template }),
        (
            any::<u64>(),
            prop::collection::vec(arb_item(), 0..4),
            any::<bool>()
        )
            .prop_map(|(req, items, truncated)| Msg::LookupReply {
                req,
                items,
                truncated
            }),
        arb_template().prop_map(|template| Msg::Subscribe { template }),
        (prop_oneof![
            Just(EventKind::Registered),
            Just(EventKind::Expired),
            Just(EventKind::Unregistered)
        ], arb_item())
            .prop_map(|(kind, item)| Msg::Event { kind, item }),
    ]
}

proptest! {
    /// Every message round-trips through the codec unchanged.
    #[test]
    fn codec_round_trip(msg in arb_msg()) {
        let encoded = msg.encode();
        let decoded = Msg::decode(encoded).expect("decode");
        prop_assert_eq!(decoded, msg);
    }

    /// Decoding any byte soup never panics — it returns Ok or Err.
    #[test]
    fn decode_arbitrary_bytes_is_total(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = Msg::decode(Bytes::from(bytes));
    }

    /// Every strict prefix of a valid encoding fails to decode as that
    /// message (no silent truncation), except prefixes that happen to be a
    /// complete shorter message of the same tag — impossible here because
    /// our encodings have no optional trailing fields.
    #[test]
    fn codec_prefixes_fail(msg in arb_msg()) {
        let encoded = msg.encode();
        for cut in 0..encoded.len() {
            if let Ok(m) = Msg::decode(encoded.slice(0..cut)) {
                prop_assert_ne!(m, msg.clone(), "prefix {} decoded to the full message", cut);
            }
        }
    }

    /// Registry: a registration is visible until its lease lapses and
    /// invisible afterwards.
    #[test]
    fn registry_lease_lifecycle(item in arb_item(), lease_ms in 1u64..10_000, probe_ms in 0u64..20_000) {
        let mut r = ServiceRegistry::new(SimDuration::from_secs(3600));
        let t0 = SimTime::ZERO;
        r.register(t0, item.clone(), SimDuration::from_millis(lease_ms));
        let probe = t0 + SimDuration::from_millis(probe_ms);
        r.expire(probe);
        let visible = r.lookup(&Template::any()).iter().any(|i| i.id == item.id);
        prop_assert_eq!(visible, probe_ms < lease_ms);
    }

    /// Registry lookups never return non-matching items.
    #[test]
    fn registry_lookup_sound(items in prop::collection::vec(arb_item(), 1..10), template in arb_template()) {
        let mut r = ServiceRegistry::new(SimDuration::from_secs(10));
        for it in &items {
            r.register(SimTime::ZERO, it.clone(), SimDuration::from_secs(5));
        }
        for found in r.lookup(&template) {
            prop_assert!(template.matches(found));
        }
        // And complete: every matching registered item appears (modulo
        // duplicate ids, where the last write wins).
        let found_ids: Vec<u64> = r.lookup(&template).iter().map(|i| i.id.0).collect();
        for it in &items {
            let last_with_id = items.iter().rev().find(|j| j.id == it.id).unwrap();
            if template.matches(last_with_id) {
                prop_assert!(found_ids.contains(&it.id.0));
            }
        }
    }
}
