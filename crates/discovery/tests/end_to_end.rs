//! End-to-end discovery over the simulated WLAN: the paper's resource-layer
//! dependency — "the ability to automatically discover the projector service
//! is implemented using Jini and relies on having a Jini lookup service
//! present" — exercised with and without that lookup service.

use aroma_discovery::apps::{ClientApp, ProviderApp, ProviderState, RegistrarApp};
use aroma_discovery::codec::{EventKind, ServiceId, ServiceItem, Template};
use aroma_env::radio::RadioEnvironment;
use aroma_env::space::Point;
use aroma_net::{MacConfig, Network, NodeConfig, NodeId};
use aroma_sim::{SimDuration, SimTime};
use bytes::Bytes;

fn quiet() -> RadioEnvironment {
    RadioEnvironment {
        shadowing_sigma_db: 0.0,
        ..Default::default()
    }
}

fn projector_item(id: u64) -> ServiceItem {
    ServiceItem {
        id: ServiceId(id),
        kind: "projector/display".into(),
        attributes: vec![("room".into(), "A-101".into())],
        provider: 0, // filled by the provider app at start
        proxy: Bytes::from_static(b"vnc-endpoint"),
    }
}

struct World {
    net: Network,
    registrar: NodeId,
    provider: NodeId,
    client: NodeId,
}

fn world(seed: u64, subscribe: bool) -> World {
    let mut net = Network::new(quiet(), MacConfig::default(), seed);
    let registrar = net.add_node(
        NodeConfig::at(Point::new(0.0, 0.0)),
        Box::new(RegistrarApp::new(SimDuration::from_secs(5))),
    );
    let provider = net.add_node(
        NodeConfig::at(Point::new(4.0, 0.0)),
        Box::new(ProviderApp::new(projector_item(1), 30_000)),
    );
    let client_app = if subscribe {
        ClientApp::new(Template::of_kind("projector/display")).with_subscription()
    } else {
        ClientApp::new(Template::of_kind("projector/display"))
    };
    let client = net.add_node(NodeConfig::at(Point::new(0.0, 4.0)), Box::new(client_app));
    World {
        net,
        registrar,
        provider,
        client,
    }
}

#[test]
fn client_finds_the_projector() {
    let mut w = world(1, false);
    w.net.run_for(SimDuration::from_secs(3));
    let client = w.net.app_as::<ClientApp>(w.client).unwrap();
    assert!(client.discovered_at.is_some(), "client never found registrar");
    let t = client.service_found_at.expect("service never found");
    assert!(
        t < SimTime::ZERO + SimDuration::from_secs(2),
        "time-to-service too long: {t}"
    );
    assert_eq!(client.found.len(), 1);
    assert_eq!(client.found[0].id, ServiceId(1));
    assert_eq!(client.found[0].provider, w.provider.0);
    assert_eq!(client.found[0].attr("room"), Some("A-101"));
    let provider = w.net.app_as::<ProviderApp>(w.provider).unwrap();
    assert_eq!(provider.state, ProviderState::Registered);
}

#[test]
fn without_lookup_service_nothing_is_found() {
    // Same world, but the registrar is dead from the start — the paper's
    // "relies on having a Jini lookup service present" made falsifiable.
    let mut w = world(2, false);
    w.net
        .app_as_mut::<RegistrarApp>(w.registrar)
        .unwrap()
        .crash();
    w.net.run_for(SimDuration::from_secs(3));
    let client = w.net.app_as::<ClientApp>(w.client).unwrap();
    assert!(client.discovered_at.is_none());
    assert!(client.service_found_at.is_none());
    assert!(client.found.is_empty());
    let provider = w.net.app_as::<ProviderApp>(w.provider).unwrap();
    assert_eq!(provider.state, ProviderState::Discovering);
    assert!(provider.rediscoveries > 2, "provider should keep trying");
}

#[test]
fn leases_are_renewed_and_services_survive() {
    let mut w = world(3, false);
    // Lease max is 5 s; run 12 s: at least two renewals must have happened
    // and the registration must still be live.
    w.net.run_for(SimDuration::from_secs(12));
    let provider = w.net.app_as::<ProviderApp>(w.provider).unwrap();
    assert!(
        provider.renewals_completed >= 2,
        "renewals: {}",
        provider.renewals_completed
    );
    let reg = w.net.app_as::<RegistrarApp>(w.registrar).unwrap();
    assert_eq!(reg.registry.len(), 1, "registration lapsed despite renewals");
}

#[test]
fn registrar_crash_loses_soft_state_and_provider_recovers() {
    let mut w = world(4, false);
    w.net.run_for(SimDuration::from_secs(2));
    assert_eq!(
        w.net
            .app_as::<RegistrarApp>(w.registrar)
            .unwrap()
            .registry
            .len(),
        1
    );
    // Crash, run past the renew interval so the provider notices, restart.
    w.net
        .app_as_mut::<RegistrarApp>(w.registrar)
        .unwrap()
        .crash();
    w.net.run_for(SimDuration::from_secs(1));
    w.net
        .app_as_mut::<RegistrarApp>(w.registrar)
        .unwrap()
        .restart();
    w.net.run_for(SimDuration::from_secs(8));
    let reg = w.net.app_as::<RegistrarApp>(w.registrar).unwrap();
    assert_eq!(
        reg.registry.len(),
        1,
        "provider should re-register after the registrar restart"
    );
    let provider = w.net.app_as::<ProviderApp>(w.provider).unwrap();
    assert!(
        provider.registrations_completed >= 2,
        "expected a re-registration, got {}",
        provider.registrations_completed
    );
    assert_eq!(provider.state, ProviderState::Registered);
}

#[test]
fn subscriber_sees_registration_events() {
    let mut net = Network::new(quiet(), MacConfig::default(), 5);
    let registrar = net.add_node(
        NodeConfig::at(Point::new(0.0, 0.0)),
        Box::new(RegistrarApp::new(SimDuration::from_secs(5))),
    );
    // Client first, so its subscription is in place before the provider
    // registers (provider starts discovering at the same time; give the
    // client a head start by making the provider's item register later via
    // network timing — in practice discovery races are fine because the
    // client also polls lookups).
    let client = net.add_node(
        NodeConfig::at(Point::new(0.0, 4.0)),
        Box::new(ClientApp::new(Template::of_kind("projector/display")).with_subscription()),
    );
    let _provider = net.add_node(
        NodeConfig::at(Point::new(4.0, 0.0)),
        Box::new(ProviderApp::new(projector_item(7), 2_000)),
    );
    net.run_for(SimDuration::from_secs(4));
    let c = net.app_as::<ClientApp>(client).unwrap();
    assert!(c.service_found_at.is_some());
    // The provider renews (lease 2 s max 5 s → granted 2 s), so no Expired
    // events; stop the world instead: crash the registrar is overkill —
    // simply assert we got the Registered event if our subscription beat the
    // registration, or found it via lookup otherwise.
    let got_registered_event = c
        .events
        .iter()
        .any(|(_, k, id)| *k == EventKind::Registered && *id == ServiceId(7));
    assert!(
        got_registered_event || !c.found.is_empty(),
        "neither event nor lookup found the service"
    );
    let _ = registrar;
}

#[test]
fn lease_expiry_fires_event_to_subscriber() {
    // A provider that dies (we simulate by never renewing: lease 1 s, then
    // we stop its timers by crashing it — easiest is a provider whose
    // renewals are blocked by killing the registrar's RenewAck? Simplest
    // honest route: register directly via a hand-rolled one-shot app.)
    use aroma_net::{NetApp, NetCtx};
    use aroma_discovery::codec::Msg;

    struct OneShotRegister {
        registrar: NodeId,
        item: ServiceItem,
    }
    impl NetApp for OneShotRegister {
        fn on_start(&mut self, ctx: &mut NetCtx<'_>) {
            let mut item = self.item.clone();
            item.provider = ctx.node().0;
            ctx.send(
                aroma_net::Address::Node(self.registrar),
                Msg::Register {
                    item,
                    lease_ms: 800,
                }
                .encode(),
            );
        }
    }

    let mut net = Network::new(quiet(), MacConfig::default(), 6);
    let registrar = net.add_node(
        NodeConfig::at(Point::new(0.0, 0.0)),
        Box::new(RegistrarApp::new(SimDuration::from_secs(5))),
    );
    let client = net.add_node(
        NodeConfig::at(Point::new(0.0, 4.0)),
        Box::new(ClientApp::new(Template::any()).with_subscription()),
    );
    net.add_node(
        NodeConfig::at(Point::new(4.0, 0.0)),
        Box::new(OneShotRegister {
            registrar,
            item: projector_item(9),
        }),
    );
    net.run_for(SimDuration::from_secs(4));
    let reg = net.app_as::<RegistrarApp>(registrar).unwrap();
    assert_eq!(reg.registry.len(), 0, "800 ms lease must have lapsed");
    let c = net.app_as::<ClientApp>(client).unwrap();
    assert!(
        c.events
            .iter()
            .any(|(_, k, id)| *k == EventKind::Expired && *id == ServiceId(9)),
        "subscriber missed the Expired event: {:?}",
        c.events
    );
}

#[test]
fn lookup_reply_respects_mtu_with_truncation_flag() {
    use aroma_discovery::codec::Msg;
    use aroma_net::{NetApp, NetCtx};

    // Register many fat services directly, then issue one lookup and check
    // the reply was MTU-packed and flagged truncated.
    struct BulkRegister {
        registrar: NodeId,
        count: u64,
    }
    impl NetApp for BulkRegister {
        fn on_start(&mut self, ctx: &mut NetCtx<'_>) {
            for i in 0..self.count {
                let item = ServiceItem {
                    id: ServiceId(100 + i),
                    kind: "printer".into(),
                    attributes: vec![(
                        "description".into(),
                        "x".repeat(120), // fat attribute
                    )],
                    provider: ctx.node().0,
                    proxy: Bytes::from(vec![0u8; 64]),
                };
                ctx.send(
                    aroma_net::Address::Node(self.registrar),
                    Msg::Register {
                        item,
                        lease_ms: 60_000,
                    }
                    .encode(),
                );
            }
        }
    }

    let mut net = Network::new(quiet(), MacConfig::default(), 7);
    let registrar = net.add_node(
        NodeConfig::at(Point::new(0.0, 0.0)),
        Box::new(RegistrarApp::new(SimDuration::from_secs(60))),
    );
    let client = net.add_node(
        NodeConfig::at(Point::new(0.0, 4.0)),
        Box::new(ClientApp::new(Template::of_kind("printer"))),
    );
    net.add_node(
        NodeConfig::at(Point::new(4.0, 0.0)),
        Box::new(BulkRegister {
            registrar,
            count: 20,
        }),
    );
    net.run_for(SimDuration::from_secs(5));
    let reg = net.app_as::<RegistrarApp>(registrar).unwrap();
    assert_eq!(reg.registry.len(), 20);
    let c = net.app_as::<ClientApp>(client).unwrap();
    assert!(!c.found.is_empty(), "client found nothing");
    assert!(
        c.found.len() < 20,
        "a 1500-byte MTU cannot carry 20 fat items: got {}",
        c.found.len()
    );
}

#[test]
fn full_mac_queue_drops_events_audibly_and_encodes_once() {
    use aroma_sim::telemetry::TelemetryConfig;

    // One-slot MAC queues: a registration that fans out notifications to
    // several subscribers can hand the MAC at most one frame — the rest
    // must be dropped, *counted*, and visible in telemetry, while the
    // transition is still encoded exactly once for the whole batch.
    let mut net = Network::new(
        quiet(),
        MacConfig {
            queue_cap: 1,
            ..Default::default()
        },
        11,
    );
    net.attach_telemetry(TelemetryConfig::default());
    let registrar = net.add_node(
        NodeConfig::at(Point::new(0.0, 0.0)),
        Box::new(RegistrarApp::new(SimDuration::from_secs(5))),
    );
    let subscribers: Vec<NodeId> = (0..4)
        .map(|i| {
            net.add_node(
                NodeConfig::at(Point::new(0.0, 2.0 + i as f64)),
                Box::new(
                    ClientApp::new(Template::of_kind("projector/display")).with_subscription(),
                ),
            )
        })
        .collect();
    // A registrant that waits until every subscription has landed, then
    // registers three services back-to-back — three notification
    // fan-outs of four subscribers each against one-slot queues.
    struct LateRegistrant {
        registrar: NodeId,
    }
    impl aroma_net::NetApp for LateRegistrant {
        fn on_start(&mut self, ctx: &mut aroma_net::NetCtx<'_>) {
            ctx.set_timer(SimDuration::from_secs(2), 1);
        }
        fn on_timer(&mut self, ctx: &mut aroma_net::NetCtx<'_>, _token: u64) {
            for id in [9u64, 10, 11] {
                let mut item = projector_item(id);
                item.provider = ctx.node().0;
                ctx.send(
                    aroma_net::Address::Node(self.registrar),
                    aroma_discovery::codec::Msg::Register {
                        item,
                        lease_ms: 30_000,
                    }
                    .encode(),
                );
            }
        }
    }
    net.add_node(
        NodeConfig::at(Point::new(4.0, 0.0)),
        Box::new(LateRegistrant { registrar }),
    );
    net.run_for(SimDuration::from_secs(5));

    let reg = net.app_as::<RegistrarApp>(registrar).unwrap();
    assert!(
        reg.events_dropped > 0,
        "a 1-slot MAC queue cannot absorb a 4-subscriber fan-out"
    );
    let delivered: usize = subscribers
        .iter()
        .map(|&s| net.app_as::<ClientApp>(s).unwrap().events.len())
        .sum();
    let reg = net.app_as::<RegistrarApp>(registrar).unwrap();
    let attempts = reg.events_dropped + delivered as u64;
    assert!(
        reg.event_encodings < attempts,
        "{} encodings for {} notification attempts — the batch is re-encoding per subscriber",
        reg.event_encodings,
        attempts
    );
    let snap = net.telemetry_snapshot().expect("telemetry attached");
    let dropped_counter = snap
        .counters
        .iter()
        .find(|(name, _)| *name == "disc.events_dropped")
        .map(|(_, v)| *v)
        .unwrap_or(0);
    assert_eq!(
        dropped_counter, reg.events_dropped,
        "telemetry counter disagrees with the app counter"
    );
}
