//! # aroma-telemetry — structured tracing + metrics for the Aroma/LPC stack
//!
//! The LPC analysis engine classifies issues layer by layer; this crate is
//! the measurement substrate that gives those classifications *evidence*.
//! It provides, behind a single [`Telemetry`] handle:
//!
//! * a bounded **ring-buffer trace sink** — fixed capacity allocated up
//!   front, no allocation on the hot path, drop-oldest overwrite with a
//!   dropped-events counter ([`Snapshot::trace_dropped`]),
//! * a **metrics registry** — named counters, gauges and streaming
//!   summary / fixed-bin histogram instruments, addressable either by name
//!   or through pre-registered typed handles ([`CounterId`] & friends),
//! * **event-loop self-profiling** — wall-time per handler type, so perf
//!   work has a baseline ([`Snapshot::profile`], sorted hottest-first).
//!
//! Disabled mode is the [`Telemetry::Off`] enum variant: every recording
//! method is `#[inline]` and hits a no-op match arm, so an uninstrumented
//! run pays nothing (verified by `lpc-bench`'s `telemetry` Criterion bench).
//!
//! **Determinism contract:** trace events and metrics carry *simulated* time
//! only (`t_nanos`), so for a fixed seed the trace and metric sections of a
//! [`Snapshot`] are bit-identical across runs. Wall-clock measurements are
//! confined to the profile section, which [`Snapshot::deterministic_eq`]
//! deliberately excludes.
//!
//! This crate is a dependency leaf (std only): `aroma-sim` re-exports it as
//! `aroma_sim::telemetry` and adds JSON rendering there, so every substrate
//! crate reaches it through the path it already has.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;

/// The five layers of the LPC model, used to tag trace events so a snapshot
/// can be sliced the same way the analysis engine slices issues.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Layer {
    /// Everything outside the system boundary (spectrum, rooms, people).
    Environment,
    /// Hardware and physical I/O (radio, display).
    Physical,
    /// System resources and protocols (MAC, transport, pipelines).
    Resource,
    /// Services and abstract state (leases, sessions).
    Abstract,
    /// User intent and experience (surprise, frustration).
    Intentional,
}

impl Layer {
    /// Stable lowercase label, used as the JSON value.
    pub fn label(&self) -> &'static str {
        match self {
            Layer::Environment => "environment",
            Layer::Physical => "physical",
            Layer::Resource => "resource",
            Layer::Abstract => "abstract",
            Layer::Intentional => "intentional",
        }
    }
}

/// One structured trace event. Plain data, `Copy`, fixed size — the ring
/// buffer stores these inline so recording never allocates.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceEvent {
    /// Simulated time in nanoseconds (or a step index for substrates without
    /// a simulated clock, e.g. the user simulator).
    pub t_nanos: u64,
    /// LPC layer the event belongs to.
    pub layer: Layer,
    /// Static event name, dot-separated by convention (`"mac.retry"`).
    pub name: &'static str,
    /// Node / entity id, 0 when not applicable.
    pub node: u32,
    /// First event-specific argument (meaning depends on `name`).
    pub a: i64,
    /// Second event-specific argument.
    pub b: i64,
}

/// Fixed-capacity drop-oldest ring of [`TraceEvent`]s.
#[derive(Clone, Debug)]
struct Ring {
    slots: Vec<TraceEvent>,
    capacity: usize,
    /// Index of the oldest element once the ring has wrapped.
    next: usize,
    dropped: u64,
}

impl Ring {
    fn new(capacity: usize) -> Self {
        Ring {
            slots: Vec::with_capacity(capacity),
            capacity,
            next: 0,
            dropped: 0,
        }
    }

    #[inline]
    fn push(&mut self, ev: TraceEvent) {
        if self.capacity == 0 {
            return; // tracing disabled, metrics-only recorder
        }
        if self.slots.len() < self.capacity {
            self.slots.push(ev);
        } else {
            // Overwrite the oldest event and count it as dropped.
            self.slots[self.next] = ev;
            self.next = (self.next + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Events oldest → newest.
    fn in_order(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.slots.len());
        out.extend_from_slice(&self.slots[self.next..]);
        out.extend_from_slice(&self.slots[..self.next]);
        out
    }
}

/// Streaming mean/variance/min/max (Welford). A deliberately minimal twin of
/// `aroma_sim::stats::Summary` — this crate sits below `aroma-sim` in the
/// dependency graph, so it cannot borrow that type.
#[derive(Clone, Copy, Debug)]
struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    fn new() -> Self {
        Welford {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    #[inline]
    fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }
}

/// Fixed-width-bin histogram over `[lo, hi)` with under/overflow bins and
/// an explicit NaN counter.
#[derive(Clone, Debug)]
struct BinHist {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    nan: u64,
    count: u64,
}

impl BinHist {
    fn new(lo: f64, hi: f64, nbins: usize) -> Self {
        assert!(nbins > 0, "histogram needs at least one bin");
        assert!(lo < hi, "histogram range must be non-empty");
        BinHist {
            lo,
            hi,
            bins: vec![0; nbins],
            underflow: 0,
            overflow: 0,
            nan: 0,
            count: 0,
        }
    }

    #[inline]
    fn record(&mut self, x: f64) {
        self.count += 1;
        if x.is_nan() {
            // NaN fails both range tests and `as usize` saturates it to 0,
            // so it used to be silently counted in bin 0; surface it.
            self.nan += 1;
        } else if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let frac = (x - self.lo) / (self.hi - self.lo);
            let idx = ((frac * self.bins.len() as f64) as usize).min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    fn quantile(&self, q: f64) -> Option<f64> {
        let numeric = self.count - self.nan;
        if numeric == 0 {
            return None;
        }
        let target = q.clamp(0.0, 1.0) * numeric as f64;
        let mut cum = self.underflow as f64;
        if target <= cum {
            return Some(self.lo);
        }
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        for (i, &b) in self.bins.iter().enumerate() {
            let next = cum + b as f64;
            if target <= next && b > 0 {
                let within = (target - cum) / b as f64;
                return Some(self.lo + width * (i as f64 + within));
            }
            cum = next;
        }
        Some(self.hi)
    }
}

/// Handle to a registered counter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CounterId(usize);
/// Handle to a registered gauge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GaugeId(usize);
/// Handle to a registered summary instrument.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SummaryId(usize);
/// Handle to a registered histogram instrument.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistId(usize);

/// Name → slot registry for one instrument kind. Registration order is
/// first-touch order, which is deterministic for a deterministic run and is
/// preserved in snapshots.
#[derive(Clone, Debug)]
struct Slots<T> {
    names: Vec<&'static str>,
    values: Vec<T>,
    index: HashMap<&'static str, usize>,
}

impl<T> Slots<T> {
    fn new() -> Self {
        Slots {
            names: Vec::new(),
            values: Vec::new(),
            index: HashMap::new(),
        }
    }

    fn get_or_insert_with(&mut self, name: &'static str, init: impl FnOnce() -> T) -> usize {
        if let Some(&i) = self.index.get(name) {
            return i;
        }
        let i = self.values.len();
        self.names.push(name);
        self.values.push(init());
        self.index.insert(name, i);
        i
    }
}

/// The live recorder state behind [`Telemetry::On`]. Boxed so the `Off`
/// variant stays one machine word.
#[derive(Clone, Debug)]
pub struct Active {
    ring: Ring,
    counters: Slots<u64>,
    gauges: Slots<f64>,
    summaries: Slots<Welford>,
    hists: Slots<BinHist>,
    profile: Slots<(u64, u64)>, // (calls, total wall nanos)
}

impl Active {
    fn new(cfg: &TelemetryConfig) -> Self {
        Active {
            ring: Ring::new(cfg.ring_capacity),
            counters: Slots::new(),
            gauges: Slots::new(),
            summaries: Slots::new(),
            hists: Slots::new(),
            profile: Slots::new(),
        }
    }

    /// Register (or look up) a counter and return its handle.
    pub fn register_counter(&mut self, name: &'static str) -> CounterId {
        CounterId(self.counters.get_or_insert_with(name, || 0))
    }

    /// Register (or look up) a gauge and return its handle.
    pub fn register_gauge(&mut self, name: &'static str) -> GaugeId {
        GaugeId(self.gauges.get_or_insert_with(name, || 0.0))
    }

    /// Register (or look up) a summary instrument and return its handle.
    pub fn register_summary(&mut self, name: &'static str) -> SummaryId {
        SummaryId(self.summaries.get_or_insert_with(name, Welford::new))
    }

    /// Register (or look up) a histogram over `[lo, hi)` with `nbins` bins.
    /// The geometry is fixed by whoever registers first.
    pub fn register_hist(&mut self, name: &'static str, lo: f64, hi: f64, nbins: usize) -> HistId {
        HistId(self.hists.get_or_insert_with(name, || BinHist::new(lo, hi, nbins)))
    }

    /// Increment a counter through its handle.
    #[inline]
    pub fn add(&mut self, id: CounterId, delta: u64) {
        self.counters.values[id.0] += delta;
    }

    /// Set a gauge through its handle.
    #[inline]
    pub fn set(&mut self, id: GaugeId, value: f64) {
        self.gauges.values[id.0] = value;
    }

    /// Record into a summary through its handle.
    #[inline]
    pub fn record(&mut self, id: SummaryId, value: f64) {
        self.summaries.values[id.0].record(value);
    }

    /// Record into a histogram through its handle.
    #[inline]
    pub fn record_hist(&mut self, id: HistId, value: f64) {
        self.hists.values[id.0].record(value);
    }
}

/// Recorder configuration.
#[derive(Clone, Copy, Debug)]
pub struct TelemetryConfig {
    /// Trace ring capacity in events; `0` disables tracing (metrics-only).
    pub ring_capacity: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            ring_capacity: 4096,
        }
    }
}

impl TelemetryConfig {
    /// Metrics only, no trace ring.
    pub fn metrics_only() -> Self {
        TelemetryConfig { ring_capacity: 0 }
    }
}

/// The recording interface the instrumented substrates program against.
///
/// [`Telemetry`] is the canonical implementation (its `Off` variant makes
/// every method a no-op); [`Active`] implements it too for code that holds
/// an always-on recorder.
pub trait Recorder {
    /// Append a structured trace event.
    fn trace(&mut self, ev: TraceEvent);
    /// Add `delta` to the named counter (registering it on first use).
    fn count(&mut self, name: &'static str, delta: u64);
    /// Set the named gauge (registering it on first use).
    fn gauge(&mut self, name: &'static str, value: f64);
    /// Record one observation into the named summary.
    fn observe(&mut self, name: &'static str, value: f64);
    /// Record one observation into the named histogram; the geometry
    /// arguments apply only on first registration.
    fn observe_hist(&mut self, name: &'static str, lo: f64, hi: f64, nbins: usize, value: f64);
    /// Charge `wall_nanos` of wall-clock time to `handler` (self-profiling).
    fn profile(&mut self, handler: &'static str, wall_nanos: u64);
    /// Whether recording is live (lets callers skip expensive argument
    /// construction when disabled).
    fn enabled(&self) -> bool;
}

impl Recorder for Active {
    #[inline]
    fn trace(&mut self, ev: TraceEvent) {
        self.ring.push(ev);
    }

    #[inline]
    fn count(&mut self, name: &'static str, delta: u64) {
        let id = self.register_counter(name);
        self.add(id, delta);
    }

    #[inline]
    fn gauge(&mut self, name: &'static str, value: f64) {
        let id = self.register_gauge(name);
        self.set(id, value);
    }

    #[inline]
    fn observe(&mut self, name: &'static str, value: f64) {
        let id = self.register_summary(name);
        self.record(id, value);
    }

    #[inline]
    fn observe_hist(&mut self, name: &'static str, lo: f64, hi: f64, nbins: usize, value: f64) {
        let id = self.register_hist(name, lo, hi, nbins);
        self.record_hist(id, value);
    }

    #[inline]
    fn profile(&mut self, handler: &'static str, wall_nanos: u64) {
        let i = self.profile.get_or_insert_with(handler, || (0, 0));
        let (calls, nanos) = &mut self.profile.values[i];
        *calls += 1;
        *nanos += wall_nanos;
    }

    #[inline]
    fn enabled(&self) -> bool {
        true
    }
}

/// A recorder that is either absent (`Off`, the default — every call inlines
/// to a no-op) or live (`On`).
#[derive(Clone, Debug, Default)]
pub enum Telemetry {
    /// No recording; all methods are no-ops.
    #[default]
    Off,
    /// Live recording into the boxed [`Active`] state.
    On(Box<Active>),
}

impl Telemetry {
    /// Disabled recorder (same as `Telemetry::default()`).
    pub fn off() -> Self {
        Telemetry::Off
    }

    /// Live recorder with the given configuration.
    pub fn enabled(cfg: TelemetryConfig) -> Self {
        Telemetry::On(Box::new(Active::new(&cfg)))
    }

    /// Convenience: build and append a trace event in one call.
    #[inline]
    pub fn event(
        &mut self,
        t_nanos: u64,
        layer: Layer,
        name: &'static str,
        node: u32,
        a: i64,
        b: i64,
    ) {
        if let Telemetry::On(act) = self {
            act.trace(TraceEvent {
                t_nanos,
                layer,
                name,
                node,
                a,
                b,
            });
        }
    }

    /// Access the live state, if any (for handle pre-registration).
    pub fn active_mut(&mut self) -> Option<&mut Active> {
        match self {
            Telemetry::Off => None,
            Telemetry::On(act) => Some(act),
        }
    }

    /// Snapshot the recorder; `None` when disabled.
    pub fn snapshot(&self) -> Option<Snapshot> {
        match self {
            Telemetry::Off => None,
            Telemetry::On(act) => Some(Snapshot::of(act)),
        }
    }

    /// Whether this recorder is live. Recorders are per-subsystem and never
    /// merged directly; combine their [`Snapshot`]s with [`Snapshot::absorb`].
    #[inline]
    pub fn is_on(&self) -> bool {
        matches!(self, Telemetry::On(_))
    }
}

impl Recorder for Telemetry {
    #[inline]
    fn trace(&mut self, ev: TraceEvent) {
        if let Telemetry::On(act) = self {
            act.trace(ev);
        }
    }

    #[inline]
    fn count(&mut self, name: &'static str, delta: u64) {
        if let Telemetry::On(act) = self {
            act.count(name, delta);
        }
    }

    #[inline]
    fn gauge(&mut self, name: &'static str, value: f64) {
        if let Telemetry::On(act) = self {
            act.gauge(name, value);
        }
    }

    #[inline]
    fn observe(&mut self, name: &'static str, value: f64) {
        if let Telemetry::On(act) = self {
            act.observe(name, value);
        }
    }

    #[inline]
    fn observe_hist(&mut self, name: &'static str, lo: f64, hi: f64, nbins: usize, value: f64) {
        if let Telemetry::On(act) = self {
            act.observe_hist(name, lo, hi, nbins, value);
        }
    }

    #[inline]
    fn profile(&mut self, handler: &'static str, wall_nanos: u64) {
        if let Telemetry::On(act) = self {
            act.profile(handler, wall_nanos);
        }
    }

    #[inline]
    fn enabled(&self) -> bool {
        matches!(self, Telemetry::On(_))
    }
}

/// Snapshot of one summary instrument.
#[derive(Clone, Debug, PartialEq)]
pub struct SummarySnap {
    /// Instrument name.
    pub name: &'static str,
    /// Observation count.
    pub count: u64,
    /// Arithmetic mean (0 when empty).
    pub mean: f64,
    /// Sample standard deviation (n−1; 0 below two samples).
    pub std_dev: f64,
    /// Smallest observation, `None` when empty.
    pub min: Option<f64>,
    /// Largest observation, `None` when empty.
    pub max: Option<f64>,
}

/// Snapshot of one histogram instrument.
#[derive(Clone, Debug, PartialEq)]
pub struct HistSnap {
    /// Instrument name.
    pub name: &'static str,
    /// Lower range bound (inclusive).
    pub lo: f64,
    /// Upper range bound (exclusive).
    pub hi: f64,
    /// Per-bin counts.
    pub bins: Vec<u64>,
    /// Observations below `lo`.
    pub underflow: u64,
    /// Observations at or above `hi`.
    pub overflow: u64,
    /// NaN observations (excluded from quantiles) — nonzero means a
    /// measurement bug upstream.
    pub nan: u64,
    /// Total observations.
    pub count: u64,
    /// Median estimate, `None` when empty.
    pub p50: Option<f64>,
    /// 99th-percentile estimate, `None` when empty.
    pub p99: Option<f64>,
}

/// Wall-clock profile of one event-handler type.
#[derive(Clone, Debug, PartialEq)]
pub struct HandlerStat {
    /// Handler name (event kind).
    pub name: &'static str,
    /// Invocations.
    pub calls: u64,
    /// Total wall-clock nanoseconds across invocations.
    pub total_nanos: u64,
    /// Mean wall-clock nanoseconds per invocation.
    pub mean_nanos: f64,
}

/// Immutable snapshot of a recorder: the trace ring, every metric and the
/// handler profile (sorted hottest first).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// Counters in registration order.
    pub counters: Vec<(&'static str, u64)>,
    /// Gauges in registration order.
    pub gauges: Vec<(&'static str, f64)>,
    /// Summary instruments in registration order.
    pub summaries: Vec<SummarySnap>,
    /// Histogram instruments in registration order.
    pub histograms: Vec<HistSnap>,
    /// Trace ring contents, oldest → newest.
    pub trace: Vec<TraceEvent>,
    /// Events overwritten because the ring was full.
    pub trace_dropped: u64,
    /// Handler wall-time profile, sorted by total time descending.
    pub profile: Vec<HandlerStat>,
}

impl Snapshot {
    fn of(act: &Active) -> Snapshot {
        let counters = act
            .counters
            .names
            .iter()
            .zip(&act.counters.values)
            .map(|(&n, &v)| (n, v))
            .collect();
        let gauges = act
            .gauges
            .names
            .iter()
            .zip(&act.gauges.values)
            .map(|(&n, &v)| (n, v))
            .collect();
        let summaries = act
            .summaries
            .names
            .iter()
            .zip(&act.summaries.values)
            .map(|(&name, w)| {
                let variance = if w.count < 2 {
                    0.0
                } else {
                    w.m2 / (w.count - 1) as f64
                };
                SummarySnap {
                    name,
                    count: w.count,
                    mean: if w.count == 0 { 0.0 } else { w.mean },
                    std_dev: variance.sqrt(),
                    min: (w.count > 0).then_some(w.min),
                    max: (w.count > 0).then_some(w.max),
                }
            })
            .collect();
        let histograms = act
            .hists
            .names
            .iter()
            .zip(&act.hists.values)
            .map(|(&name, h)| HistSnap {
                name,
                lo: h.lo,
                hi: h.hi,
                bins: h.bins.clone(),
                underflow: h.underflow,
                overflow: h.overflow,
                nan: h.nan,
                count: h.count,
                p50: h.quantile(0.5),
                p99: h.quantile(0.99),
            })
            .collect();
        let mut profile: Vec<HandlerStat> = act
            .profile
            .names
            .iter()
            .zip(&act.profile.values)
            .map(|(&name, &(calls, nanos))| HandlerStat {
                name,
                calls,
                total_nanos: nanos,
                mean_nanos: if calls == 0 {
                    0.0
                } else {
                    nanos as f64 / calls as f64
                },
            })
            .collect();
        profile.sort_by(|a, b| b.total_nanos.cmp(&a.total_nanos).then(a.name.cmp(b.name)));
        Snapshot {
            counters,
            gauges,
            summaries,
            histograms,
            trace: act.ring.in_order(),
            trace_dropped: act.ring.dropped,
            profile,
        }
    }

    /// Value of a counter, 0 when never registered.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |&(_, v)| v)
    }

    /// Value of a gauge, `None` when never registered.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| *n == name).map(|&(_, v)| v)
    }

    /// Summary instrument by name.
    pub fn summary(&self, name: &str) -> Option<&SummarySnap> {
        self.summaries.iter().find(|s| s.name == name)
    }

    /// Histogram instrument by name.
    pub fn histogram(&self, name: &str) -> Option<&HistSnap> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// The `k` hottest handlers by total wall time.
    pub fn top_handlers(&self, k: usize) -> &[HandlerStat] {
        &self.profile[..k.min(self.profile.len())]
    }

    /// Equality over the deterministic sections only: trace and metrics are
    /// pure functions of the seed, the wall-clock profile is not.
    pub fn deterministic_eq(&self, other: &Snapshot) -> bool {
        self.counters == other.counters
            && self.gauges == other.gauges
            && self.summaries == other.summaries
            && self.histograms == other.histograms
            && self.trace == other.trace
            && self.trace_dropped == other.trace_dropped
    }

    /// Fold another snapshot into this one under a name prefix: its metrics
    /// are appended (names kept, sections concatenated) and its trace events
    /// merged in timestamp order. Used to combine per-subsystem recorders
    /// (network, sessions, user-sim) into one experiment-level snapshot.
    pub fn absorb(&mut self, other: Snapshot) {
        self.counters.extend(other.counters);
        self.gauges.extend(other.gauges);
        self.summaries.extend(other.summaries);
        self.histograms.extend(other.histograms);
        self.trace.extend(other.trace);
        // Stable sort keeps same-timestamp events in concatenation order,
        // which is deterministic because absorb order is code-defined.
        self.trace.sort_by_key(|ev| ev.t_nanos);
        self.trace_dropped += other.trace_dropped;
        self.profile.extend(other.profile);
        self.profile
            .sort_by(|a, b| b.total_nanos.cmp(&a.total_nanos).then(a.name.cmp(b.name)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64, name: &'static str) -> TraceEvent {
        TraceEvent {
            t_nanos: t,
            layer: Layer::Resource,
            name,
            node: 1,
            a: 0,
            b: 0,
        }
    }

    #[test]
    fn off_recorder_is_inert() {
        let mut t = Telemetry::off();
        t.trace(ev(1, "x"));
        t.count("c", 1);
        t.observe("s", 1.0);
        t.profile("h", 10);
        assert!(!t.enabled());
        assert!(t.snapshot().is_none());
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let mut t = Telemetry::enabled(TelemetryConfig { ring_capacity: 3 });
        for i in 0..5u64 {
            t.trace(ev(i, "e"));
        }
        let snap = t.snapshot().unwrap();
        assert_eq!(snap.trace_dropped, 2);
        let ts: Vec<u64> = snap.trace.iter().map(|e| e.t_nanos).collect();
        assert_eq!(ts, vec![2, 3, 4]); // oldest two overwritten
    }

    #[test]
    fn zero_capacity_ring_ignores_events() {
        let mut t = Telemetry::enabled(TelemetryConfig::metrics_only());
        t.trace(ev(1, "e"));
        let snap = t.snapshot().unwrap();
        assert!(snap.trace.is_empty());
        assert_eq!(snap.trace_dropped, 0);
    }

    #[test]
    fn counters_gauges_and_instruments() {
        let mut t = Telemetry::enabled(TelemetryConfig::default());
        t.count("net.retries", 2);
        t.count("net.retries", 3);
        t.gauge("queue.depth", 7.0);
        t.gauge("queue.depth", 4.0);
        t.observe("svc.time", 1.0);
        t.observe("svc.time", 3.0);
        t.observe_hist("lat", 0.0, 10.0, 10, 2.5);
        let snap = t.snapshot().unwrap();
        assert_eq!(snap.counter("net.retries"), 5);
        assert_eq!(snap.counter("absent"), 0);
        assert_eq!(snap.gauge("queue.depth"), Some(4.0));
        let s = snap.summary("svc.time").unwrap();
        assert_eq!(s.count, 2);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert_eq!(s.min, Some(1.0));
        assert_eq!(s.max, Some(3.0));
        let h = snap.histogram("lat").unwrap();
        assert_eq!(h.count, 1);
        assert_eq!(h.bins[2], 1);
    }

    #[test]
    fn histogram_nan_routes_to_its_own_counter() {
        // Regression: NaN fails both range tests and `(frac * nbins) as
        // usize` saturates NaN to 0, so NaN samples were silently counted
        // as bin-0 entries — a plausible-looking small latency.
        let mut t = Telemetry::enabled(TelemetryConfig::default());
        t.observe_hist("lat", 0.0, 10.0, 10, f64::NAN);
        t.observe_hist("lat", 0.0, 10.0, 10, 2.5);
        t.observe_hist("lat", 0.0, 10.0, 10, -1.0);
        let snap = t.snapshot().unwrap();
        let h = snap.histogram("lat").unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.nan, 1);
        assert_eq!(h.underflow, 1);
        assert_eq!(h.bins[0], 0, "NaN must not land in bin 0");
        assert_eq!(h.bins[2], 1);
        // Quantiles ignore the NaN sample: only {-1.0 -> lo, 2.5} remain.
        assert!(h.p99.unwrap() <= 3.0);

        let mut all_nan = Telemetry::enabled(TelemetryConfig::default());
        all_nan.observe_hist("lat", 0.0, 10.0, 10, f64::NAN);
        let snap = all_nan.snapshot().unwrap();
        let h = snap.histogram("lat").unwrap();
        assert_eq!((h.count, h.nan), (1, 1));
        assert_eq!(h.p50, None, "no numeric samples: no quantiles");
    }

    #[test]
    fn handles_and_names_share_slots() {
        let mut t = Telemetry::enabled(TelemetryConfig::default());
        let id = t.active_mut().unwrap().register_counter("shared");
        t.active_mut().unwrap().add(id, 2);
        t.count("shared", 3);
        assert_eq!(t.snapshot().unwrap().counter("shared"), 5);
    }

    #[test]
    fn profile_sorts_hottest_first_and_is_excluded_from_determinism() {
        let mut a = Telemetry::enabled(TelemetryConfig::default());
        a.profile("cool", 10);
        a.profile("hot", 100);
        a.profile("hot", 100);
        let snap = a.snapshot().unwrap();
        assert_eq!(snap.profile[0].name, "hot");
        assert_eq!(snap.profile[0].calls, 2);
        assert_eq!(snap.profile[0].total_nanos, 200);
        assert_eq!(snap.top_handlers(1).len(), 1);

        let mut b = Telemetry::enabled(TelemetryConfig::default());
        b.profile("hot", 999); // different wall time, same deterministic part
        assert!(snap.deterministic_eq(&b.snapshot().unwrap()));
    }

    #[test]
    fn absorb_merges_sections_and_orders_trace() {
        let mut a = Telemetry::enabled(TelemetryConfig::default());
        a.count("a", 1);
        a.trace(ev(5, "late"));
        let mut b = Telemetry::enabled(TelemetryConfig::default());
        b.count("b", 2);
        b.trace(ev(3, "early"));
        let mut snap = a.snapshot().unwrap();
        snap.absorb(b.snapshot().unwrap());
        assert_eq!(snap.counter("a"), 1);
        assert_eq!(snap.counter("b"), 2);
        let names: Vec<_> = snap.trace.iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["early", "late"]);
    }
}
