//! Property-based tests for the LPC model core.

use aroma_sim::SimRng;
use lpc_core::intent::{DesignPurpose, Need, UserGoals};
use lpc_core::mental::{divergence, StateMachine};
use lpc_core::user_sim::{simulate_session, PlannerKind, SessionParams};
use lpc_core::{harmony, UserProfile};
use proptest::prelude::*;

/// Random small state machine over a closed state set, so goals are
/// sometimes reachable and sometimes not.
fn arb_machine(states: usize, transitions: usize) -> impl Strategy<Value = StateMachine> {
    prop::collection::vec(
        (0..states, 0..6usize, 0..states),
        1..=transitions,
    )
    .prop_map(|edges| {
        let mut m = StateMachine::new();
        for (from, action, to) in edges {
            m.add(&format!("s{from}"), &format!("a{action}"), &format!("s{to}"));
        }
        m
    })
}

proptest! {
    /// Planner soundness: any plan the machine produces actually drives the
    /// machine from start to goal.
    #[test]
    fn plan_is_executable(m in arb_machine(8, 24), start in 0usize..8, goal in 0usize..8) {
        let start = format!("s{start}");
        let goal = format!("s{goal}");
        if let Some(plan) = m.plan(&start, &goal) {
            let mut state = start.clone();
            for action in &plan {
                state = m
                    .step(&state, action)
                    .unwrap_or_else(|| panic!("plan used unknown transition {state}/{action}"))
                    .to_string();
            }
            prop_assert_eq!(state, goal);
        }
    }

    /// BFS plans are shortest: no strictly shorter action sequence reaches
    /// the goal (checked by exhaustive BFS over the same machine).
    #[test]
    fn plan_is_minimal(m in arb_machine(6, 15), start in 0usize..6, goal in 0usize..6) {
        let start = format!("s{start}");
        let goal = format!("s{goal}");
        if let Some(plan) = m.plan(&start, &goal) {
            // Breadth-first reachability by depth.
            let mut frontier = vec![start.clone()];
            let mut depth = 0usize;
            let mut seen = std::collections::BTreeSet::new();
            seen.insert(start.clone());
            'outer: while depth < plan.len() {
                let mut next = Vec::new();
                for s in &frontier {
                    prop_assert_ne!(s, &goal, "shorter path exists at depth {}", depth);
                    for a in m.actions_from(s).map(str::to_string).collect::<Vec<_>>() {
                        let t = m.step(s, &a).unwrap().to_string();
                        if seen.insert(t.clone()) {
                            next.push(t);
                        }
                    }
                }
                frontier = next;
                depth += 1;
                if frontier.is_empty() { break 'outer; }
            }
        }
    }

    /// Divergence of a machine with itself is zero; gap is in [0,1]; adding
    /// a false belief never decreases the gap.
    #[test]
    fn divergence_properties(m in arb_machine(6, 15)) {
        let self_d = divergence(&m, &m);
        prop_assert_eq!(self_d.gap(), 0.0);
        prop_assert_eq!(self_d.missing_or_wrong, 0);
        prop_assert_eq!(self_d.false_beliefs, 0);

        let mut belief = m.clone();
        belief.add("sX", "novel-action", "sY"); // definitely not in m
        let d2 = divergence(&belief, &m);
        prop_assert!(d2.gap() >= 0.0 && d2.gap() <= 1.0);
        prop_assert_eq!(d2.false_beliefs, 1);
    }

    /// Harmony is bounded, and raising any service level never lowers it.
    #[test]
    fn harmony_monotone(levels in prop::collection::vec(0.0f64..=1.0, 8), bump in 0usize..8, delta in 0.0f64..0.5) {
        let goals = UserGoals::casual();
        let purpose = DesignPurpose {
            name: "p".into(),
            serves: Need::ALL.iter().copied().zip(levels.iter().copied()).collect(),
        };
        let h1 = harmony(&goals, &purpose);
        prop_assert!((0.0..=1.0).contains(&h1));
        let mut better_levels = levels.clone();
        better_levels[bump] = (better_levels[bump] + delta).min(1.0);
        let better = DesignPurpose {
            name: "p+".into(),
            serves: Need::ALL.iter().copied().zip(better_levels).collect(),
        };
        let h2 = harmony(&goals, &better);
        prop_assert!(h2 >= h1 - 1e-12, "harmony dropped {h1} -> {h2}");
    }

    /// User-simulator invariants: step budget honoured; outcomes exclusive;
    /// perfect belief ⇒ zero surprises.
    #[test]
    fn session_invariants(m in arb_machine(6, 15), start in 0usize..6, goal in 0usize..6, seed in any::<u64>()) {
        let start = format!("s{start}");
        let goal = format!("s{goal}");
        let user = UserProfile::researcher().faculties;
        let params = SessionParams { max_steps: 30, ..Default::default() };
        let mut rng = SimRng::new(seed);
        let r = simulate_session(&user, &m, &m, &start, &goal, PlannerKind::Bfs, &params, &mut rng);
        prop_assert!(r.steps <= 30);
        prop_assert!(!(r.reached_goal && r.gave_up), "{r:?}");
        prop_assert!(r.frustration >= 0.0);
        // Perfect belief: surprises can only come from exploration when no
        // plan exists; if a plan existed from the start, zero surprises.
        if m.plan(&start, &goal).is_some() {
            prop_assert_eq!(r.surprises, 0, "perfect model surprised: {:?}", r);
            prop_assert!(r.reached_goal);
        }
    }

    /// Learning: running a second session with the belief repaired by the
    /// first cannot be worse at reaching the goal. (We approximate by
    /// asserting a full-knowledge second run always matches or beats an
    /// empty-belief first run in surprises.)
    #[test]
    fn learning_monotone(m in arb_machine(5, 12), start in 0usize..5, goal in 0usize..5, seed in any::<u64>()) {
        let start = format!("s{start}");
        let goal = format!("s{goal}");
        let user = UserProfile::researcher().faculties;
        let params = SessionParams { max_steps: 40, ..Default::default() };
        let empty = simulate_session(
            &user, &StateMachine::new(), &m, &start, &goal,
            PlannerKind::Bfs, &params, &mut SimRng::new(seed),
        );
        let informed = simulate_session(
            &user, &m, &m, &start, &goal,
            PlannerKind::Bfs, &params, &mut SimRng::new(seed),
        );
        prop_assert!(informed.surprises <= empty.surprises);
        if empty.reached_goal {
            prop_assert!(informed.reached_goal, "knowledge lost a reachable goal");
        }
    }
}
