//! The intentional layer: user goals, design purposes, and harmony.
//!
//! The paper's top layer "represents the purpose of an application or
//! device and the goals of the user", and argues "the probability of
//! success is greatly enhanced when a system's design is in harmony with
//! the user's goals". Harmony is made computable here: goals are weighted
//! needs over a fixed capability vocabulary, a design purpose declares how
//! well it serves each capability, and [`harmony`] scores the match in
//! `[0, 1]` with essential needs acting as gates.

use serde::{Deserialize, Serialize};

/// The capability vocabulary shared by goals and purposes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Need {
    /// Put my slides on the big screen.
    ProjectDisplay,
    /// Control the projector without walking to it.
    RemoteControl,
    /// Work without any setup or configuration.
    ZeroConfiguration,
    /// Work every time, recover by itself.
    Reliability,
    /// Be understandable without study.
    LowConceptualBurden,
    /// Instrumentation, measurement, protocol visibility.
    ResearchObservability,
    /// Keep my content and control private to me.
    ExclusiveUse,
    /// Be affordable.
    LowCost,
}

impl Need {
    /// Every need, in a stable order.
    pub const ALL: [Need; 8] = [
        Need::ProjectDisplay,
        Need::RemoteControl,
        Need::ZeroConfiguration,
        Need::Reliability,
        Need::LowConceptualBurden,
        Need::ResearchObservability,
        Need::ExclusiveUse,
        Need::LowCost,
    ];

    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            Need::ProjectDisplay => "project",
            Need::RemoteControl => "remote-control",
            Need::ZeroConfiguration => "zero-config",
            Need::Reliability => "reliability",
            Need::LowConceptualBurden => "low-burden",
            Need::ResearchObservability => "observability",
            Need::ExclusiveUse => "exclusive-use",
            Need::LowCost => "low-cost",
        }
    }
}

/// One weighted need of a user.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct WeightedNeed {
    /// Which capability.
    pub need: Need,
    /// How much it matters, `(0, 1]`.
    pub weight: f64,
    /// If true, a purpose serving this below 0.5 caps harmony at that
    /// service level (an unmet essential cannot be averaged away).
    pub essential: bool,
}

/// A user's goals at the intentional layer.
#[derive(Clone, Debug, PartialEq, Default, Serialize, Deserialize)]
pub struct UserGoals {
    /// Report name.
    pub name: String,
    /// The weighted needs.
    pub needs: Vec<WeightedNeed>,
}

impl UserGoals {
    /// Builder: add a need.
    pub fn with(mut self, need: Need, weight: f64, essential: bool) -> Self {
        assert!((0.0..=1.0).contains(&weight) && weight > 0.0);
        self.needs.push(WeightedNeed {
            need,
            weight,
            essential,
        });
        self
    }

    /// "A user wants to make a presentation, but does not necessarily want
    /// to perform unnecessary system interconnection and configuration."
    pub fn presenter() -> UserGoals {
        UserGoals {
            name: "presenter".into(),
            needs: vec![],
        }
        .with(Need::ProjectDisplay, 1.0, true)
        .with(Need::RemoteControl, 0.5, false)
        .with(Need::ZeroConfiguration, 0.8, false)
        .with(Need::Reliability, 0.9, true)
        .with(Need::LowConceptualBurden, 0.7, false)
        .with(Need::ExclusiveUse, 0.4, false)
    }

    /// "Our intended audience is a group of computer scientists performing
    /// pervasive computing research."
    pub fn researcher() -> UserGoals {
        UserGoals {
            name: "researcher".into(),
            needs: vec![],
        }
        .with(Need::ProjectDisplay, 0.6, false)
        .with(Need::RemoteControl, 0.5, false)
        .with(Need::ResearchObservability, 1.0, true)
        .with(Need::ExclusiveUse, 0.2, false)
    }

    /// A casual user expecting a commercial product.
    pub fn casual() -> UserGoals {
        UserGoals {
            name: "casual".into(),
            needs: vec![],
        }
        .with(Need::ProjectDisplay, 1.0, true)
        .with(Need::ZeroConfiguration, 1.0, true)
        .with(Need::Reliability, 0.9, true)
        .with(Need::LowConceptualBurden, 1.0, true)
        .with(Need::LowCost, 0.6, false)
    }
}

/// What a design serves, per capability, in `[0, 1]`.
#[derive(Clone, Debug, PartialEq, Default, Serialize, Deserialize)]
pub struct DesignPurpose {
    /// Report name.
    pub name: String,
    /// Service levels (absent = 0).
    pub serves: Vec<(Need, f64)>,
}

impl DesignPurpose {
    /// Builder: declare a service level.
    pub fn serving(mut self, need: Need, level: f64) -> Self {
        assert!((0.0..=1.0).contains(&level));
        self.serves.push((need, level));
        self
    }

    /// Service level for one need.
    pub fn level(&self, need: Need) -> f64 {
        self.serves
            .iter()
            .find(|(n, _)| *n == need)
            .map(|(_, l)| *l)
            .unwrap_or(0.0)
    }

    /// The paper's honest description of the prototype: "designed as a
    /// vehicle to research, measure, and demonstrate service discovery and
    /// other pervasive computing infrastructure issues".
    pub fn research_prototype() -> DesignPurpose {
        DesignPurpose {
            name: "Smart Projector (research prototype)".into(),
            serves: vec![],
        }
        .serving(Need::ProjectDisplay, 0.8)
        .serving(Need::RemoteControl, 0.8)
        .serving(Need::ZeroConfiguration, 0.3)
        .serving(Need::Reliability, 0.4)
        .serving(Need::LowConceptualBurden, 0.3)
        .serving(Need::ResearchObservability, 1.0)
        .serving(Need::ExclusiveUse, 0.7)
        .serving(Need::LowCost, 0.2)
    }

    /// The hypothetical commercial product the paper contrasts with.
    pub fn commercial_product() -> DesignPurpose {
        DesignPurpose {
            name: "Smart Projector (commercial)".into(),
            serves: vec![],
        }
        .serving(Need::ProjectDisplay, 0.95)
        .serving(Need::RemoteControl, 0.9)
        .serving(Need::ZeroConfiguration, 0.9)
        .serving(Need::Reliability, 0.9)
        .serving(Need::LowConceptualBurden, 0.9)
        .serving(Need::ResearchObservability, 0.1)
        .serving(Need::ExclusiveUse, 0.9)
        .serving(Need::LowCost, 0.5)
    }
}

/// Score the Figure 5 relation — *user goals must be in harmony with
/// design purpose* — in `[0, 1]`.
///
/// Weighted mean of service levels over the user's needs; any *essential*
/// need served below 0.5 caps the final score at its service level (a
/// product that fails an essential need is not redeemed by the rest).
pub fn harmony(goals: &UserGoals, purpose: &DesignPurpose) -> f64 {
    if goals.needs.is_empty() {
        return 1.0; // no goals: anything is harmonious
    }
    let total_weight: f64 = goals.needs.iter().map(|n| n.weight).sum();
    let weighted: f64 = goals
        .needs
        .iter()
        .map(|n| purpose.level(n.need) * n.weight)
        .sum::<f64>()
        / total_weight;
    let cap = goals
        .needs
        .iter()
        .filter(|n| n.essential)
        .map(|n| purpose.level(n.need))
        .filter(|&l| l < 0.5)
        .fold(1.0f64, f64::min);
    weighted.min(cap)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harmony_is_bounded() {
        for goals in [UserGoals::presenter(), UserGoals::researcher(), UserGoals::casual()] {
            for purpose in [
                DesignPurpose::research_prototype(),
                DesignPurpose::commercial_product(),
            ] {
                let h = harmony(&goals, &purpose);
                assert!((0.0..=1.0).contains(&h), "{h}");
            }
        }
    }

    #[test]
    fn prototype_harmonises_with_researchers_not_casual_users() {
        // The paper's own intentional-layer conclusion.
        let proto = DesignPurpose::research_prototype();
        let h_res = harmony(&UserGoals::researcher(), &proto);
        let h_cas = harmony(&UserGoals::casual(), &proto);
        assert!(h_res > 0.7, "researchers are served: {h_res}");
        assert!(h_cas < 0.4, "casual users are not: {h_cas}");
        assert!(h_res > 2.0 * h_cas);
    }

    #[test]
    fn commercial_product_flips_the_ranking() {
        let com = DesignPurpose::commercial_product();
        let h_cas = harmony(&UserGoals::casual(), &com);
        let h_res = harmony(&UserGoals::researcher(), &com);
        assert!(h_cas > 0.8, "casual users served: {h_cas}");
        assert!(h_res < 0.5, "researchers lose their instrumentation: {h_res}");
    }

    #[test]
    fn unmet_essential_caps_the_score() {
        let goals = UserGoals::default()
            .with(Need::Reliability, 0.1, true)
            .with(Need::LowCost, 1.0, false);
        // Purpose serves LowCost perfectly but Reliability barely.
        let p = DesignPurpose::default()
            .serving(Need::LowCost, 1.0)
            .serving(Need::Reliability, 0.2);
        let h = harmony(&goals, &p);
        assert!(
            (h - 0.2).abs() < 1e-9,
            "essential miss must cap harmony at its level: {h}"
        );
    }

    #[test]
    fn non_essential_misses_average_instead_of_gating() {
        let goals = UserGoals::default()
            .with(Need::Reliability, 1.0, false)
            .with(Need::LowCost, 1.0, false);
        let p = DesignPurpose::default()
            .serving(Need::LowCost, 1.0)
            .serving(Need::Reliability, 0.0);
        assert!((harmony(&goals, &p) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_goals_are_trivially_harmonious() {
        assert_eq!(
            harmony(&UserGoals::default(), &DesignPurpose::research_prototype()),
            1.0
        );
    }

    #[test]
    fn unserved_needs_score_zero() {
        let p = DesignPurpose::default();
        assert_eq!(p.level(Need::ProjectDisplay), 0.0);
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<&str> = Need::ALL.iter().map(|n| n.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), Need::ALL.len());
    }
}
