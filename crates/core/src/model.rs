//! Figure 1 as data: the full LPC stack with both columns and relations.
//!
//! Experiment F1 regenerates the paper's model figure from this module; the
//! tests pin the structure so it cannot silently drift from the paper.

use crate::layer::Layer;
use aroma_sim::report::{Json, Table};

/// One row of the model figure.
#[derive(Clone, Debug, PartialEq)]
pub struct LayerSpec {
    /// Which layer.
    pub layer: Layer,
    /// Left column (user side in Figure 1).
    pub user_side: &'static str,
    /// Right column (device side).
    pub device_side: &'static str,
    /// The relation between the sides.
    pub relation: &'static str,
}

/// The LPC stack, bottom-up — the content of Figure 1.
pub fn lpc_stack() -> Vec<LayerSpec> {
    Layer::ALL
        .iter()
        .map(|&layer| LayerSpec {
            layer,
            user_side: layer.user_element(),
            device_side: layer.device_element(),
            relation: layer.relation(),
        })
        .collect()
}

/// Render the stack as an aligned table (top layer first, as drawn in the
/// paper).
pub fn render_stack() -> String {
    let mut t = Table::new(&["layer", "user side", "relation", "device side"]);
    for spec in lpc_stack().iter().rev() {
        t.row(&[
            spec.layer.name().to_string(),
            spec.user_side.to_string(),
            spec.relation.to_string(),
            spec.device_side.to_string(),
        ]);
    }
    t.render()
}

/// The stack as JSON for archival.
pub fn stack_json() -> Json {
    Json::Arr(
        lpc_stack()
            .into_iter()
            .map(|s| {
                Json::obj(vec![
                    ("layer", s.layer.name().into()),
                    ("user_side", s.user_side.into()),
                    ("device_side", s.device_side.into()),
                    ("relation", s.relation.into()),
                    (
                        "user_change_timescale_s",
                        s.layer.user_change_timescale_s().into(),
                    ),
                ])
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stack_has_five_rows_bottom_up() {
        let stack = lpc_stack();
        assert_eq!(stack.len(), 5);
        assert_eq!(stack[0].layer, Layer::Environment);
        assert_eq!(stack[4].layer, Layer::Intentional);
    }

    #[test]
    fn stack_pins_figure1_content() {
        let stack = lpc_stack();
        let intentional = &stack[4];
        assert_eq!(intentional.user_side, "User Goals");
        assert_eq!(intentional.device_side, "Design Purpose");
        assert!(intentional.relation.contains("harmony"));
        let resource = &stack[2];
        assert!(resource.device_side.contains("Mem"));
        assert!(resource.device_side.contains("Net"));
    }

    #[test]
    fn rendered_stack_reads_top_down() {
        let s = render_stack();
        let intent_pos = s.find("Intentional").unwrap();
        let env_pos = s.find("Environment").unwrap();
        assert!(
            intent_pos < env_pos,
            "figure draws the intentional layer on top"
        );
        assert!(s.contains("Mental Models"));
        assert!(s.contains("must not be frustrated by"));
    }

    #[test]
    fn json_contains_all_layers() {
        let j = stack_json().render();
        for l in Layer::ALL {
            assert!(j.contains(l.name()), "{l} missing from {j}");
        }
    }
}
