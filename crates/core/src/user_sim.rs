//! The behavioural user simulator.
//!
//! Makes Figure 4's consistency relation *dynamic*: a simulated user plans
//! over their **believed** machine, acts on the **actual** application,
//! observes the result (application state is taken to be visible on the
//! UI), is *surprised* when belief and observation diverge, repairs the
//! belief, and accumulates frustration — giving up when it exceeds their
//! temperament. The paper: *"for too many users, using software becomes a
//! mental exercise similar to debugging"*; this module counts the debugging.

use crate::faculty::Faculties;
use crate::mental::StateMachine;
use aroma_sim::telemetry::{Layer, Recorder, Telemetry};
use aroma_sim::SimRng;
use serde::{Deserialize, Serialize};

/// How the user picks the next action.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlannerKind {
    /// Deliberate: shortest path in the believed machine (BFS).
    Bfs,
    /// Impulsive: any action believed to lead directly to the goal, else
    /// any believed action not yet tried from here, else random — the
    /// ablation arm for the planner design choice.
    Greedy,
}

/// Tunable costs of interaction (frustration units).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SessionParams {
    /// Budget of actions before the user simply runs out of time.
    pub max_steps: usize,
    /// Frustration per action taken.
    pub step_cost: f64,
    /// Frustration per surprise (observation contradicting belief).
    pub surprise_cost: f64,
    /// Frustration when no plan exists and the user must poke around.
    pub no_plan_cost: f64,
}

impl Default for SessionParams {
    fn default() -> Self {
        SessionParams {
            max_steps: 60,
            step_cost: 0.01,
            surprise_cost: 0.12,
            no_plan_cost: 0.08,
        }
    }
}

/// What happened in one user session.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct InteractionReport {
    /// The user got the application into the goal state.
    pub reached_goal: bool,
    /// Actions taken.
    pub steps: usize,
    /// Observations that contradicted the user's belief.
    pub surprises: usize,
    /// Exploration actions taken with no plan available.
    pub explorations: usize,
    /// Accumulated frustration at session end.
    pub frustration: f64,
    /// The user abandoned before success (frustration or step budget).
    pub gave_up: bool,
}

impl InteractionReport {
    /// The paper's "conceptual burden" proxy: surprises plus explorations
    /// per step actually needed.
    pub fn burden(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            (self.surprises + self.explorations) as f64 / self.steps as f64
        }
    }
}

/// Simulate one session of `user` driving `actual` from `start` to `goal`,
/// starting from the belief `belief0`.
///
/// Deterministic given `rng`. The user observes the true state after every
/// action (the UI shows it) and repairs their belief on every surprise.
// The argument list mirrors the experiment grid (who × believed × actual ×
// start/goal × planner × params × seed); bundling them would just move the
// names into a one-shot struct at every call site.
#[allow(clippy::too_many_arguments)]
pub fn simulate_session(
    user: &Faculties,
    belief0: &StateMachine,
    actual: &StateMachine,
    start: &str,
    goal: &str,
    planner: PlannerKind,
    params: &SessionParams,
    rng: &mut SimRng,
) -> InteractionReport {
    let mut rec = Telemetry::Off;
    simulate_session_traced(
        user, belief0, actual, start, goal, planner, params, rng, &mut rec,
    )
}

/// [`simulate_session`] with a telemetry recorder: surprise / exploration /
/// give-up events land at the **Intentional** layer (the step index stands
/// in for time — the user simulator has no clock of its own), and
/// per-session counters and the final frustration summary go to the
/// metrics registry. Passing [`Telemetry::Off`] makes this identical to
/// the untraced entry point.
#[allow(clippy::too_many_arguments)]
pub fn simulate_session_traced(
    user: &Faculties,
    belief0: &StateMachine,
    actual: &StateMachine,
    start: &str,
    goal: &str,
    planner: PlannerKind,
    params: &SessionParams,
    rng: &mut SimRng,
    rec: &mut Telemetry,
) -> InteractionReport {
    let mut belief = belief0.clone();
    let mut state = start.to_string();
    let mut report = InteractionReport::default();
    // Temperament maps to a frustration budget: tolerance 1.0 ≈ absorbs
    // ~8 surprises; tolerance 0.25 gives up after ~2.
    let budget = user.frustration_tolerance.max(0.01);

    let report = loop {
        if report.steps >= params.max_steps {
            report.gave_up = state != goal;
            report.reached_goal = state == goal;
            break report;
        }
        if state == goal {
            report.reached_goal = true;
            break report;
        }
        if report.frustration >= budget {
            report.gave_up = true;
            break report;
        }

        let planned: Option<String> = match planner {
            PlannerKind::Bfs => belief.plan(&state, goal).and_then(|p| p.into_iter().next()),
            PlannerKind::Greedy => {
                let direct = belief
                    .actions_from(&state)
                    .find(|a| belief.step(&state, a) == Some(goal))
                    .map(str::to_string);
                direct.or_else(|| {
                    // Any believed action that leaves the current state.
                    belief
                        .actions_from(&state)
                        .find(|a| belief.step(&state, a).is_some_and(|t| t != state))
                        .map(str::to_string)
                })
            }
        };

        let action = match planned {
            Some(a) => a,
            None => {
                // No plan: the user pokes at the visible affordances (the
                // actual machine's actions are what the UI presents).
                let available: Vec<String> =
                    actual.actions_from(&state).map(str::to_string).collect();
                let Some(a) = rng.choose(&available).cloned() else {
                    // Dead end with no affordances at all.
                    report.gave_up = true;
                    break report;
                };
                report.explorations += 1;
                report.frustration += params.no_plan_cost;
                rec.count("user.explorations", 1);
                rec.event(
                    report.steps as u64,
                    Layer::Intentional,
                    "user.explore",
                    0,
                    report.steps as i64,
                    0,
                );
                a
            }
        };

        let predicted = belief.step(&state, &action).unwrap_or(&state).to_string();
        let observed = actual.step(&state, &action).unwrap_or(&state).to_string();

        report.steps += 1;
        report.frustration += params.step_cost;

        if predicted != observed {
            report.surprises += 1;
            report.frustration += params.surprise_cost;
            rec.count("user.surprises", 1);
            rec.event(
                report.steps as u64,
                Layer::Intentional,
                "user.surprise",
                0,
                report.steps as i64,
                0,
            );
        }
        // Learn the true transition either way (repetition consolidates).
        belief.add(&state, &action, &observed);
        state = observed;
    };

    rec.count("user.sessions", 1);
    if report.reached_goal {
        rec.count("user.goals_reached", 1);
    }
    if report.gave_up {
        rec.count("user.gave_up", 1);
        rec.event(
            report.steps as u64,
            Layer::Intentional,
            "user.give_up",
            0,
            report.surprises as i64,
            (report.frustration * 1000.0) as i64,
        );
    }
    rec.observe("user.frustration", report.frustration);
    rec.observe("user.burden", report.burden());
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faculty::UserProfile;

    /// A three-step wizard: the actual application.
    fn wizard() -> StateMachine {
        StateMachine::new()
            .with("idle", "start-client", "client-started")
            .with("client-started", "start-vnc", "projecting")
            .with("projecting", "stop", "idle")
    }

    fn rng() -> SimRng {
        SimRng::new(42)
    }

    #[test]
    fn perfect_belief_reaches_goal_without_surprise() {
        let user = UserProfile::researcher().faculties;
        let r = simulate_session(
            &user,
            &wizard(),
            &wizard(),
            "idle",
            "projecting",
            PlannerKind::Bfs,
            &SessionParams::default(),
            &mut rng(),
        );
        assert!(r.reached_goal);
        assert_eq!(r.steps, 2);
        assert_eq!(r.surprises, 0);
        assert_eq!(r.explorations, 0);
        assert!(!r.gave_up);
    }

    #[test]
    fn empty_belief_forces_exploration_but_can_succeed() {
        let user = UserProfile::researcher().faculties; // tolerant
        let r = simulate_session(
            &user,
            &StateMachine::new(),
            &wizard(),
            "idle",
            "projecting",
            PlannerKind::Bfs,
            &SessionParams::default(),
            &mut rng(),
        );
        assert!(r.reached_goal, "{r:?}");
        assert!(r.explorations > 0);
        assert!(r.surprises > 0, "exploration of an unknown app surprises");
    }

    #[test]
    fn wrong_belief_surprises_then_repairs() {
        // User believes one button does it all.
        let belief = StateMachine::new().with("idle", "start-client", "projecting");
        let user = UserProfile::researcher().faculties;
        let r = simulate_session(
            &user,
            &belief,
            &wizard(),
            "idle",
            "projecting",
            PlannerKind::Bfs,
            &SessionParams::default(),
            &mut rng(),
        );
        assert!(r.reached_goal);
        assert!(r.surprises >= 1);
    }

    #[test]
    fn intolerant_user_gives_up_on_a_confusing_app() {
        let mut user = UserProfile::casual().faculties;
        user.frustration_tolerance = 0.1; // two surprises is too many
                                          // Build a deliberately surprising 6-step app with no belief.
        let mut app = StateMachine::new();
        for i in 0..6 {
            app.add(&format!("s{i}"), "next", &format!("s{}", i + 1));
            app.add(&format!("s{i}"), "decoy", "s0"); // resets!
        }
        let r = simulate_session(
            &user,
            &StateMachine::new(),
            &app,
            "s0",
            "s6",
            PlannerKind::Bfs,
            &SessionParams::default(),
            &mut rng(),
        );
        assert!(r.gave_up, "{r:?}");
        assert!(!r.reached_goal);
    }

    #[test]
    fn step_budget_caps_sessions() {
        // Unreachable goal: user wanders until the budget runs out (high
        // tolerance so frustration doesn't end it first).
        let mut user = UserProfile::researcher().faculties;
        user.frustration_tolerance = 100.0;
        let app = StateMachine::new().with("a", "x", "a");
        let params = SessionParams {
            max_steps: 10,
            ..Default::default()
        };
        let r = simulate_session(
            &user,
            &StateMachine::new(),
            &app,
            "a",
            "z",
            PlannerKind::Bfs,
            &params,
            &mut rng(),
        );
        assert!(r.gave_up);
        assert_eq!(r.steps, 10);
    }

    #[test]
    fn dead_end_without_affordances_ends_session() {
        let app = StateMachine::new().with("a", "go", "b"); // b has no actions
        let user = UserProfile::researcher().faculties;
        let r = simulate_session(
            &user,
            &StateMachine::new(),
            &app,
            "a",
            "z",
            PlannerKind::Bfs,
            &SessionParams::default(),
            &mut rng(),
        );
        assert!(r.gave_up);
    }

    #[test]
    fn burden_metric_counts_confusion_per_step() {
        let mut r = InteractionReport {
            steps: 10,
            surprises: 2,
            explorations: 3,
            ..Default::default()
        };
        assert!((r.burden() - 0.5).abs() < 1e-12);
        r.steps = 0;
        assert_eq!(r.burden(), 0.0);
    }

    #[test]
    fn greedy_planner_also_completes_simple_tasks() {
        let user = UserProfile::presenter().faculties;
        let r = simulate_session(
            &user,
            &wizard(),
            &wizard(),
            "idle",
            "projecting",
            PlannerKind::Greedy,
            &SessionParams::default(),
            &mut rng(),
        );
        assert!(r.reached_goal, "{r:?}");
    }

    #[test]
    fn traced_session_records_surprises_and_frustration() {
        use aroma_sim::telemetry::TelemetryConfig;
        let user = UserProfile::researcher().faculties;
        let mut rec = Telemetry::enabled(TelemetryConfig::default());
        let r = simulate_session_traced(
            &user,
            &StateMachine::new(),
            &wizard(),
            "idle",
            "projecting",
            PlannerKind::Bfs,
            &SessionParams::default(),
            &mut rng(),
            &mut rec,
        );
        let snap = rec.snapshot().unwrap();
        assert_eq!(snap.counter("user.sessions"), 1);
        assert_eq!(snap.counter("user.surprises"), r.surprises as u64);
        assert_eq!(snap.counter("user.explorations"), r.explorations as u64);
        assert_eq!(snap.counter("user.goals_reached"), 1);
        let surprise_events = snap
            .trace
            .iter()
            .filter(|e| e.name == "user.surprise")
            .count();
        assert_eq!(surprise_events, r.surprises);
        assert!(snap.trace.iter().all(|e| e.layer == Layer::Intentional));

        // The untraced entry point must agree with the traced one.
        let plain = simulate_session(
            &user,
            &StateMachine::new(),
            &wizard(),
            "idle",
            "projecting",
            PlannerKind::Bfs,
            &SessionParams::default(),
            &mut rng(),
        );
        assert_eq!(plain.steps, r.steps);
        assert_eq!(plain.surprises, r.surprises);
    }

    #[test]
    fn deterministic_given_seed() {
        let user = UserProfile::casual().faculties;
        let run = |seed| {
            let mut rng = SimRng::new(seed);
            simulate_session(
                &user,
                &StateMachine::new(),
                &wizard(),
                "idle",
                "projecting",
                PlannerKind::Bfs,
                &SessionParams::default(),
                &mut rng,
            )
        };
        let (a, b) = (run(9), run(9));
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.surprises, b.surprises);
        assert_eq!(a.reached_goal, b.reached_goal);
    }
}
