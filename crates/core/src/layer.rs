//! The five layers and their two orderings.
//!
//! The paper: *"While for devices, the higher layers represent increasing
//! degrees of abstraction, for users, the higher layers represent
//! increasing temporal specificity. This means that change occurs more
//! slowly at the lower levels."* Both orderings are encoded here and pinned
//! by tests.

use serde::{Deserialize, Serialize};

/// A layer of the LPC model, bottom-up.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Layer {
    /// The physical surroundings — *beneath* the device, not part of it.
    Environment,
    /// Hardware and human bodies; signals they exchange.
    Physical,
    /// What software can count on: logical resources / user faculties.
    Resource,
    /// Application software / user mental models.
    Abstract,
    /// Design purpose / user goals.
    Intentional,
}

impl Layer {
    /// All layers, bottom-up.
    pub const ALL: [Layer; 5] = [
        Layer::Environment,
        Layer::Physical,
        Layer::Resource,
        Layer::Abstract,
        Layer::Intentional,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Layer::Environment => "Environment",
            Layer::Physical => "Physical",
            Layer::Resource => "Resource",
            Layer::Abstract => "Abstract",
            Layer::Intentional => "Intentional",
        }
    }

    /// The layer's cross relation between user side and device side, as
    /// phrased in the paper's figures.
    pub fn relation(self) -> &'static str {
        match self {
            Layer::Environment => "must be compatible with / communicates through",
            Layer::Physical => "must be compatible with",
            Layer::Resource => "must not be frustrated by",
            Layer::Abstract => "must be consistent with",
            Layer::Intentional => "must be in harmony with",
        }
    }

    /// Device-side element of this layer (Figure 1, left column).
    pub fn device_element(self) -> &'static str {
        match self {
            Layer::Environment => "Environment",
            Layer::Physical => "Physical Devices",
            Layer::Resource => "Mem | Sto | Exe | UI | Net",
            Layer::Abstract => "Application",
            Layer::Intentional => "Design Purpose",
        }
    }

    /// User-side element of this layer (Figure 1, right column).
    pub fn user_element(self) -> &'static str {
        match self {
            Layer::Environment => "Environment",
            Layer::Physical => "Physical User",
            Layer::Resource => "User Faculties",
            Layer::Abstract => "Mental Models",
            Layer::Intentional => "User Goals",
        }
    }

    /// Typical timescale on which the user-side element of this layer
    /// changes, in seconds — the paper's *temporal specificity*: goals
    /// change by the minute, physiology over years.
    pub fn user_change_timescale_s(self) -> f64 {
        match self {
            Layer::Environment => 3600.0 * 24.0,      // you move buildings daily
            Layer::Physical => 3600.0 * 24.0 * 3650.0, // a decade
            Layer::Resource => 3600.0 * 24.0 * 90.0,  // a skill: months of practice
            Layer::Abstract => 3600.0 * 24.0,         // mental models: days/uses
            Layer::Intentional => 60.0,               // goals: minutes
        }
    }

    /// The layer above, if any (device-side abstraction ordering).
    pub fn above(self) -> Option<Layer> {
        match self {
            Layer::Environment => Some(Layer::Physical),
            Layer::Physical => Some(Layer::Resource),
            Layer::Resource => Some(Layer::Abstract),
            Layer::Abstract => Some(Layer::Intentional),
            Layer::Intentional => None,
        }
    }

    /// The layer below, if any.
    pub fn below(self) -> Option<Layer> {
        match self {
            Layer::Environment => None,
            Layer::Physical => Some(Layer::Environment),
            Layer::Resource => Some(Layer::Physical),
            Layer::Abstract => Some(Layer::Resource),
            Layer::Intentional => Some(Layer::Abstract),
        }
    }
}

impl std::fmt::Display for Layer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_layers_bottom_up() {
        assert_eq!(Layer::ALL.len(), 5);
        assert_eq!(Layer::ALL[0], Layer::Environment);
        assert_eq!(Layer::ALL[4], Layer::Intentional);
        // Ord matches stack position.
        for w in Layer::ALL.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn above_below_are_inverse() {
        for layer in Layer::ALL {
            if let Some(up) = layer.above() {
                assert_eq!(up.below(), Some(layer));
            }
            if let Some(down) = layer.below() {
                assert_eq!(down.above(), Some(layer));
            }
        }
        assert_eq!(Layer::Environment.below(), None);
        assert_eq!(Layer::Intentional.above(), None);
    }

    #[test]
    fn relations_match_the_figures() {
        assert!(Layer::Physical.relation().contains("compatible"));
        assert!(Layer::Resource.relation().contains("frustrated"));
        assert!(Layer::Abstract.relation().contains("consistent"));
        assert!(Layer::Intentional.relation().contains("harmony"));
    }

    #[test]
    fn figure1_column_elements() {
        assert_eq!(Layer::Resource.device_element(), "Mem | Sto | Exe | UI | Net");
        assert_eq!(Layer::Abstract.user_element(), "Mental Models");
        assert_eq!(Layer::Intentional.device_element(), "Design Purpose");
        assert_eq!(Layer::Physical.user_element(), "Physical User");
    }

    #[test]
    fn temporal_specificity_increases_up_the_user_stack() {
        // "change occurs more slowly at the lower levels" — from Physical
        // upward, timescales must shrink monotonically.
        let physical = Layer::Physical.user_change_timescale_s();
        let resource = Layer::Resource.user_change_timescale_s();
        let abstract_ = Layer::Abstract.user_change_timescale_s();
        let intentional = Layer::Intentional.user_change_timescale_s();
        assert!(physical > resource);
        assert!(resource > abstract_);
        assert!(abstract_ > intentional);
    }

    #[test]
    fn names_render() {
        assert_eq!(Layer::Abstract.to_string(), "Abstract");
    }
}
