//! The user's lower layers: physical user and faculties.
//!
//! The paper defines a *faculty* as "a developed skill or ability such as a
//! user's ability to speak a particular language, the user's education or
//! even the user's temperament (for example, the ability to tolerate
//! frustration)", and stresses that faculties "are supported by the
//! physical layer" — a user's physical condition bounds what faculties can
//! operate. Both levels are modelled here, with the named presets the
//! experiments sweep over.

use aroma_env::climate::OperatingRange;
use aroma_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Languages that matter to the scenarios.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Language {
    /// English.
    English,
    /// French.
    French,
    /// Spanish.
    Spanish,
    /// German.
    German,
    /// Japanese.
    Japanese,
}

/// The user's body: the physical layer's user side. Capabilities are
/// normalised to `[0, 1]` where 1 is unimpaired.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PhysicalUser {
    /// Visual acuity (small text, LED states).
    pub vision: f64,
    /// Hearing (beeps, speech output).
    pub hearing: f64,
    /// Fine motor control (stylus, small buttons).
    pub dexterity: f64,
    /// Can produce intelligible speech (voice UIs).
    pub can_speak: bool,
    /// Ambient conditions this body works comfortably in.
    pub comfort: OperatingRange,
}

impl Default for PhysicalUser {
    fn default() -> Self {
        PhysicalUser {
            vision: 1.0,
            hearing: 1.0,
            dexterity: 1.0,
            can_speak: true,
            comfort: OperatingRange::human_comfort(),
        }
    }
}

/// The user's faculties: the resource layer's user side.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Faculties {
    /// Languages the user understands.
    pub languages: Vec<Language>,
    /// Familiarity with graphical user interfaces, `[0,1]`.
    pub gui_experience: f64,
    /// Domain knowledge (projectors and their failure modes), `[0,1]`.
    pub domain_knowledge: f64,
    /// Ability to administer networks/systems, `[0,1]` — the paper:
    /// "users are not system administrators".
    pub admin_skill: f64,
    /// Temperament: tolerance before giving up, `[0,1]`.
    pub frustration_tolerance: f64,
    /// How long the user will wait for any single response.
    pub patience: SimDuration,
}

impl Faculties {
    /// Does the user speak `lang`?
    pub fn speaks(&self, lang: Language) -> bool {
        self.languages.contains(&lang)
    }
}

/// A complete user-side column of the model (physical + faculties + the
/// name used in reports). Mental models and goals are per-scenario and live
/// in [`crate::mental`] / [`crate::intent`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct UserProfile {
    /// Report name.
    pub name: String,
    /// The body.
    pub physical: PhysicalUser,
    /// The skills.
    pub faculties: Faculties,
}

impl UserProfile {
    /// The paper's implicit baseline: "our intended audience is a group of
    /// computer scientists performing pervasive computing research" —
    /// English-speaking, GUI-fluent, able to fix "whatever problems may
    /// arise with the wireless network, the Linux-based adapter, and the
    /// lookup service".
    pub fn researcher() -> UserProfile {
        UserProfile {
            name: "researcher".into(),
            physical: PhysicalUser::default(),
            faculties: Faculties {
                languages: vec![Language::English, Language::French],
                gui_experience: 1.0,
                domain_knowledge: 1.0,
                admin_skill: 1.0,
                frustration_tolerance: 0.9,
                patience: SimDuration::from_secs(60),
            },
        }
    }

    /// A travelling business presenter: fluent with GUIs, knows projectors
    /// as appliances, cannot debug a lookup service.
    pub fn presenter() -> UserProfile {
        UserProfile {
            name: "presenter".into(),
            physical: PhysicalUser::default(),
            faculties: Faculties {
                languages: vec![Language::English],
                gui_experience: 0.8,
                domain_knowledge: 0.4,
                admin_skill: 0.15,
                frustration_tolerance: 0.5,
                patience: SimDuration::from_secs(20),
            },
        }
    }

    /// A casual user expecting a commercial-grade product.
    pub fn casual() -> UserProfile {
        UserProfile {
            name: "casual user".into(),
            physical: PhysicalUser::default(),
            faculties: Faculties {
                languages: vec![Language::English],
                gui_experience: 0.45,
                domain_knowledge: 0.1,
                admin_skill: 0.0,
                frustration_tolerance: 0.3,
                patience: SimDuration::from_secs(8),
            },
        }
    }

    /// A casual user who does not speak English — the paper: "being able to
    /// expect that all users will speak the same language is fundamentally
    /// a resource that the developer can count on".
    pub fn casual_non_english() -> UserProfile {
        let mut u = UserProfile::casual();
        u.name = "casual user (fr)".into();
        u.faculties.languages = vec![Language::French];
        u
    }

    /// A user with low vision and reduced dexterity — the accessibility
    /// case the paper's resource-layer discussion demands be first-class.
    pub fn low_vision() -> UserProfile {
        UserProfile {
            name: "low-vision user".into(),
            physical: PhysicalUser {
                vision: 0.2,
                dexterity: 0.5,
                ..Default::default()
            },
            faculties: Faculties {
                languages: vec![Language::English],
                gui_experience: 0.6,
                domain_knowledge: 0.2,
                admin_skill: 0.05,
                frustration_tolerance: 0.4,
                patience: SimDuration::from_secs(15),
            },
        }
    }

    /// Every preset, in sweep order.
    pub fn all_presets() -> Vec<UserProfile> {
        vec![
            UserProfile::researcher(),
            UserProfile::presenter(),
            UserProfile::casual(),
            UserProfile::casual_non_english(),
            UserProfile::low_vision(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_distinctly_named() {
        let names: Vec<String> = UserProfile::all_presets()
            .into_iter()
            .map(|p| p.name)
            .collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }

    #[test]
    fn researcher_outskills_casual_everywhere() {
        let r = UserProfile::researcher().faculties;
        let c = UserProfile::casual().faculties;
        assert!(r.gui_experience > c.gui_experience);
        assert!(r.domain_knowledge > c.domain_knowledge);
        assert!(r.admin_skill > c.admin_skill);
        assert!(r.frustration_tolerance > c.frustration_tolerance);
        assert!(r.patience > c.patience);
    }

    #[test]
    fn language_checks() {
        assert!(UserProfile::researcher().faculties.speaks(Language::English));
        assert!(!UserProfile::casual_non_english()
            .faculties
            .speaks(Language::English));
        assert!(UserProfile::casual_non_english()
            .faculties
            .speaks(Language::French));
    }

    #[test]
    fn low_vision_profile_reflects_impairment() {
        let u = UserProfile::low_vision();
        assert!(u.physical.vision < 0.5);
        assert!(u.physical.dexterity < 1.0);
        assert!(u.physical.can_speak);
    }

    #[test]
    fn default_body_is_unimpaired() {
        let p = PhysicalUser::default();
        assert_eq!(p.vision, 1.0);
        assert_eq!(p.hearing, 1.0);
        assert_eq!(p.dexterity, 1.0);
    }
}
