//! State machines for application logic and user mental models.
//!
//! Figure 4's two columns — *Software Logic / Software State* on the device
//! side, *User Reasoning / User Expectations* on the user side — are both
//! finite state machines here. The application's machine is ground truth;
//! the user's machine is a belief that may be wrong in both directions
//! (missing transitions the app has, believing transitions the app lacks).
//! [`divergence`] measures the static gap; [`crate::user_sim`] measures its
//! dynamic cost.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A deterministic finite state machine over string states and actions.
///
/// `BTreeMap` keeps iteration deterministic, which keeps the planner and
/// the experiments reproducible.
#[derive(Clone, Debug, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct StateMachine {
    transitions: BTreeMap<(String, String), String>,
    states: BTreeSet<String>,
}

impl StateMachine {
    /// Empty machine.
    pub fn new() -> Self {
        StateMachine::default()
    }

    /// Add a transition `from --action--> to` (builder style).
    pub fn with(mut self, from: &str, action: &str, to: &str) -> Self {
        self.add(from, action, to);
        self
    }

    /// Add a transition, creating states as needed. Re-adding an
    /// `(from, action)` pair overwrites (belief repair uses this).
    pub fn add(&mut self, from: &str, action: &str, to: &str) {
        self.states.insert(from.to_string());
        self.states.insert(to.to_string());
        self.transitions
            .insert((from.to_string(), action.to_string()), to.to_string());
    }

    /// Remove a transition (used to build impoverished mental models).
    pub fn remove(&mut self, from: &str, action: &str) -> bool {
        self.transitions
            .remove(&(from.to_string(), action.to_string()))
            .is_some()
    }

    /// Where does `action` lead from `from`? `None` = the machine ignores
    /// it (the state is unchanged in the application; in a belief it means
    /// "the user doesn't think that does anything").
    pub fn step(&self, from: &str, action: &str) -> Option<&str> {
        self.transitions
            .get(&(from.to_string(), action.to_string()))
            .map(|s| s.as_str())
    }

    /// All states mentioned by any transition.
    pub fn states(&self) -> impl Iterator<Item = &str> {
        self.states.iter().map(|s| s.as_str())
    }

    /// Number of transitions.
    pub fn len(&self) -> usize {
        self.transitions.len()
    }

    /// True when the machine has no transitions.
    pub fn is_empty(&self) -> bool {
        self.transitions.is_empty()
    }

    /// Actions available from `from`, in deterministic order.
    pub fn actions_from<'a>(&'a self, from: &'a str) -> impl Iterator<Item = &'a str> {
        self.transitions
            .range((from.to_string(), String::new())..)
            .take_while(move |((f, _), _)| f == from)
            .map(|((_, a), _)| a.as_str())
    }

    /// All transitions `(from, action, to)`, deterministic order.
    pub fn transitions(&self) -> impl Iterator<Item = (&str, &str, &str)> {
        self.transitions
            .iter()
            .map(|((f, a), t)| (f.as_str(), a.as_str(), t.as_str()))
    }

    /// Shortest action sequence from `from` to `goal` (BFS), or `None`.
    pub fn plan(&self, from: &str, goal: &str) -> Option<Vec<String>> {
        if from == goal {
            return Some(Vec::new());
        }
        let mut seen = BTreeSet::new();
        seen.insert(from.to_string());
        let mut queue: VecDeque<(String, Vec<String>)> = VecDeque::new();
        queue.push_back((from.to_string(), Vec::new()));
        while let Some((state, path)) = queue.pop_front() {
            for action in self.actions_from(&state).map(str::to_string).collect::<Vec<_>>() {
                let next = self.step(&state, &action).unwrap().to_string();
                if next == goal {
                    let mut p = path.clone();
                    p.push(action);
                    return Some(p);
                }
                if seen.insert(next.clone()) {
                    let mut p = path.clone();
                    p.push(action);
                    queue.push_back((next, p));
                }
            }
        }
        None
    }
}

/// Static divergence between a belief and the actual machine.
#[derive(Clone, Debug, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Divergence {
    /// Transitions the application has that the belief lacks or mispredicts.
    pub missing_or_wrong: usize,
    /// Transitions the belief has that the application lacks or that lead
    /// elsewhere (the dangerous kind: the user *expects* something false).
    pub false_beliefs: usize,
    /// Transitions agreed on by both.
    pub agreed: usize,
}

impl Divergence {
    /// A scalar "conceptual gap" in `[0, 1]`: 0 = perfectly aligned belief.
    pub fn gap(&self) -> f64 {
        let total = self.missing_or_wrong + self.false_beliefs + self.agreed;
        if total == 0 {
            0.0
        } else {
            (self.missing_or_wrong + self.false_beliefs) as f64 / total as f64
        }
    }
}

/// Compare a believed machine against the actual one (Figure 4's
/// *must be consistent with* relation, statically).
pub fn divergence(belief: &StateMachine, actual: &StateMachine) -> Divergence {
    let mut d = Divergence::default();
    for (f, a, t) in actual.transitions() {
        match belief.step(f, a) {
            Some(bt) if bt == t => d.agreed += 1,
            _ => d.missing_or_wrong += 1,
        }
    }
    for (f, a, t) in belief.transitions() {
        match actual.step(f, a) {
            Some(at) if at == t => {} // counted as agreed above
            _ => d.false_beliefs += 1,
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    fn door() -> StateMachine {
        StateMachine::new()
            .with("closed", "open", "open")
            .with("open", "close", "closed")
            .with("open", "lock", "open") // locking an open door does nothing visible
    }

    #[test]
    fn step_and_states() {
        let m = door();
        assert_eq!(m.step("closed", "open"), Some("open"));
        assert_eq!(m.step("closed", "close"), None);
        assert_eq!(m.states().count(), 2);
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn actions_from_is_scoped_and_ordered() {
        let m = door();
        let actions: Vec<&str> = m.actions_from("open").collect();
        assert_eq!(actions, vec!["close", "lock"]);
        assert_eq!(m.actions_from("closed").count(), 1);
        assert_eq!(m.actions_from("nonexistent").count(), 0);
    }

    #[test]
    fn plan_finds_shortest_path() {
        let m = StateMachine::new()
            .with("a", "x", "b")
            .with("b", "x", "c")
            .with("a", "shortcut", "c")
            .with("c", "x", "d");
        assert_eq!(m.plan("a", "c"), Some(vec!["shortcut".to_string()]));
        assert_eq!(
            m.plan("a", "d"),
            Some(vec!["shortcut".to_string(), "x".to_string()])
        );
        assert_eq!(m.plan("a", "a"), Some(vec![]));
        assert_eq!(m.plan("d", "a"), None);
    }

    #[test]
    fn plan_handles_cycles() {
        let m = StateMachine::new()
            .with("a", "loop", "a")
            .with("a", "go", "b");
        assert_eq!(m.plan("a", "b"), Some(vec!["go".to_string()]));
        assert_eq!(m.plan("a", "z"), None);
    }

    #[test]
    fn overwrite_repairs_belief() {
        let mut belief = StateMachine::new().with("s", "tap", "wrong");
        belief.add("s", "tap", "right");
        assert_eq!(belief.step("s", "tap"), Some("right"));
        assert_eq!(belief.len(), 1);
    }

    #[test]
    fn remove_transition() {
        let mut m = door();
        assert!(m.remove("open", "lock"));
        assert!(!m.remove("open", "lock"));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn divergence_of_identical_machines_is_zero() {
        let d = divergence(&door(), &door());
        assert_eq!(d.missing_or_wrong, 0);
        assert_eq!(d.false_beliefs, 0);
        assert_eq!(d.agreed, 3);
        assert_eq!(d.gap(), 0.0);
    }

    #[test]
    fn divergence_counts_both_directions() {
        let actual = door();
        let mut belief = door();
        belief.remove("open", "lock"); // missing
        belief.add("closed", "knock", "open"); // false belief
        let d = divergence(&belief, &actual);
        assert_eq!(d.missing_or_wrong, 1);
        assert_eq!(d.false_beliefs, 1);
        assert_eq!(d.agreed, 2);
        assert!(d.gap() > 0.4 && d.gap() < 0.6);
    }

    #[test]
    fn divergence_counts_mispredicted_targets() {
        let actual = StateMachine::new().with("a", "x", "b");
        let belief = StateMachine::new().with("a", "x", "c");
        let d = divergence(&belief, &actual);
        assert_eq!(d.missing_or_wrong, 1, "actual transition mispredicted");
        assert_eq!(d.false_beliefs, 1, "belief points somewhere false");
        assert_eq!(d.agreed, 0);
        assert_eq!(d.gap(), 1.0);
    }

    #[test]
    fn empty_machines_have_zero_gap() {
        let d = divergence(&StateMachine::new(), &StateMachine::new());
        assert_eq!(d.gap(), 0.0);
    }
}
