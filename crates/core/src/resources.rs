//! The device-side resource layer: the Mem/Sto/Exe/UI/Net quintet of
//! Figure 3, plus the demands an application places on it and on the user.
//!
//! The paper's resource-layer question is *"what can we count on being
//! available?"* — answered twice: by the device (logical resources) and by
//! the user (faculties, see [`crate::faculty`]). The analysis engine checks
//! the figure's relation — user faculties *"must not be frustrated by"*
//! these resources — via [`frustration_check`].

use crate::faculty::{Faculties, Language};
use aroma_appliance::executor::Policy;
use aroma_appliance::UiClass;
use aroma_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// How the device's networking is configured.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum NetConfig {
    /// "Networking features should be automatically available,
    /// self-configuring" — the paper's requirement.
    SelfConfiguring,
    /// Requires manual setup (SSIDs, addresses, lookup-service hosts).
    ManualSetup,
    /// No networking.
    None,
}

/// How storage presents information to the user.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum StorageModel {
    /// User-organisable (folders, tags): "allowing users to flexibly
    /// organize information in a manner that suits their purposes".
    FlexibleOrganisation,
    /// Fixed schema only.
    RigidSchema,
    /// No user-visible storage.
    None,
}

/// The logical resources a device presents (Figure 3's device column).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DeviceResources {
    /// Volatile memory available to applications, KiB (Mem).
    pub mem_kib: u32,
    /// Storage model (Sto).
    pub storage: StorageModel,
    /// Execution policy (Exe): responsiveness and abortability.
    pub exe_policy: Policy,
    /// UI hardware class the window system runs on (UI).
    pub ui_class: UiClass,
    /// Languages the UI can present (UI).
    pub ui_languages: Vec<Language>,
    /// GUI fluency the UI effectively assumes of its user, `[0,1]` (UI).
    pub assumed_gui_experience: f64,
    /// Network configuration story (Net).
    pub net: NetConfig,
    /// Typical response time to an interactive action under light load.
    pub nominal_response: SimDuration,
}

impl DeviceResources {
    /// The Smart Projector research prototype's resources as the paper
    /// describes them: Java/Jini on the adapter, English-only interfaces,
    /// manual recovery when "the wireless network, the Linux-based adapter,
    /// \[or\] the lookup service" misbehave.
    pub fn research_prototype() -> Self {
        DeviceResources {
            mem_kib: 32 * 1024,
            storage: StorageModel::RigidSchema,
            exe_policy: Policy::SingleThreaded,
            ui_class: UiClass::FullDesktop,
            ui_languages: vec![Language::English],
            assumed_gui_experience: 0.9,
            net: NetConfig::ManualSetup,
            nominal_response: SimDuration::from_millis(1500),
        }
    }

    /// A commercial-grade variant: self-configuring, multilingual,
    /// abortable, snappy.
    pub fn commercial_grade() -> Self {
        DeviceResources {
            mem_kib: 32 * 1024,
            storage: StorageModel::FlexibleOrganisation,
            exe_policy: Policy::Cooperative {
                quantum: SimDuration::from_millis(50),
            },
            ui_class: UiClass::FullDesktop,
            ui_languages: vec![
                Language::English,
                Language::French,
                Language::Spanish,
                Language::German,
                Language::Japanese,
            ],
            assumed_gui_experience: 0.3,
            net: NetConfig::SelfConfiguring,
            nominal_response: SimDuration::from_millis(200),
        }
    }
}

/// One way a device's resources frustrate a user's faculties.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Frustration {
    /// The UI speaks no language the user does.
    NoSharedLanguage,
    /// The UI assumes more GUI fluency than the user has.
    AssumesExpertise,
    /// Networking needs administration the user cannot perform.
    AdminBurden,
    /// Responses outlast the user's patience.
    Unresponsive,
    /// Long tasks cannot be aborted.
    NoAbort,
    /// Storage cannot be organised to suit the user's purposes.
    RigidStorage,
}

impl std::fmt::Display for Frustration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Frustration::NoSharedLanguage => "UI speaks no language the user understands",
            Frustration::AssumesExpertise => "UI assumes more GUI fluency than the user has",
            Frustration::AdminBurden => {
                "networking requires administration the user cannot perform"
            }
            Frustration::Unresponsive => "responses outlast the user's patience",
            Frustration::NoAbort => "long-running tasks cannot be aborted",
            Frustration::RigidStorage => "storage cannot be organised to suit the user",
        };
        f.write_str(s)
    }
}

/// Check the Figure 3 relation: which of the device's resources would
/// frustrate this user's faculties? Empty = the relation holds.
pub fn frustration_check(faculties: &Faculties, res: &DeviceResources) -> Vec<Frustration> {
    let mut out = Vec::new();
    if !res
        .ui_languages
        .iter()
        .any(|l| faculties.languages.contains(l))
    {
        out.push(Frustration::NoSharedLanguage);
    }
    if res.assumed_gui_experience > faculties.gui_experience + 0.05 {
        out.push(Frustration::AssumesExpertise);
    }
    if res.net == NetConfig::ManualSetup && faculties.admin_skill < 0.5 {
        out.push(Frustration::AdminBurden);
    }
    if res.nominal_response > faculties.patience {
        out.push(Frustration::Unresponsive);
    }
    if res.exe_policy == Policy::SingleThreaded && faculties.frustration_tolerance < 0.7 {
        out.push(Frustration::NoAbort);
    }
    if res.storage == StorageModel::RigidSchema && faculties.domain_knowledge < 0.5 {
        out.push(Frustration::RigidStorage);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faculty::UserProfile;

    #[test]
    fn researchers_are_not_frustrated_by_the_prototype() {
        let f = UserProfile::researcher().faculties;
        let v = frustration_check(&f, &DeviceResources::research_prototype());
        assert!(
            v.is_empty(),
            "the prototype serves its intended users, paper §Intentional: {v:?}"
        );
    }

    #[test]
    fn casual_users_are_frustrated_by_the_prototype() {
        let f = UserProfile::casual().faculties;
        let v = frustration_check(&f, &DeviceResources::research_prototype());
        assert!(v.contains(&Frustration::AdminBurden));
        assert!(v.contains(&Frustration::AssumesExpertise));
        assert!(v.contains(&Frustration::NoAbort));
        assert!(v.len() >= 3);
    }

    #[test]
    fn commercial_variant_clears_casual_users() {
        let f = UserProfile::casual().faculties;
        let v = frustration_check(&f, &DeviceResources::commercial_grade());
        assert!(v.is_empty(), "commercial grade should not frustrate: {v:?}");
    }

    #[test]
    fn language_mismatch_detected() {
        let f = UserProfile::casual_non_english().faculties;
        let v = frustration_check(&f, &DeviceResources::research_prototype());
        assert!(v.contains(&Frustration::NoSharedLanguage));
        let v2 = frustration_check(&f, &DeviceResources::commercial_grade());
        assert!(!v2.contains(&Frustration::NoSharedLanguage));
    }

    #[test]
    fn impatience_vs_slow_device() {
        let mut f = UserProfile::presenter().faculties;
        f.patience = SimDuration::from_millis(500);
        let v = frustration_check(&f, &DeviceResources::research_prototype());
        assert!(v.contains(&Frustration::Unresponsive));
    }

    #[test]
    fn frustrations_render_descriptively() {
        assert!(Frustration::AdminBurden.to_string().contains("administration"));
        assert!(Frustration::NoAbort.to_string().contains("aborted"));
    }
}
