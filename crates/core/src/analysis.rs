//! The LPC analysis engine.
//!
//! Reproduces what the paper does by hand in its *"Analysis of a Pervasive
//! Computing System"* section: take a composed system — an environment,
//! devices, users, and who-uses-what bindings — and classify every issue
//! into its proper layer. The checks are exactly the figures' relations:
//!
//! * Environment: every physical entity (device **and** user) *must be
//!   compatible with* the environment; radio and acoustic conditions are
//!   first-class.
//! * Physical: device I/O hardware *must be compatible with* the user's
//!   body; bandwidth and proximity constraints live here.
//! * Resource: user faculties *must not be frustrated by* the device's
//!   logical resources; external dependencies ("relies on having a Jini
//!   lookup service present") are resource assumptions.
//! * Abstract: the user's mental model *must be consistent with* the
//!   application — checked statically (divergence) and dynamically (a
//!   simulated session).
//! * Intentional: the design purpose *must be in harmony with* the user's
//!   goals.

use crate::faculty::UserProfile;
use crate::intent::{harmony, DesignPurpose, UserGoals};
use crate::layer::Layer;
use crate::mental::{divergence, StateMachine};
use crate::resources::{frustration_check, DeviceResources, Frustration};
use crate::user_sim::{simulate_session, PlannerKind, SessionParams};
use aroma_appliance::{DeviceProfile, UiClass};
use aroma_env::acoustics::recognition_accuracy;
use aroma_env::space::Point;
use aroma_env::Environment;
use aroma_sim::report::{Json, Table};
use aroma_sim::SimRng;

/// How serious an issue is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Worth recording; no user-visible harm.
    Info,
    /// Degrades the experience or narrows the audience.
    Advisory,
    /// Defeats the system for some users or conditions.
    Serious,
    /// Defeats the system outright for this binding.
    Blocking,
}

impl Severity {
    /// Short label.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Advisory => "advisory",
            Severity::Serious => "serious",
            Severity::Blocking => "blocking",
        }
    }
}

/// One classified finding.
#[derive(Clone, Debug, PartialEq)]
pub struct Issue {
    /// The layer the issue belongs to — the model's whole point.
    pub layer: Layer,
    /// Severity.
    pub severity: Severity,
    /// Which entity or pairing it concerns.
    pub subject: String,
    /// What is wrong.
    pub description: String,
}

/// An application running on a device.
#[derive(Clone, Debug)]
pub struct AppSpec {
    /// Name for reports.
    pub name: String,
    /// The software logic (ground truth for the abstract layer).
    pub machine: StateMachine,
    /// Initial state.
    pub start: String,
    /// The state accomplishing the user's task.
    pub goal: String,
    /// The app exposes a voice interface.
    pub uses_voice: bool,
    /// The user must stay within this range of some hardware to use it.
    pub proximity_constraint_m: Option<f64>,
    /// Sustained bandwidth the app needs to feel right, bits/s.
    pub needs_bandwidth_bps: Option<f64>,
    /// Things the app silently counts on existing ("Jini lookup service").
    pub external_dependencies: Vec<String>,
    /// What the design is for.
    pub purpose: DesignPurpose,
}

/// A device in the composed system.
#[derive(Clone, Debug)]
pub struct DeviceEntity {
    /// Name for reports.
    pub name: String,
    /// Hardware (physical layer + environmental envelope).
    pub profile: DeviceProfile,
    /// Logical resources (None for dumb hardware like the bare projector).
    pub resources: Option<DeviceResources>,
    /// Application hosted on the device (if any).
    pub application: Option<AppSpec>,
    /// Sustained link bandwidth actually available to it, bits/s.
    pub link_bandwidth_bps: Option<f64>,
    /// Where it sits in the floor plan.
    pub position: Point,
}

/// A user driving a device's application.
#[derive(Clone, Debug)]
pub struct Binding {
    /// Index into [`PervasiveSystem::users`].
    pub user: usize,
    /// Index into [`PervasiveSystem::devices`].
    pub device: usize,
    /// The user's goals at the intentional layer.
    pub goals: UserGoals,
    /// The user's prior mental model of the application.
    pub belief: StateMachine,
}

/// A composed pervasive computing system, ready for analysis.
#[derive(Debug)]
pub struct PervasiveSystem {
    /// Name for reports.
    pub name: String,
    /// The environment everything sits in.
    pub environment: Environment,
    /// The people.
    pub users: Vec<UserProfile>,
    /// The hardware/software entities.
    pub devices: Vec<DeviceEntity>,
    /// Who uses what.
    pub bindings: Vec<Binding>,
}

/// The analysis output: the paper's section, as data.
#[derive(Clone, Debug, Default)]
pub struct AnalysisReport {
    /// Every classified issue.
    pub issues: Vec<Issue>,
}

impl AnalysisReport {
    /// Issues in one layer.
    pub fn in_layer(&self, layer: Layer) -> impl Iterator<Item = &Issue> {
        self.issues.iter().filter(move |i| i.layer == layer)
    }

    /// Count per layer, bottom-up.
    pub fn layer_counts(&self) -> Vec<(Layer, usize)> {
        Layer::ALL
            .iter()
            .map(|&l| (l, self.in_layer(l).count()))
            .collect()
    }

    /// Most severe issue present (None if the report is clean).
    pub fn worst(&self) -> Option<Severity> {
        self.issues.iter().map(|i| i.severity).max()
    }

    /// Render as an aligned table, most severe first within each layer,
    /// layers bottom-up (the order the paper walks them in reverse).
    pub fn render(&self) -> String {
        let mut t = Table::new(&["layer", "severity", "subject", "issue"]);
        let mut sorted = self.issues.clone();
        sorted.sort_by(|a, b| {
            a.layer
                .cmp(&b.layer)
                .then(b.severity.cmp(&a.severity))
                .then(a.subject.cmp(&b.subject))
        });
        for i in &sorted {
            t.row(&[
                i.layer.name().to_string(),
                i.severity.label().to_string(),
                i.subject.clone(),
                i.description.clone(),
            ]);
        }
        t.render()
    }

    /// JSON for archival.
    pub fn json(&self) -> Json {
        Json::Arr(
            self.issues
                .iter()
                .map(|i| {
                    Json::obj(vec![
                        ("layer", i.layer.name().into()),
                        ("severity", i.severity.label().into()),
                        ("subject", i.subject.as_str().into()),
                        ("description", i.description.as_str().into()),
                    ])
                })
                .collect(),
        )
    }
}

impl PervasiveSystem {
    /// Run the full five-layer analysis. Deterministic given `seed` (the
    /// abstract-layer session simulation draws exploration randomness).
    pub fn analyze(&self, seed: u64) -> AnalysisReport {
        let mut report = AnalysisReport::default();
        self.check_environment(&mut report);
        self.check_physical(&mut report);
        self.check_resource(&mut report);
        self.check_abstract(&mut report, seed);
        self.check_intentional(&mut report);
        report
    }

    /// [`analyze`](Self::analyze) plus **measured** resource-layer
    /// evidence: a telemetry snapshot from an instrumented run backs the
    /// static resource checks with what the network actually did — frames
    /// dropped at full queues or after the retry limit, and retry / ACK
    /// -timeout pressure short of outright loss.
    pub fn analyze_with_metrics(
        &self,
        seed: u64,
        metrics: Option<&aroma_sim::telemetry::Snapshot>,
    ) -> AnalysisReport {
        let mut report = self.analyze(seed);
        if let Some(snap) = metrics {
            self.check_measured_resource(snap, &mut report);
        }
        report
    }

    fn check_measured_resource(
        &self,
        snap: &aroma_sim::telemetry::Snapshot,
        report: &mut AnalysisReport,
    ) {
        let queue_drops = snap.counter("net.mac.drop.queue_full");
        if queue_drops > 0 {
            report.issues.push(Issue {
                layer: Layer::Resource,
                severity: Severity::Serious,
                subject: "wireless MAC (measured)".into(),
                description: format!(
                    "{queue_drops} frame(s) dropped at full transmit queues — offered load exceeds the link's capacity"
                ),
            });
        }
        let retry_drops = snap.counter("net.mac.drop.retry_limit");
        if retry_drops > 0 {
            report.issues.push(Issue {
                layer: Layer::Resource,
                severity: Severity::Serious,
                subject: "wireless MAC (measured)".into(),
                description: format!(
                    "{retry_drops} frame(s) abandoned after the retry limit — contention or interference defeats delivery"
                ),
            });
        }
        let attempts = snap.counter("net.mac.tx_attempts");
        let retries = snap.counter("net.mac.retries");
        if attempts > 0 {
            let rate = retries as f64 / attempts as f64;
            if rate > 0.25 {
                report.issues.push(Issue {
                    layer: Layer::Resource,
                    severity: Severity::Advisory,
                    subject: "wireless MAC (measured)".into(),
                    description: format!(
                        "{:.0}% of transmissions needed a retry ({retries}/{attempts}) — the shared medium is congested",
                        rate * 100.0
                    ),
                });
            }
        }
        if snap.trace_dropped > 0 {
            report.issues.push(Issue {
                layer: Layer::Resource,
                severity: Severity::Info,
                subject: "telemetry".into(),
                description: format!(
                    "trace ring overflowed; {} event(s) dropped (metrics unaffected)",
                    snap.trace_dropped
                ),
            });
        }
    }

    fn check_environment(&self, report: &mut AnalysisReport) {
        let climate = &self.environment.climate;
        for d in &self.devices {
            for v in d.profile.operating_range.violations(climate) {
                report.issues.push(Issue {
                    layer: Layer::Environment,
                    severity: Severity::Serious,
                    subject: d.name.clone(),
                    description: format!("{v} in {}", self.environment.name),
                });
            }
        }
        for u in &self.users {
            for v in u.physical.comfort.violations(climate) {
                report.issues.push(Issue {
                    layer: Layer::Environment,
                    severity: Severity::Advisory,
                    subject: u.name.clone(),
                    description: format!("user discomfort: {v} in {}", self.environment.name),
                });
            }
        }
        // Crowded 2.4 GHz band hits every networked device.
        let rise = self.environment.radio.ambient_noise_rise_db;
        if rise > 2.0 {
            for d in self.devices.iter().filter(|d| d.profile.has_network) {
                report.issues.push(Issue {
                    layer: Layer::Environment,
                    severity: Severity::Advisory,
                    subject: d.name.clone(),
                    description: format!(
                        "2.4 GHz band congestion (+{rise:.0} dB noise rise) degrades the wireless link"
                    ),
                });
            }
        }
        // Voice interfaces against the acoustic and social environment.
        for d in &self.devices {
            let Some(app) = &d.application else { continue };
            if !app.uses_voice {
                continue;
            }
            if !self.environment.acoustics.social.voice_appropriate() {
                report.issues.push(Issue {
                    layer: Layer::Environment,
                    severity: Severity::Serious,
                    subject: format!("{} voice UI", d.name),
                    description: format!(
                        "speaking aloud is socially inappropriate in {}",
                        self.environment.name
                    ),
                });
            }
            // A user ~0.5 m from their device.
            let talker = d.position;
            let mic = Point::new(d.position.x + 0.5, d.position.y);
            let snr = self.environment.acoustics.speech_snr_db(talker, mic);
            let acc = recognition_accuracy(snr);
            if acc < 0.85 {
                report.issues.push(Issue {
                    layer: Layer::Environment,
                    severity: Severity::Serious,
                    subject: format!("{} voice UI", d.name),
                    description: format!(
                        "background noise in {} drops recognition to {:.0}%",
                        self.environment.name,
                        acc * 100.0
                    ),
                });
            }
        }
    }

    fn check_physical(&self, report: &mut AnalysisReport) {
        for b in &self.bindings {
            let user = &self.users[b.user];
            let device = &self.devices[b.device];
            let body = &user.physical;
            let subject = format!("{} ↔ {}", user.name, device.name);
            let ui_ok = match device.profile.ui {
                UiClass::Headless => true,
                UiClass::ButtonsAndLeds => body.vision >= 0.3,
                UiClass::StylusTouch => body.vision >= 0.4 && body.dexterity >= 0.4,
                UiClass::FullDesktop => body.vision >= 0.4 && body.dexterity >= 0.3,
            };
            if !ui_ok {
                report.issues.push(Issue {
                    layer: Layer::Physical,
                    severity: Severity::Blocking,
                    subject: subject.clone(),
                    description: format!(
                        "{:?} interface is physically unusable for this user (vision {:.1}, dexterity {:.1})",
                        device.profile.ui, body.vision, body.dexterity
                    ),
                });
            }
            if let Some(app) = &device.application {
                if app.uses_voice && !body.can_speak {
                    report.issues.push(Issue {
                        layer: Layer::Physical,
                        severity: Severity::Blocking,
                        subject: subject.clone(),
                        description: "voice interface requires speech the user cannot produce"
                            .into(),
                    });
                }
                if let Some(range) = app.proximity_constraint_m {
                    report.issues.push(Issue {
                        layer: Layer::Physical,
                        severity: Severity::Advisory,
                        subject: subject.clone(),
                        description: format!(
                            "user is physically constrained to stay within {range:.1} m of the controlling hardware"
                        ),
                    });
                }
                if let (Some(need), Some(have)) =
                    (app.needs_bandwidth_bps, device.link_bandwidth_bps)
                {
                    if need > have {
                        report.issues.push(Issue {
                            layer: Layer::Physical,
                            severity: Severity::Serious,
                            subject: subject.clone(),
                            description: format!(
                                "link bandwidth {:.1} Mbit/s cannot carry the {:.1} Mbit/s the application needs (rapid animation will not display)",
                                have / 1e6,
                                need / 1e6
                            ),
                        });
                    }
                }
            }
        }
    }

    fn check_resource(&self, report: &mut AnalysisReport) {
        for b in &self.bindings {
            let user = &self.users[b.user];
            let device = &self.devices[b.device];
            let subject = format!("{} ↔ {}", user.name, device.name);
            if let Some(res) = &device.resources {
                for f in frustration_check(&user.faculties, res) {
                    let severity = match f {
                        Frustration::NoSharedLanguage => Severity::Blocking,
                        Frustration::AdminBurden | Frustration::Unresponsive => Severity::Serious,
                        _ => Severity::Advisory,
                    };
                    report.issues.push(Issue {
                        layer: Layer::Resource,
                        severity,
                        subject: subject.clone(),
                        description: f.to_string(),
                    });
                }
            }
            if let Some(app) = &device.application {
                for dep in &app.external_dependencies {
                    report.issues.push(Issue {
                        layer: Layer::Resource,
                        severity: Severity::Advisory,
                        subject: device.name.clone(),
                        description: format!("counts on {dep} being present and healthy"),
                    });
                }
            }
        }
    }

    fn check_abstract(&self, report: &mut AnalysisReport, seed: u64) {
        for (i, b) in self.bindings.iter().enumerate() {
            let user = &self.users[b.user];
            let device = &self.devices[b.device];
            let Some(app) = &device.application else {
                continue;
            };
            let subject = format!("{} ↔ {}", user.name, app.name);
            let d = divergence(&b.belief, &app.machine);
            if d.gap() > 0.25 {
                report.issues.push(Issue {
                    layer: Layer::Abstract,
                    severity: Severity::Serious,
                    subject: subject.clone(),
                    description: format!(
                        "mental model inconsistent with the application ({} missing/wrong, {} false beliefs; gap {:.0}%)",
                        d.missing_or_wrong,
                        d.false_beliefs,
                        d.gap() * 100.0
                    ),
                });
            }
            let mut rng = SimRng::new(seed).fork(i as u64);
            let session = simulate_session(
                &user.faculties,
                &b.belief,
                &app.machine,
                &app.start,
                &app.goal,
                PlannerKind::Bfs,
                &SessionParams::default(),
                &mut rng,
            );
            if session.gave_up {
                report.issues.push(Issue {
                    layer: Layer::Abstract,
                    severity: Severity::Blocking,
                    subject: subject.clone(),
                    description: format!(
                        "user abandons the task (frustration {:.2} after {} steps, {} surprises)",
                        session.frustration, session.steps, session.surprises
                    ),
                });
            } else if session.surprises > 2 {
                report.issues.push(Issue {
                    layer: Layer::Abstract,
                    severity: Severity::Advisory,
                    subject: subject.clone(),
                    description: format!(
                        "task succeeds but costs {} surprises over {} steps (conceptual burden {:.2})",
                        session.surprises,
                        session.steps,
                        session.burden()
                    ),
                });
            }
        }
    }

    fn check_intentional(&self, report: &mut AnalysisReport) {
        for b in &self.bindings {
            let user = &self.users[b.user];
            let device = &self.devices[b.device];
            let Some(app) = &device.application else {
                continue;
            };
            let h = harmony(&b.goals, &app.purpose);
            let subject = format!("{} ↔ {}", user.name, app.name);
            if h < 0.5 {
                report.issues.push(Issue {
                    layer: Layer::Intentional,
                    severity: Severity::Serious,
                    subject,
                    description: format!(
                        "design purpose '{}' is not in harmony with goals '{}' (harmony {h:.2})",
                        app.purpose.name, b.goals.name
                    ),
                });
            } else if h < 0.75 {
                report.issues.push(Issue {
                    layer: Layer::Intentional,
                    severity: Severity::Advisory,
                    subject,
                    description: format!(
                        "partial harmony between '{}' and goals '{}' ({h:.2})",
                        app.purpose.name, b.goals.name
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aroma_appliance::DeviceClass;
    use aroma_env::{EnvironmentKind, EnvironmentProfile};

    fn simple_app(uses_voice: bool) -> AppSpec {
        AppSpec {
            name: "test app".into(),
            machine: StateMachine::new().with("idle", "go", "done"),
            start: "idle".into(),
            goal: "done".into(),
            uses_voice,
            proximity_constraint_m: None,
            needs_bandwidth_bps: None,
            external_dependencies: vec![],
            purpose: DesignPurpose::commercial_product(),
        }
    }

    fn device(app: Option<AppSpec>) -> DeviceEntity {
        DeviceEntity {
            name: "adapter".into(),
            profile: DeviceProfile::of(DeviceClass::AromaAdapter),
            resources: Some(DeviceResources::commercial_grade()),
            application: app,
            link_bandwidth_bps: Some(6e6),
            position: Point::new(0.0, 0.0),
        }
    }

    fn system(env: EnvironmentKind, users: Vec<UserProfile>, devices: Vec<DeviceEntity>, bindings: Vec<Binding>) -> PervasiveSystem {
        PervasiveSystem {
            name: "test system".into(),
            environment: EnvironmentProfile::preset(env).build(),
            users,
            devices,
            bindings,
        }
    }

    fn binding(user: usize, device: usize, belief: StateMachine) -> Binding {
        Binding {
            user,
            device,
            goals: UserGoals::casual(),
            belief,
        }
    }

    #[test]
    fn clean_system_has_no_blocking_issues() {
        let app = simple_app(false);
        let belief = app.machine.clone();
        let sys = system(
            EnvironmentKind::QuietOffice,
            vec![UserProfile::casual()],
            vec![device(Some(app))],
            vec![binding(0, 0, belief)],
        );
        let r = sys.analyze(1);
        assert!(
            r.worst().unwrap_or(Severity::Info) < Severity::Serious,
            "{}",
            r.render()
        );
    }

    #[test]
    fn measured_drops_surface_as_resource_issues() {
        use aroma_sim::telemetry::{Recorder, Telemetry, TelemetryConfig};
        let app = simple_app(false);
        let belief = app.machine.clone();
        let sys = system(
            EnvironmentKind::QuietOffice,
            vec![UserProfile::casual()],
            vec![device(Some(app))],
            vec![binding(0, 0, belief)],
        );

        // A run with no drops adds nothing beyond the static analysis.
        let mut clean = Telemetry::enabled(TelemetryConfig::metrics_only());
        clean.count("net.mac.tx_attempts", 100);
        clean.count("net.mac.retries", 3);
        let clean_snap = clean.snapshot().unwrap();
        let base = sys.analyze(1);
        let with_clean = sys.analyze_with_metrics(1, Some(&clean_snap));
        assert_eq!(with_clean.issues.len(), base.issues.len());

        // Queue and retry-limit drops become Serious resource issues.
        let mut hot = Telemetry::enabled(TelemetryConfig::metrics_only());
        hot.count("net.mac.drop.queue_full", 7);
        hot.count("net.mac.drop.retry_limit", 2);
        hot.count("net.mac.tx_attempts", 10);
        hot.count("net.mac.retries", 6);
        let hot_snap = hot.snapshot().unwrap();
        let r = sys.analyze_with_metrics(1, Some(&hot_snap));
        let measured: Vec<&Issue> = r
            .issues
            .iter()
            .filter(|i| i.subject.contains("measured"))
            .collect();
        assert_eq!(measured.len(), 3, "{}", r.render());
        assert!(measured
            .iter()
            .all(|i| i.layer == Layer::Resource && i.severity >= Severity::Advisory));
    }

    #[test]
    fn outdoor_projector_raises_environment_issue() {
        let mut d = device(None);
        d.name = "projector".into();
        d.profile = DeviceProfile::of(DeviceClass::DigitalProjector);
        let sys = system(
            EnvironmentKind::OutdoorCourtyard,
            vec![],
            vec![d],
            vec![],
        );
        let r = sys.analyze(1);
        let env_issues: Vec<_> = r.in_layer(Layer::Environment).collect();
        assert!(
            env_issues.iter().any(|i| i.description.contains("illuminance")),
            "{}",
            r.render()
        );
    }

    #[test]
    fn voice_ui_in_subway_raises_both_noise_and_social_issues() {
        let sys = system(
            EnvironmentKind::SubwayCar,
            vec![UserProfile::casual()],
            vec![device(Some(simple_app(true)))],
            vec![binding(0, 0, StateMachine::new().with("idle", "go", "done"))],
        );
        let r = sys.analyze(1);
        let voice: Vec<_> = r
            .in_layer(Layer::Environment)
            .filter(|i| i.subject.contains("voice"))
            .collect();
        assert!(
            voice.iter().any(|i| i.description.contains("socially inappropriate")),
            "{}",
            r.render()
        );
        assert!(
            voice.iter().any(|i| i.description.contains("recognition")),
            "{}",
            r.render()
        );
    }

    #[test]
    fn low_vision_user_blocked_at_physical_layer() {
        let app = simple_app(false);
        let belief = app.machine.clone();
        let sys = system(
            EnvironmentKind::QuietOffice,
            vec![UserProfile::low_vision()],
            vec![device(Some(app))],
            vec![binding(0, 0, belief)],
        );
        let r = sys.analyze(1);
        assert!(
            r.in_layer(Layer::Physical)
                .any(|i| i.severity == Severity::Blocking),
            "{}",
            r.render()
        );
    }

    #[test]
    fn bandwidth_shortfall_is_a_physical_issue() {
        let mut app = simple_app(false);
        app.needs_bandwidth_bps = Some(12e6);
        let belief = app.machine.clone();
        let sys = system(
            EnvironmentKind::QuietOffice,
            vec![UserProfile::researcher()],
            vec![device(Some(app))],
            vec![binding(0, 0, belief)],
        );
        let r = sys.analyze(1);
        assert!(
            r.in_layer(Layer::Physical)
                .any(|i| i.description.contains("animation")),
            "{}",
            r.render()
        );
    }

    #[test]
    fn prototype_resources_frustrate_casual_users() {
        let mut d = device(Some(simple_app(false)));
        d.resources = Some(DeviceResources::research_prototype());
        let belief = d.application.as_ref().unwrap().machine.clone();
        let sys = system(
            EnvironmentKind::QuietOffice,
            vec![UserProfile::casual()],
            vec![d],
            vec![binding(0, 0, belief)],
        );
        let r = sys.analyze(1);
        assert!(r.in_layer(Layer::Resource).count() >= 3, "{}", r.render());
    }

    #[test]
    fn external_dependencies_are_resource_assumptions() {
        let mut app = simple_app(false);
        app.external_dependencies = vec!["a Jini lookup service".into()];
        let belief = app.machine.clone();
        let sys = system(
            EnvironmentKind::QuietOffice,
            vec![UserProfile::researcher()],
            vec![device(Some(app))],
            vec![binding(0, 0, belief)],
        );
        let r = sys.analyze(1);
        assert!(
            r.in_layer(Layer::Resource)
                .any(|i| i.description.contains("Jini lookup service")),
            "{}",
            r.render()
        );
    }

    #[test]
    fn empty_belief_on_complex_app_raises_abstract_issues() {
        let mut app = simple_app(false);
        app.machine = StateMachine::new()
            .with("idle", "start-projection-client", "p-started")
            .with("p-started", "start-control-client", "both-started")
            .with("both-started", "start-vnc-server", "projecting")
            .with("idle", "start-control-client", "c-started")
            .with("c-started", "start-projection-client", "both-started");
        app.start = "idle".into();
        app.goal = "projecting".into();
        let sys = system(
            EnvironmentKind::QuietOffice,
            vec![UserProfile::casual()],
            vec![device(Some(app))],
            vec![binding(0, 0, StateMachine::new())],
        );
        let r = sys.analyze(1);
        assert!(r.in_layer(Layer::Abstract).count() >= 1, "{}", r.render());
    }

    #[test]
    fn research_purpose_vs_casual_goals_is_an_intentional_issue() {
        let mut app = simple_app(false);
        app.purpose = DesignPurpose::research_prototype();
        let belief = app.machine.clone();
        let sys = system(
            EnvironmentKind::QuietOffice,
            vec![UserProfile::casual()],
            vec![device(Some(app))],
            vec![binding(0, 0, belief)],
        );
        let r = sys.analyze(1);
        assert!(
            r.in_layer(Layer::Intentional)
                .any(|i| i.severity >= Severity::Serious),
            "{}",
            r.render()
        );
    }

    #[test]
    fn report_rendering_and_counts() {
        let mut app = simple_app(false);
        app.purpose = DesignPurpose::research_prototype();
        let belief = app.machine.clone();
        let sys = system(
            EnvironmentKind::SubwayCar,
            vec![UserProfile::casual()],
            vec![device(Some(app))],
            vec![binding(0, 0, belief)],
        );
        let r = sys.analyze(1);
        let counts = r.layer_counts();
        assert_eq!(counts.len(), 5);
        let total: usize = counts.iter().map(|(_, c)| c).sum();
        assert_eq!(total, r.issues.len());
        let rendered = r.render();
        assert!(rendered.contains("layer"));
        let j = r.json().render();
        assert!(j.starts_with('['));
    }

    #[test]
    fn analysis_is_deterministic_per_seed() {
        let mut app = simple_app(false);
        app.machine = StateMachine::new()
            .with("a", "x", "b")
            .with("b", "y", "c")
            .with("a", "z", "a");
        app.goal = "c".into();
        app.start = "a".into();
        let sys = system(
            EnvironmentKind::QuietOffice,
            vec![UserProfile::casual()],
            vec![device(Some(app))],
            vec![binding(0, 0, StateMachine::new())],
        );
        assert_eq!(sys.analyze(7).issues, sys.analyze(7).issues);
    }
}
