//! Property-based tests for the executor and power models.

use aroma_appliance::executor::{run, AbortRequest, Policy, TaskKind, TaskSpec, Workload};
use aroma_appliance::power::{battery_life, DutyCycle, PowerProfile};
use aroma_sim::{SimDuration, SimTime};
use proptest::prelude::*;

fn arb_task() -> impl Strategy<Value = TaskSpec> {
    (0u64..60_000, 1u64..30_000, any::<bool>()).prop_map(|(arrival_ms, work_ms, interactive)| {
        TaskSpec {
            arrival: SimTime::ZERO + SimDuration::from_millis(arrival_ms),
            work: SimDuration::from_millis(work_ms),
            kind: if interactive {
                TaskKind::Interactive
            } else {
                TaskKind::Background
            },
        }
    })
}

fn arb_workload() -> impl Strategy<Value = Workload> {
    (
        prop::collection::vec(arb_task(), 1..12),
        prop::collection::vec(0u64..80_000, 0..4),
    )
        .prop_map(|(tasks, aborts)| Workload {
            tasks,
            aborts: aborts
                .into_iter()
                .map(|ms| AbortRequest {
                    at: SimTime::ZERO + SimDuration::from_millis(ms),
                })
                .collect(),
        })
}

fn arb_policy() -> impl Strategy<Value = Policy> {
    prop_oneof![
        Just(Policy::SingleThreaded),
        (10u64..1000).prop_map(|q| Policy::Cooperative {
            quantum: SimDuration::from_millis(q)
        }),
    ]
}

proptest! {
    /// Conservation: every task either completes or is aborted; nothing is
    /// lost or double-counted.
    #[test]
    fn executor_conserves_tasks(w in arb_workload(), policy in arb_policy()) {
        let (r, _) = run(policy, &w, SimDuration::from_secs(2));
        prop_assert_eq!(r.completed + r.aborted, w.tasks.len(),
            "completed {} + aborted {} != tasks {}", r.completed, r.aborted, w.tasks.len());
    }

    /// The makespan is at least the last-arriving completed task's arrival
    /// and at least the total completed work is bounded by makespan (single
    /// processor: work done ≤ elapsed time).
    #[test]
    fn executor_makespan_bounds(w in arb_workload(), policy in arb_policy()) {
        let (r, _) = run(policy, &w, SimDuration::from_secs(2));
        let total_work_ms: u64 = w.tasks.iter().map(|t| t.work.as_millis()).sum();
        prop_assert!(r.makespan.as_millis() <= w.tasks.iter().map(|t| t.arrival.as_millis()).max().unwrap_or(0) + total_work_ms,
            "makespan exceeds arrival+work bound");
        // No task can complete before its arrival + work.
        if r.aborted == 0 && w.tasks.len() == 1 {
            let t = &w.tasks[0];
            prop_assert!(r.makespan >= t.arrival + t.work);
        }
    }

    /// Aborts never exceed abort requests nor background-task count.
    #[test]
    fn executor_abort_bounds(w in arb_workload(), policy in arb_policy()) {
        let (r, _) = run(policy, &w, SimDuration::from_secs(2));
        let backgrounds = w.tasks.iter().filter(|t| t.kind == TaskKind::Background).count();
        prop_assert!(r.aborted <= w.aborts.len());
        prop_assert!(r.aborted <= backgrounds);
    }

    /// A single interactive task contending with background work never
    /// fares worse under cooperative scheduling than under run-to-completion
    /// (modulo one quantum of granularity). This is the paper's claim in
    /// property form; note it is NOT true for interactive-vs-interactive
    /// contention, where FCFS minimises mean latency — hence one task.
    #[test]
    fn cooperative_never_hurts_the_interactive_task(
        backgrounds in prop::collection::vec(
            (0u64..30_000, 1u64..30_000),
            0..8
        ),
        tap_arrival_ms in 0u64..60_000,
        tap_work_ms in 1u64..2_000,
        q in 10u64..500,
    ) {
        let mut tasks: Vec<TaskSpec> = backgrounds
            .into_iter()
            .map(|(arrival_ms, work_ms)| TaskSpec {
                arrival: SimTime::ZERO + SimDuration::from_millis(arrival_ms),
                work: SimDuration::from_millis(work_ms),
                kind: TaskKind::Background,
            })
            .collect();
        tasks.push(TaskSpec {
            arrival: SimTime::ZERO + SimDuration::from_millis(tap_arrival_ms),
            work: SimDuration::from_millis(tap_work_ms),
            kind: TaskKind::Interactive,
        });
        let w = Workload { tasks, aborts: vec![] };
        let (st, _) = run(Policy::SingleThreaded, &w, SimDuration::from_secs(2));
        let (coop, _) = run(Policy::Cooperative { quantum: SimDuration::from_millis(q) }, &w, SimDuration::from_secs(2));
        prop_assert!(
            coop.interactive_latency.mean()
                <= st.interactive_latency.mean() + (q as f64 / 1000.0) + 1e-9,
            "coop {} > st {} + quantum",
            coop.interactive_latency.mean(),
            st.interactive_latency.mean()
        );
    }

    /// Frustration events never exceed the number of interactive tasks.
    #[test]
    fn frustrations_bounded(w in arb_workload(), policy in arb_policy(), patience_ms in 10u64..10_000) {
        let (_, frustrations) = run(policy, &w, SimDuration::from_millis(patience_ms));
        let interactive = w.tasks.iter().filter(|t| t.kind == TaskKind::Interactive).count();
        prop_assert!(frustrations <= interactive);
    }

    /// Battery life scales inversely with mean power and linearly with
    /// capacity.
    #[test]
    fn battery_life_scaling(capacity in 100.0f64..10_000.0, cpu in 0.0f64..1.0) {
        let p = PowerProfile::wlan_2000();
        let duty = DutyCycle { cpu_active: cpu, radio_tx: 0.1, radio_rx: 0.2, display_on: 0.0 };
        let base = battery_life(capacity, &p, &duty);
        let double = battery_life(capacity * 2.0, &p, &duty);
        let ratio = double.as_secs_f64() / base.as_secs_f64();
        prop_assert!((ratio - 2.0).abs() < 1e-6);
        // Busier never lives longer.
        let busier = DutyCycle { cpu_active: (cpu + 0.1).min(1.0), ..duty };
        prop_assert!(battery_life(capacity, &p, &busier) <= base);
    }
}
