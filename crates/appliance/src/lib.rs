//! # aroma-appliance — the information-appliance runtime
//!
//! The paper's resource layer is about what an application can *count on*:
//! the Aroma Adapter ("an embedded PC capable of running pervasive computing
//! software"), the projected $10 system-on-chip, and the runtime properties
//! users actually feel — *"a single-threaded system that does not allow a
//! user to abort a task causes needless frustration"* and *"in an
//! information appliance that has its operating software burned into ROM,
//! faulty assumptions are costly"*. This crate makes those concrete:
//!
//! * [`device`] — device profiles (PDA, Aroma Adapter, laptop, projector,
//!   and the paper's forecast $10 SOC): compute/memory/storage/UI/network
//!   capabilities, cost, boot time, and whether software is in ROM.
//! * [`executor`] — a task-execution model comparing run-to-completion
//!   single-threaded scheduling against a cooperative, abortable scheduler;
//!   produces the interactive-latency and abort-latency distributions that
//!   experiment E7 reports.
//! * [`power`] — a simple energy model (the "$10 SOC with a pico-cellular
//!   transceiver" needs a battery story), used by the appliance examples.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod device;
pub mod executor;
pub mod power;

pub use device::{DeviceClass, DeviceProfile, UiClass};
pub use executor::{ExecReport, Policy, TaskKind, TaskSpec, Workload};
