//! Energy model for battery-powered appliances.
//!
//! The paper's forecast device is "low-cost, embedded … non-intrusive" with
//! a "pico-cellular wireless transceiver"; whether such a device is viable
//! at all is an energy question, so the appliance examples carry a simple
//! but honest power model: component draws by state, battery capacity, and
//! lifetime estimation under a duty cycle.

use aroma_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Power draw of a component by operating state, milliwatts.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PowerProfile {
    /// CPU active.
    pub cpu_active_mw: f64,
    /// CPU idle/sleeping.
    pub cpu_idle_mw: f64,
    /// Radio transmitting.
    pub radio_tx_mw: f64,
    /// Radio receiving / listening.
    pub radio_rx_mw: f64,
    /// Radio off.
    pub radio_sleep_mw: f64,
    /// Display / LEDs on.
    pub display_mw: f64,
}

impl PowerProfile {
    /// A 2000-era WLAN PCMCIA-class device (the Aroma Adapter's card drew
    /// over a watt transmitting).
    pub fn wlan_2000() -> Self {
        PowerProfile {
            cpu_active_mw: 900.0,
            cpu_idle_mw: 150.0,
            radio_tx_mw: 1400.0,
            radio_rx_mw: 950.0,
            radio_sleep_mw: 50.0,
            display_mw: 0.0,
        }
    }

    /// The forecast $10 SOC with a pico-cellular transceiver.
    pub fn future_soc() -> Self {
        PowerProfile {
            cpu_active_mw: 120.0,
            cpu_idle_mw: 5.0,
            radio_tx_mw: 180.0,
            radio_rx_mw: 90.0,
            radio_sleep_mw: 0.5,
            display_mw: 0.0,
        }
    }
}

/// A duty cycle: what fraction of time each component spends active.
/// Fractions are clamped to `[0, 1]`; tx + rx must not exceed 1.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DutyCycle {
    /// Fraction of time the CPU is active.
    pub cpu_active: f64,
    /// Fraction of time the radio transmits.
    pub radio_tx: f64,
    /// Fraction of time the radio receives/listens.
    pub radio_rx: f64,
    /// Fraction of time the display is lit.
    pub display_on: f64,
}

impl DutyCycle {
    /// Mean power draw under this duty cycle, milliwatts.
    pub fn mean_power_mw(&self, p: &PowerProfile) -> f64 {
        let cpu_active = self.cpu_active.clamp(0.0, 1.0);
        let tx = self.radio_tx.clamp(0.0, 1.0);
        let rx = self.radio_rx.clamp(0.0, 1.0 - tx);
        let display = self.display_on.clamp(0.0, 1.0);
        p.cpu_active_mw * cpu_active
            + p.cpu_idle_mw * (1.0 - cpu_active)
            + p.radio_tx_mw * tx
            + p.radio_rx_mw * rx
            + p.radio_sleep_mw * (1.0 - tx - rx)
            + p.display_mw * display
    }
}

/// Battery lifetime under a duty cycle.
///
/// `capacity_mwh` in milliwatt-hours. Returns simulated duration.
pub fn battery_life(capacity_mwh: f64, p: &PowerProfile, duty: &DutyCycle) -> SimDuration {
    let draw = duty.mean_power_mw(p);
    assert!(draw > 0.0, "zero draw would be immortal");
    SimDuration::from_secs_f64(capacity_mwh / draw * 3600.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idle() -> DutyCycle {
        DutyCycle {
            cpu_active: 0.0,
            radio_tx: 0.0,
            radio_rx: 0.0,
            display_on: 0.0,
        }
    }

    #[test]
    fn idle_draw_is_floor() {
        let p = PowerProfile::future_soc();
        let mw = idle().mean_power_mw(&p);
        assert!((mw - (5.0 + 0.5)).abs() < 1e-9);
    }

    #[test]
    fn busier_cycles_draw_more() {
        let p = PowerProfile::wlan_2000();
        let light = DutyCycle {
            cpu_active: 0.1,
            radio_tx: 0.01,
            radio_rx: 0.1,
            display_on: 0.0,
        };
        let heavy = DutyCycle {
            cpu_active: 0.9,
            radio_tx: 0.3,
            radio_rx: 0.6,
            display_on: 0.0,
        };
        assert!(heavy.mean_power_mw(&p) > 2.0 * light.mean_power_mw(&p));
    }

    #[test]
    fn rx_fraction_yields_to_tx() {
        let p = PowerProfile::wlan_2000();
        // tx=0.8 leaves at most 0.2 for rx even if 0.6 requested.
        let d = DutyCycle {
            cpu_active: 0.0,
            radio_tx: 0.8,
            radio_rx: 0.6,
            display_on: 0.0,
        };
        let expected = p.cpu_idle_mw + p.radio_tx_mw * 0.8 + p.radio_rx_mw * 0.2;
        assert!((d.mean_power_mw(&p) - expected).abs() < 1e-9);
    }

    #[test]
    fn soc_outlives_wlan_card_by_an_order_of_magnitude() {
        let duty = DutyCycle {
            cpu_active: 0.05,
            radio_tx: 0.01,
            radio_rx: 0.05,
            display_on: 0.0,
        };
        // A AA-pair-ish 3000 mWh budget.
        let soc = battery_life(3000.0, &PowerProfile::future_soc(), &duty);
        let wlan = battery_life(3000.0, &PowerProfile::wlan_2000(), &duty);
        assert!(
            soc.as_secs_f64() > 10.0 * wlan.as_secs_f64(),
            "soc {soc} vs wlan {wlan}"
        );
        // And the SOC makes multi-day life plausible — the paper's
        // non-intrusiveness premise.
        assert!(soc > SimDuration::from_secs(3 * 24 * 3600));
    }
}
