//! Device profiles: what the physical and resource layers can count on.
//!
//! Profiles for the hardware the paper names: the Aroma Adapter (embedded
//! PC), a 2000-era PDA, a presenter's laptop, the digital projector, and
//! the forecast *"systems on a chip (SOC) \[that\] will cost approximately
//! $10 and include a pico-cellular wireless transceiver"*.

use aroma_env::climate::OperatingRange;
use aroma_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// UI hardware class, from none to full desktop.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum UiClass {
    /// No human-facing I/O at all (sensor node).
    Headless,
    /// A few buttons and LEDs.
    ButtonsAndLeds,
    /// Small touch screen with stylus.
    StylusTouch,
    /// Full keyboard, pointing device and display.
    FullDesktop,
}

/// The device archetypes of the Aroma project.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceClass {
    /// The Aroma Adapter: embedded PC, wireless PCMCIA, runs Java/Jini.
    AromaAdapter,
    /// A 2000-era PDA.
    Pda,
    /// The presenter's laptop.
    Laptop,
    /// The digital projector itself (display device, network-less).
    DigitalProjector,
    /// The paper's five-year forecast: a $10 SOC with radio and a VM.
    FutureSoc,
}

impl DeviceClass {
    /// All archetypes.
    pub const ALL: [DeviceClass; 5] = [
        DeviceClass::AromaAdapter,
        DeviceClass::Pda,
        DeviceClass::Laptop,
        DeviceClass::DigitalProjector,
        DeviceClass::FutureSoc,
    ];
}

/// A concrete device's capabilities.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// Human-readable name.
    pub name: String,
    /// Compute throughput, MIPS.
    pub cpu_mips: u32,
    /// Volatile memory, KiB.
    pub ram_kib: u32,
    /// Non-volatile storage, MiB.
    pub storage_mib: u32,
    /// UI hardware class.
    pub ui: UiClass,
    /// Has a network interface.
    pub has_network: bool,
    /// Can run a virtual machine ("sufficiently rich run-time environment").
    pub runs_vm: bool,
    /// Operating software burned into ROM (updates need reflashing).
    pub software_in_rom: bool,
    /// Unit cost, USD.
    pub cost_usd: f64,
    /// Cold-boot time.
    pub boot: SimDuration,
    /// Environmental envelope.
    pub operating_range: OperatingRange,
}

impl DeviceProfile {
    /// The canonical profile for an archetype.
    pub fn of(class: DeviceClass) -> DeviceProfile {
        match class {
            DeviceClass::AromaAdapter => DeviceProfile {
                name: "Aroma Adapter".into(),
                cpu_mips: 200,
                ram_kib: 32 * 1024,
                storage_mib: 64,
                ui: UiClass::ButtonsAndLeds,
                has_network: true,
                runs_vm: true,
                software_in_rom: false,
                cost_usd: 600.0,
                boot: SimDuration::from_secs(45),
                operating_range: OperatingRange::indoor_electronics(),
            },
            DeviceClass::Pda => DeviceProfile {
                name: "PDA".into(),
                cpu_mips: 30,
                ram_kib: 8 * 1024,
                storage_mib: 16,
                ui: UiClass::StylusTouch,
                has_network: false,
                runs_vm: false,
                software_in_rom: true,
                cost_usd: 300.0,
                boot: SimDuration::from_secs(1),
                operating_range: OperatingRange::indoor_electronics(),
            },
            DeviceClass::Laptop => DeviceProfile {
                name: "Laptop".into(),
                cpu_mips: 500,
                ram_kib: 128 * 1024,
                storage_mib: 6 * 1024,
                ui: UiClass::FullDesktop,
                has_network: true,
                runs_vm: true,
                software_in_rom: false,
                cost_usd: 2500.0,
                boot: SimDuration::from_secs(90),
                operating_range: OperatingRange::indoor_electronics(),
            },
            DeviceClass::DigitalProjector => DeviceProfile {
                name: "Digital projector".into(),
                cpu_mips: 5,
                ram_kib: 512,
                storage_mib: 0,
                ui: UiClass::ButtonsAndLeds,
                has_network: false,
                runs_vm: false,
                software_in_rom: true,
                cost_usd: 4000.0,
                boot: SimDuration::from_secs(20),
                operating_range: OperatingRange::projector(),
            },
            DeviceClass::FutureSoc => DeviceProfile {
                name: "$10 SOC (forecast)".into(),
                cpu_mips: 100,
                ram_kib: 4 * 1024,
                storage_mib: 8,
                ui: UiClass::Headless,
                has_network: true,
                runs_vm: true,
                software_in_rom: true,
                cost_usd: 10.0,
                boot: SimDuration::from_millis(200),
                operating_range: OperatingRange::ruggedised(),
            },
        }
    }

    /// Cost of shipping a software fix, USD per deployed unit.
    ///
    /// The paper: "In an information appliance that has its operating
    /// software burned into ROM, faulty assumptions are costly." ROM devices
    /// need physical reflashing/recall; networked flash devices update over
    /// the air; the rest need manual but local updates.
    pub fn fix_cost_usd(&self) -> f64 {
        match (self.software_in_rom, self.has_network) {
            (true, _) => self.cost_usd * 0.4 + 15.0, // recall/reflash
            (false, true) => 0.05,                   // over-the-air
            (false, false) => 5.0,                   // manual local update
        }
    }

    /// Can this device host a service runtime (discovery + mobile code)?
    pub fn can_host_services(&self) -> bool {
        self.has_network && self.runs_vm && self.ram_kib >= 1024
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_class_has_a_profile() {
        for c in DeviceClass::ALL {
            let p = DeviceProfile::of(c);
            assert!(!p.name.is_empty());
            assert!(p.cost_usd > 0.0);
        }
    }

    #[test]
    fn soc_hits_the_ten_dollar_point() {
        let soc = DeviceProfile::of(DeviceClass::FutureSoc);
        assert_eq!(soc.cost_usd, 10.0);
        assert!(soc.has_network && soc.runs_vm, "the forecast SOC runs VMs on a radio");
        assert!(soc.can_host_services());
    }

    #[test]
    fn adapter_hosts_services_projector_does_not() {
        assert!(DeviceProfile::of(DeviceClass::AromaAdapter).can_host_services());
        assert!(!DeviceProfile::of(DeviceClass::DigitalProjector).can_host_services());
        assert!(!DeviceProfile::of(DeviceClass::Pda).can_host_services());
    }

    #[test]
    fn rom_devices_are_expensive_to_fix() {
        let pda = DeviceProfile::of(DeviceClass::Pda);
        let adapter = DeviceProfile::of(DeviceClass::AromaAdapter);
        assert!(
            pda.fix_cost_usd() > 20.0 * adapter.fix_cost_usd(),
            "ROM fix ({}) should dwarf OTA fix ({})",
            pda.fix_cost_usd(),
            adapter.fix_cost_usd()
        );
    }

    #[test]
    fn ui_classes_are_ordered_by_capability() {
        assert!(UiClass::Headless < UiClass::ButtonsAndLeds);
        assert!(UiClass::ButtonsAndLeds < UiClass::StylusTouch);
        assert!(UiClass::StylusTouch < UiClass::FullDesktop);
    }

    #[test]
    fn boot_times_differ_by_class() {
        let soc = DeviceProfile::of(DeviceClass::FutureSoc);
        let laptop = DeviceProfile::of(DeviceClass::Laptop);
        assert!(soc.boot < SimDuration::from_secs(1));
        assert!(laptop.boot > SimDuration::from_secs(30));
    }
}
