//! The appliance's task executor: run-to-completion vs cooperative.
//!
//! Implements the paper's resource-layer claim as a measurable model:
//! *"a device's execution environment … must be sufficiently responsive …
//! a single-threaded system that does not allow a user to abort a task
//! causes needless frustration and will ultimately alter the patterns of
//! usage."* Two scheduling policies run the same workload:
//!
//! * [`Policy::SingleThreaded`] — strict FIFO, run to completion, aborts
//!   take effect only when the running task finishes;
//! * [`Policy::Cooperative`] — time-sliced with a quantum; interactive
//!   tasks preempt background work at quantum boundaries, and aborts land
//!   within one quantum.
//!
//! The output is an [`ExecReport`] with interactive-response and
//! abort-latency distributions, plus the count of "frustration events"
//! (responses that outlast the user's patience) which feeds the LPC
//! resource-layer analysis.

use aroma_sim::stats::Summary;
use aroma_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// What a task is for, from the user's point of view.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TaskKind {
    /// User-visible: a tap, a lookup, opening a schedule entry.
    Interactive,
    /// Long-running: a sync, an indexing pass, a download.
    Background,
}

/// One task in the workload.
#[derive(Clone, Copy, Debug)]
pub struct TaskSpec {
    /// When it is submitted.
    pub arrival: SimTime,
    /// CPU work it needs.
    pub work: SimDuration,
    /// Interactive or background.
    pub kind: TaskKind,
}

/// A user's attempt to abort whatever background work is hogging the device.
#[derive(Clone, Copy, Debug)]
pub struct AbortRequest {
    /// When the user hits "cancel".
    pub at: SimTime,
}

/// A workload: tasks plus abort attempts.
#[derive(Clone, Debug, Default)]
pub struct Workload {
    /// Tasks, in any order.
    pub tasks: Vec<TaskSpec>,
    /// Abort attempts, in any order.
    pub aborts: Vec<AbortRequest>,
}

impl Workload {
    /// Convenience: one long background task at t=0, interactive taps every
    /// `tap_every`, and one abort at `abort_at`.
    pub fn background_plus_taps(
        background: SimDuration,
        tap_every: SimDuration,
        taps: usize,
        tap_work: SimDuration,
        abort_at: SimTime,
    ) -> Workload {
        let mut tasks = vec![TaskSpec {
            arrival: SimTime::ZERO,
            work: background,
            kind: TaskKind::Background,
        }];
        for i in 0..taps {
            tasks.push(TaskSpec {
                arrival: SimTime::ZERO + tap_every * (i as u64 + 1),
                work: tap_work,
                kind: TaskKind::Interactive,
            });
        }
        Workload {
            tasks,
            aborts: vec![AbortRequest { at: abort_at }],
        }
    }
}

/// Scheduling policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Policy {
    /// FIFO, run to completion, aborts deferred to task end.
    SingleThreaded,
    /// Round-robin quanta; interactive queue served first; aborts land at
    /// the next quantum boundary.
    Cooperative {
        /// Time slice.
        quantum: SimDuration,
    },
}

/// Results of executing a workload under a policy.
#[derive(Clone, Debug, Default)]
pub struct ExecReport {
    /// Interactive response times (submit → complete), seconds.
    pub interactive_latency: Summary,
    /// Abort latencies (request → background task actually stopped), s.
    pub abort_latency: Summary,
    /// Tasks completed (aborted background tasks count as stopped, not
    /// completed).
    pub completed: usize,
    /// Background tasks aborted.
    pub aborted: usize,
    /// When the executor went idle.
    pub makespan: SimTime,
}

/// Execute `workload` under `policy`; `patience` defines a frustration
/// event (an interactive response slower than the user tolerates).
/// Returns the report and the frustration-event count.
pub fn run(policy: Policy, workload: &Workload, patience: SimDuration) -> (ExecReport, usize) {
    let mut tasks: Vec<(usize, TaskSpec)> = workload.tasks.iter().copied().enumerate().collect();
    tasks.sort_by_key(|(i, t)| (t.arrival, *i));
    let mut aborts: VecDeque<SimTime> = {
        let mut a: Vec<SimTime> = workload.aborts.iter().map(|r| r.at).collect();
        a.sort();
        a.into()
    };

    #[derive(Debug)]
    struct Live {
        spec: TaskSpec,
        remaining: SimDuration,
    }

    let mut report = ExecReport::default();
    let mut frustrations = 0usize;
    let mut now = SimTime::ZERO;
    let mut arrivals: VecDeque<(usize, TaskSpec)> = tasks.into();
    let mut fg: VecDeque<Live> = VecDeque::new(); // interactive queue
    let mut bg: VecDeque<Live> = VecDeque::new(); // background queue

    let admit = |now: SimTime,
                 arrivals: &mut VecDeque<(usize, TaskSpec)>,
                 fg: &mut VecDeque<Live>,
                 bg: &mut VecDeque<Live>| {
        while let Some((_, spec)) = arrivals.front() {
            if spec.arrival <= now {
                let (_, spec) = arrivals.pop_front().unwrap();
                let live = Live {
                    spec,
                    remaining: spec.work,
                };
                match spec.kind {
                    TaskKind::Interactive => fg.push_back(live),
                    TaskKind::Background => bg.push_back(live),
                }
            } else {
                break;
            }
        }
    };

    // Drain aborts that became due; under SingleThreaded they only take
    // effect between tasks (the running task cannot be interrupted), under
    // Cooperative at quantum boundaries — both of which are exactly the
    // moments this loop runs. An abort kills the frontmost background task.
    let mut pending_abort: Option<SimTime> = None;

    loop {
        admit(now, &mut arrivals, &mut fg, &mut bg);
        while pending_abort.is_none() {
            match aborts.front() {
                Some(&at) if at <= now => {
                    aborts.pop_front();
                    pending_abort = Some(at);
                }
                _ => break,
            }
        }
        if let Some(requested_at) = pending_abort {
            if let Some(victim) = bg.pop_front() {
                report.aborted += 1;
                report
                    .abort_latency
                    .record(now.saturating_since(requested_at).as_secs_f64());
                pending_abort = None;
                let _ = victim;
            }
            // No background task yet: the abort waits for one (or is simply
            // stale user input; keep it pending).
        }

        // Pick what to run: interactive first (Cooperative), or strict FIFO
        // across both queues (SingleThreaded approximates one queue by
        // preferring whichever task arrived first).
        let next_is_fg = match policy {
            Policy::Cooperative { .. } => !fg.is_empty(),
            Policy::SingleThreaded => match (fg.front(), bg.front()) {
                (Some(f), Some(b)) => f.spec.arrival <= b.spec.arrival,
                (Some(_), None) => true,
                _ => false,
            },
        };
        let queue_empty = fg.is_empty() && bg.is_empty();
        if queue_empty {
            match arrivals.front() {
                Some((_, spec)) => {
                    now = spec.arrival;
                    continue;
                }
                None => break,
            }
        }

        let mut task = if next_is_fg {
            fg.pop_front().unwrap()
        } else {
            bg.pop_front().unwrap()
        };

        let slice = match policy {
            Policy::SingleThreaded => task.remaining,
            Policy::Cooperative { quantum } => task.remaining.min(quantum),
        };
        now += slice;
        task.remaining = task.remaining.saturating_sub(slice);

        if task.remaining.is_zero() {
            report.completed += 1;
            if task.spec.kind == TaskKind::Interactive {
                let latency = now.saturating_since(task.spec.arrival);
                report.interactive_latency.record(latency.as_secs_f64());
                if latency > patience {
                    frustrations += 1;
                }
            }
        } else {
            // Unfinished: requeue at the back of its class.
            match task.spec.kind {
                TaskKind::Interactive => fg.push_back(task),
                TaskKind::Background => bg.push_back(task),
            }
        }
    }

    report.makespan = now;
    (report, frustrations)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> SimDuration {
        SimDuration::from_secs(s)
    }
    fn at(s: u64) -> SimTime {
        SimTime::ZERO + secs(s)
    }

    #[test]
    fn single_task_completes_with_its_work() {
        let w = Workload {
            tasks: vec![TaskSpec {
                arrival: SimTime::ZERO,
                work: secs(3),
                kind: TaskKind::Interactive,
            }],
            aborts: vec![],
        };
        let (r, f) = run(Policy::SingleThreaded, &w, secs(10));
        assert_eq!(r.completed, 1);
        assert_eq!(f, 0);
        assert!((r.interactive_latency.mean() - 3.0).abs() < 1e-9);
        assert_eq!(r.makespan, at(3));
    }

    #[test]
    fn single_threaded_blocks_interaction_behind_background() {
        // 60 s background at t=0; tap at t=1 needing 100 ms.
        let w = Workload {
            tasks: vec![
                TaskSpec {
                    arrival: SimTime::ZERO,
                    work: secs(60),
                    kind: TaskKind::Background,
                },
                TaskSpec {
                    arrival: at(1),
                    work: SimDuration::from_millis(100),
                    kind: TaskKind::Interactive,
                },
            ],
            aborts: vec![],
        };
        let (r, f) = run(Policy::SingleThreaded, &w, secs(2));
        // Tap waits until 60 s, completes at 60.1: latency 59.1 s.
        assert!((r.interactive_latency.mean() - 59.1).abs() < 1e-6);
        assert_eq!(f, 1, "that response is a frustration event");
    }

    #[test]
    fn cooperative_keeps_interaction_snappy() {
        let w = Workload {
            tasks: vec![
                TaskSpec {
                    arrival: SimTime::ZERO,
                    work: secs(60),
                    kind: TaskKind::Background,
                },
                TaskSpec {
                    arrival: at(1),
                    work: SimDuration::from_millis(100),
                    kind: TaskKind::Interactive,
                },
            ],
            aborts: vec![],
        };
        let (r, f) = run(
            Policy::Cooperative {
                quantum: SimDuration::from_millis(50),
            },
            &w,
            secs(2),
        );
        // Latency ≤ one quantum of residual background + own work + queueing.
        assert!(
            r.interactive_latency.mean() < 0.3,
            "mean {}",
            r.interactive_latency.mean()
        );
        assert_eq!(f, 0);
        // The background task still finishes.
        assert_eq!(r.completed, 2);
    }

    #[test]
    fn single_threaded_abort_waits_for_completion() {
        let w = Workload {
            tasks: vec![TaskSpec {
                arrival: SimTime::ZERO,
                work: secs(30),
                kind: TaskKind::Background,
            }],
            aborts: vec![AbortRequest { at: at(1) }],
        };
        let (r, _) = run(Policy::SingleThreaded, &w, secs(2));
        // The task runs to completion (30 s); only then can the (now
        // pointless) abort land — the paper's unabortable system.
        assert_eq!(r.completed, 1);
        assert_eq!(r.aborted, 0, "nothing left to abort after completion");
    }

    #[test]
    fn single_threaded_abort_kills_queued_background_late() {
        // Two background tasks; the abort at t=1 can only take effect when
        // the first completes (t=30), killing the queued second task.
        let w = Workload {
            tasks: vec![
                TaskSpec {
                    arrival: SimTime::ZERO,
                    work: secs(30),
                    kind: TaskKind::Background,
                },
                TaskSpec {
                    arrival: at(0),
                    work: secs(30),
                    kind: TaskKind::Background,
                },
            ],
            aborts: vec![AbortRequest { at: at(1) }],
        };
        let (r, _) = run(Policy::SingleThreaded, &w, secs(2));
        assert_eq!(r.aborted, 1);
        assert_eq!(r.completed, 1);
        // Abort latency ≈ 29 s: request at 1, effect at 30.
        assert!((r.abort_latency.mean() - 29.0).abs() < 1e-6);
    }

    #[test]
    fn cooperative_abort_lands_within_a_quantum() {
        let q = SimDuration::from_millis(50);
        let w = Workload {
            tasks: vec![TaskSpec {
                arrival: SimTime::ZERO,
                work: secs(30),
                kind: TaskKind::Background,
            }],
            aborts: vec![AbortRequest { at: at(1) }],
        };
        let (r, _) = run(Policy::Cooperative { quantum: q }, &w, secs(2));
        assert_eq!(r.aborted, 1);
        assert_eq!(r.completed, 0);
        assert!(
            r.abort_latency.mean() <= q.as_secs_f64() + 1e-9,
            "abort took {}",
            r.abort_latency.mean()
        );
        // Makespan ends shortly after the abort, not at 30 s.
        assert!(r.makespan < at(2));
    }

    #[test]
    fn fifo_order_without_contention_is_identical_across_policies() {
        let w = Workload {
            tasks: (0..5)
                .map(|i| TaskSpec {
                    arrival: at(i * 10),
                    work: secs(1),
                    kind: TaskKind::Interactive,
                })
                .collect(),
            aborts: vec![],
        };
        let (st, _) = run(Policy::SingleThreaded, &w, secs(5));
        let (coop, _) = run(
            Policy::Cooperative {
                quantum: SimDuration::from_millis(50),
            },
            &w,
            secs(5),
        );
        assert_eq!(st.completed, 5);
        assert_eq!(coop.completed, 5);
        assert!((st.interactive_latency.mean() - coop.interactive_latency.mean()).abs() < 1e-9);
    }

    #[test]
    fn workload_builder_shapes_the_scenario() {
        let w = Workload::background_plus_taps(
            secs(60),
            secs(5),
            4,
            SimDuration::from_millis(100),
            at(7),
        );
        assert_eq!(w.tasks.len(), 5);
        assert_eq!(w.aborts.len(), 1);
        assert_eq!(
            w.tasks
                .iter()
                .filter(|t| t.kind == TaskKind::Interactive)
                .count(),
            4
        );
    }

    #[test]
    fn idle_gaps_are_skipped() {
        let w = Workload {
            tasks: vec![
                TaskSpec {
                    arrival: SimTime::ZERO,
                    work: secs(1),
                    kind: TaskKind::Interactive,
                },
                TaskSpec {
                    arrival: at(100),
                    work: secs(1),
                    kind: TaskKind::Interactive,
                },
            ],
            aborts: vec![],
        };
        let (r, _) = run(Policy::SingleThreaded, &w, secs(10));
        assert_eq!(r.completed, 2);
        assert_eq!(r.makespan, at(101));
        assert!((r.interactive_latency.mean() - 1.0).abs() < 1e-9);
    }
}
