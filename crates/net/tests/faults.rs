//! Behavioural and property tests for the deterministic fault-injection
//! plane: non-perturbation with an empty schedule (the guarantee every
//! faults-off experiment relies on), crash/restart semantics, partitions,
//! burst loss, clock skew, process kills, and crash-storm robustness.

use aroma_env::radio::RadioEnvironment;
use aroma_env::space::Point;
use aroma_net::{Address, MacConfig, NetApp, NetCtx, Network, NodeConfig, NodeId};
use aroma_sim::faults::{random_storm, FaultOp, FaultSchedule, StormConfig, TimedScheduleExt};
use aroma_sim::telemetry::TelemetryConfig;
use aroma_sim::{SimDuration, SimRng, SimTime};
use bytes::Bytes;
use proptest::prelude::*;

fn quiet() -> RadioEnvironment {
    RadioEnvironment {
        shadowing_sigma_db: 0.0,
        ..Default::default()
    }
}

fn secs(s: u64) -> SimTime {
    SimTime::from_nanos(s * 1_000_000_000)
}

/// Sends a small frame to `dst` every 50 ms; counts lifecycle callbacks.
struct Chatter {
    dst: NodeId,
    sent: u64,
    completed: u64,
    failed: u64,
    crashes: u64,
    restarts: u64,
    timer_fires: u64,
}

impl Chatter {
    fn to(dst: NodeId) -> Self {
        Chatter {
            dst,
            sent: 0,
            completed: 0,
            failed: 0,
            crashes: 0,
            restarts: 0,
            timer_fires: 0,
        }
    }
}

impl NetApp for Chatter {
    fn on_start(&mut self, ctx: &mut NetCtx<'_>) {
        ctx.set_timer(SimDuration::from_millis(50), 1);
    }
    fn on_timer(&mut self, ctx: &mut NetCtx<'_>, _token: u64) {
        self.timer_fires += 1;
        if ctx.send(Address::Node(self.dst), Bytes::from_static(b"tick")) {
            self.sent += 1;
        }
        ctx.set_timer(SimDuration::from_millis(50), 1);
    }
    fn on_sent(&mut self, _ctx: &mut NetCtx<'_>, _to: Address) {
        self.completed += 1;
    }
    fn on_send_failed(&mut self, _ctx: &mut NetCtx<'_>, _to: NodeId, _p: &Bytes) {
        self.failed += 1;
    }
    fn on_crash(&mut self, _ctx: &mut NetCtx<'_>) {
        self.crashes += 1;
    }
    fn on_restart(&mut self, ctx: &mut NetCtx<'_>) {
        self.restarts += 1;
        self.on_start(ctx);
    }
}

/// Counts deliveries, with receive timestamps.
#[derive(Default)]
struct Sink {
    got: Vec<SimTime>,
    crashes: u64,
    restarts: u64,
}

impl NetApp for Sink {
    fn on_packet(&mut self, ctx: &mut NetCtx<'_>, _from: NodeId, _payload: &Bytes) {
        self.got.push(ctx.now());
    }
    fn on_crash(&mut self, _ctx: &mut NetCtx<'_>) {
        self.crashes += 1;
    }
    fn on_restart(&mut self, _ctx: &mut NetCtx<'_>) {
        self.restarts += 1;
    }
}

fn chatter_world(seed: u64, schedule: Option<&FaultSchedule>) -> (Network, NodeId, NodeId) {
    let mut net = Network::new(quiet(), MacConfig::default(), seed);
    if let Some(s) = schedule {
        net.attach_faults(s);
    }
    let rx = net.add_node(NodeConfig::at(Point::new(4.0, 0.0)), Box::new(Sink::default()));
    let tx = net.add_node(
        NodeConfig::at(Point::new(0.0, 0.0)),
        Box::new(Chatter::to(rx)),
    );
    (net, tx, rx)
}

#[test]
fn crash_restart_interrupts_then_resumes_traffic() {
    let schedule = FaultSchedule::builder(7)
        .crash_restart_at(secs(2), secs(3), 1) // the sender, node index 1
        .build();
    let (mut net, tx, rx) = chatter_world(11, Some(&schedule));
    net.run_until(secs(5));

    let c = net.app_as::<Chatter>(tx).unwrap();
    assert_eq!(c.crashes, 1);
    assert_eq!(c.restarts, 1);
    let sink = net.app_as::<Sink>(rx).unwrap();
    // Nothing arrives inside the outage; traffic resumes after restart.
    assert!(!sink.got.iter().any(|&t| t > secs(2) && t < secs(3)));
    assert!(sink.got.iter().any(|&t| t < secs(2)));
    assert!(sink.got.iter().any(|&t| t > secs(3)));
    let fs = net.fault_stats().unwrap();
    assert_eq!(fs.node_crashes, 1);
    assert_eq!(fs.node_restarts, 1);
    assert!(fs.timers_suppressed >= 1, "the pre-crash tick timer must die");
}

#[test]
fn power_cycle_keeps_app_state() {
    // drop_state=false: timers die but the app is not told to wipe state.
    let schedule = FaultSchedule::builder(7)
        .power_cycle_at(secs(2), secs(3), 1)
        .build();
    let (mut net, tx, _) = chatter_world(11, Some(&schedule));
    net.run_until(secs(5));
    let c = net.app_as::<Chatter>(tx).unwrap();
    assert_eq!(c.crashes, 0);
    assert_eq!(c.restarts, 1);
}

#[test]
fn receiver_crash_loses_frames_in_window() {
    let schedule = FaultSchedule::builder(7)
        .crash_restart_at(secs(2), secs(3), 0) // the receiver, node index 0
        .build();
    let (mut net, _, rx) = chatter_world(11, Some(&schedule));
    net.run_until(secs(5));
    let sink = net.app_as::<Sink>(rx).unwrap();
    assert!(!sink.got.iter().any(|&t| t > secs(2) && t < secs(3)));
    assert_eq!(sink.crashes, 1);
    assert!(net.fault_stats().unwrap().frames_lost_down > 0);
}

#[test]
fn partition_blocks_both_directions_then_heals() {
    let schedule = FaultSchedule::builder(7)
        .partition_at(secs(1), secs(3), 0b01, 0b10)
        .build();
    let (mut net, tx, rx) = chatter_world(11, Some(&schedule));
    net.run_until(secs(5));
    let sink = net.app_as::<Sink>(rx).unwrap();
    assert!(!sink.got.iter().any(|&t| t > secs(1) && t < secs(3)));
    assert!(sink.got.iter().any(|&t| t > secs(3)));
    let fs = net.fault_stats().unwrap();
    assert!(fs.frames_blocked_partition > 0);
    // The sender burned retries into the partition.
    let c = net.app_as::<Chatter>(tx).unwrap();
    assert!(c.failed > 0, "partitioned unicasts must exhaust retries");
}

#[test]
fn total_burst_loss_blocks_delivery() {
    let schedule = FaultSchedule::builder(7)
        .burst_loss_at(secs(1), secs(3), 1.0)
        .build();
    let (mut net, _, rx) = chatter_world(11, Some(&schedule));
    net.run_until(secs(5));
    let sink = net.app_as::<Sink>(rx).unwrap();
    assert!(!sink.got.iter().any(|&t| t > secs(1) && t < secs(3)));
    assert!(sink.got.iter().any(|&t| t > secs(3)), "burst must end");
    assert!(net.fault_stats().unwrap().frames_lost_burst > 0);
}

#[test]
fn clock_skew_stretches_timer_cadence() {
    // Slow the sender's clock 4x over [0, 4): its 50 ms tick becomes 200 ms.
    let schedule = FaultSchedule::builder(7)
        .clock_skew_at(SimTime::ZERO, 1, 4.0)
        .clock_skew_at(secs(4), 1, 1.0)
        .build();
    let (mut net, tx, _) = chatter_world(11, Some(&schedule));
    net.run_until(secs(4));
    let slowed = net.app_as::<Chatter>(tx).unwrap().timer_fires;
    // ~4 s / 200 ms = 20 fires (vs ~80 unskewed).
    assert!(slowed <= 22, "skew 4.0 must slow the cadence, saw {slowed} fires");
    net.run_until(secs(8));
    let total = net.app_as::<Chatter>(tx).unwrap().timer_fires;
    assert!(total - slowed >= 70, "cadence must recover after the skew clears");
}

#[test]
fn process_kill_reaches_app_but_radio_stays_up() {
    let schedule = FaultSchedule::builder(7)
        .process_kill_restart_at(secs(2), secs(3), 0) // receiver's app process
        .build();
    let (mut net, _, rx) = chatter_world(11, Some(&schedule));
    net.run_until(secs(5));
    let sink = net.app_as::<Sink>(rx).unwrap();
    assert_eq!(sink.crashes, 1);
    assert_eq!(sink.restarts, 1);
    // The NIC keeps receiving during the kill window: frames still reach
    // the (freshly notified) app because delivery is app-level here.
    assert!(
        sink.got.iter().any(|&t| t > secs(2) && t < secs(3)),
        "a process kill must not silence the radio"
    );
    assert_eq!(net.fault_stats().unwrap().process_kills, 1);
}

#[test]
fn crash_mid_transmission_is_safe() {
    // Crash the sender at many offsets inside its first transmission's
    // airtime; none may panic or corrupt the MAC.
    for off_us in [300, 350, 400, 450, 500, 550, 600, 700, 900] {
        let schedule = FaultSchedule::builder(7)
            .crash_restart(off_us * 1_000, secs(1).as_nanos(), 1)
            .build();
        let (mut net, _, _) = chatter_world(11, Some(&schedule));
        net.run_until(secs(3));
        assert_eq!(net.fault_stats().unwrap().node_crashes, 1);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Satellite guarantee: attaching an *empty* fault schedule is
    /// observationally identical to not attaching the fault plane at all —
    /// same deliveries, same traffic counters, and a byte-identical
    /// telemetry snapshot (wall-clock profile excluded). Mirrors the
    /// telemetry non-perturbation proptest in `properties.rs`.
    #[test]
    fn empty_schedule_is_non_perturbing(
        n_nodes in 2usize..5,
        seed in any::<u64>(),
        fault_seed in any::<u64>(),
    ) {
        let run = |attach: bool| {
            let mut net = Network::new(quiet(), MacConfig::default(), seed);
            net.attach_telemetry(TelemetryConfig::default());
            if attach {
                net.attach_faults(&FaultSchedule::empty(fault_seed));
            }
            let rx = net.add_node(
                NodeConfig::at(Point::new(4.0, 0.0)),
                Box::new(Sink::default()),
            );
            for i in 1..n_nodes {
                net.add_node(
                    NodeConfig::at(Point::new(0.0, i as f64)),
                    Box::new(Chatter::to(rx)),
                );
            }
            net.run_until(secs(3));
            let got = net.app_as::<Sink>(rx).unwrap().got.clone();
            let attempts = net.stats().total_tx_attempts();
            let timeouts = net.stats().total_ack_timeouts();
            (got, attempts, timeouts, net.telemetry_snapshot().unwrap())
        };
        let (g0, a0, t0, s0) = run(false);
        let (g1, a1, t1, s1) = run(true);
        prop_assert_eq!(g0, g1);
        prop_assert_eq!(a0, a1);
        prop_assert_eq!(t0, t1);
        prop_assert!(s0.deterministic_eq(&s1));
    }

    /// Same seed + same schedule ⇒ identical outcome; and random storms
    /// (arbitrary crash/partition/burst/skew/kill overlaps, including
    /// mid-air crashes) never panic or break conservation.
    #[test]
    fn random_storms_are_deterministic_and_safe(
        seed in any::<u64>(),
        storm_seed in any::<u64>(),
    ) {
        let run = || {
            let mut rng = SimRng::new(storm_seed);
            let storm = random_storm(&mut rng, secs(4), 3, &StormConfig::default());
            let mut net = Network::new(quiet(), MacConfig::default(), seed);
            net.attach_faults(&storm);
            let rx = net.add_node(
                NodeConfig::at(Point::new(4.0, 0.0)),
                Box::new(Sink::default()),
            );
            net.add_node(NodeConfig::at(Point::new(0.0, 0.0)), Box::new(Chatter::to(rx)));
            net.add_node(NodeConfig::at(Point::new(0.0, 2.0)), Box::new(Chatter::to(rx)));
            net.run_until(secs(5));
            let delivered = net.app_as::<Sink>(rx).unwrap().got.len();
            let injected = net.fault_stats().unwrap().injected;
            (delivered, injected, net.stats().total_tx_attempts())
        };
        let (d1, i1, a1) = run();
        let (d2, i2, a2) = run();
        prop_assert_eq!(d1, d2);
        prop_assert_eq!(i1, i2);
        prop_assert_eq!(a1, a2);
        prop_assert!(d1 as u64 <= a1, "deliveries cannot exceed attempts");
    }

    /// A late `NodeUp`/`PartitionEnd`-less schedule (fault never healed)
    /// still terminates cleanly: no stuck events, no panics.
    #[test]
    fn unhealed_faults_terminate(seed in any::<u64>(), node in 0u32..2) {
        let schedule = FaultSchedule::builder(seed)
            .op_at(secs(1), FaultOp::NodeDown { node, drop_state: true })
            .op_at(secs(1), FaultOp::BurstStart { loss: 0.9 })
            .build();
        let (mut net, _, _) = chatter_world(seed, Some(&schedule));
        net.run_until(secs(4));
        prop_assert_eq!(net.fault_stats().unwrap().node_crashes, 1);
    }
}
