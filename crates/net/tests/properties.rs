//! Property-based tests for the WLAN simulator: end-to-end payload
//! integrity and conservation laws over random small topologies.

use aroma_env::radio::{Channel, RadioEnvironment};
use aroma_env::space::Point;
use aroma_net::{Address, MacConfig, NetApp, NetCtx, Network, NodeConfig, NodeId};
use aroma_sim::SimDuration;
use bytes::Bytes;
use proptest::prelude::*;

#[derive(Default)]
struct Recorder {
    received: Vec<(NodeId, Vec<u8>)>,
}
impl NetApp for Recorder {
    fn on_packet(&mut self, _ctx: &mut NetCtx<'_>, from: NodeId, payload: &Bytes) {
        self.received.push((from, payload.to_vec()));
    }
}

struct ScriptedSender {
    dst: NodeId,
    payloads: Vec<Vec<u8>>,
    accepted: usize,
    completed: usize,
    failed: usize,
}
impl NetApp for ScriptedSender {
    fn on_start(&mut self, ctx: &mut NetCtx<'_>) {
        for p in &self.payloads {
            if ctx.send(Address::Node(self.dst), Bytes::from(p.clone())) {
                self.accepted += 1;
            }
        }
    }
    fn on_sent(&mut self, _ctx: &mut NetCtx<'_>, _to: Address) {
        self.completed += 1;
    }
    fn on_send_failed(&mut self, _ctx: &mut NetCtx<'_>, _to: NodeId, _p: &Bytes) {
        self.failed += 1;
    }
}

fn quiet() -> RadioEnvironment {
    RadioEnvironment {
        shadowing_sigma_db: 0.0,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Payload integrity and ordering: everything delivered arrived intact,
    /// in send order, and delivered + failed = accepted after quiescence.
    #[test]
    fn delivery_integrity(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..200), 1..12),
        distance in 1.0f64..30.0,
        seed in any::<u64>(),
    ) {
        let mut net = Network::new(quiet(), MacConfig::default(), seed);
        let rx = net.add_node(
            NodeConfig::at(Point::new(distance, 0.0)),
            Box::new(Recorder::default()),
        );
        let tx = net.add_node(
            NodeConfig::at(Point::new(0.0, 0.0)),
            Box::new(ScriptedSender {
                dst: rx,
                payloads: payloads.clone(),
                accepted: 0,
                completed: 0,
                failed: 0,
            }),
        );
        net.run_for(SimDuration::from_secs(5));
        let recv = net.app_as::<Recorder>(rx).unwrap();
        let send = net.app_as::<ScriptedSender>(tx).unwrap();

        // Conservation.
        prop_assert_eq!(send.completed + send.failed, send.accepted);
        // At close range everything gets through.
        prop_assert_eq!(send.failed, 0, "clean {}m link dropped frames", distance);
        prop_assert_eq!(recv.received.len(), payloads.len());
        // Integrity + FIFO order (single MAC queue).
        for (got, sent) in recv.received.iter().zip(&payloads) {
            prop_assert_eq!(&got.1, sent);
            prop_assert_eq!(got.0, tx);
        }
    }

    /// Attaching the telemetry recorder neither perturbs the simulation
    /// nor breaks determinism: the same seed gives the same deliveries as
    /// the recorder-off run and byte-identical traces and metrics across
    /// repeats (wall-clock profile excluded).
    #[test]
    fn traced_runs_are_seed_stable(
        n_payloads in 1usize..10,
        distance in 1.0f64..25.0,
        seed in any::<u64>(),
    ) {
        use aroma_sim::telemetry::TelemetryConfig;
        let run = |attach: bool| {
            let mut net = Network::new(quiet(), MacConfig::default(), seed);
            if attach {
                net.attach_telemetry(TelemetryConfig::default());
            }
            let rx = net.add_node(
                NodeConfig::at(Point::new(distance, 0.0)),
                Box::new(Recorder::default()),
            );
            net.add_node(
                NodeConfig::at(Point::new(0.0, 0.0)),
                Box::new(ScriptedSender {
                    dst: rx,
                    payloads: vec![vec![0xA5u8; 64]; n_payloads],
                    accepted: 0,
                    completed: 0,
                    failed: 0,
                }),
            );
            net.run_for(SimDuration::from_secs(3));
            let delivered = net.app_as::<Recorder>(rx).unwrap().received.len();
            (delivered, net.telemetry_snapshot())
        };
        let (d0, off) = run(false);
        let (d1, s1) = run(true);
        let (d2, s2) = run(true);
        prop_assert!(off.is_none());
        prop_assert_eq!(d0, d1);
        prop_assert_eq!(d1, d2);
        let (s1, s2) = (s1.unwrap(), s2.unwrap());
        prop_assert!(s1.deterministic_eq(&s2));
        prop_assert_eq!(s1.counter("net.rx.delivered"), d1 as u64);
    }

    /// Broadcast reaches every in-range node exactly once; no duplicates
    /// are ever delivered.
    #[test]
    fn broadcast_exactly_once(n_receivers in 1usize..6, seed in any::<u64>()) {
        let mut net = Network::new(quiet(), MacConfig::default(), seed);
        let mut rxs = Vec::new();
        for i in 0..n_receivers {
            rxs.push(net.add_node(
                NodeConfig::at(Point::new(2.0 + i as f64, 1.0)),
                Box::new(Recorder::default()),
            ));
        }
        struct OneBroadcast;
        impl NetApp for OneBroadcast {
            fn on_start(&mut self, ctx: &mut NetCtx<'_>) {
                ctx.send(Address::Broadcast, Bytes::from_static(b"hello"));
            }
        }
        net.add_node(NodeConfig::at(Point::new(0.0, 0.0)), Box::new(OneBroadcast));
        net.run_for(SimDuration::from_secs(1));
        for rx in rxs {
            let r = net.app_as::<Recorder>(rx).unwrap();
            prop_assert_eq!(r.received.len(), 1, "node {} got {} copies", rx, r.received.len());
        }
    }

    /// Channel isolation: traffic on channel 1 is never delivered to a node
    /// listening on channel 11.
    #[test]
    fn orthogonal_channels_isolate(seed in any::<u64>(), dist in 1.0f64..20.0) {
        let mut net = Network::new(quiet(), MacConfig::default(), seed);
        let rx = net.add_node(
            NodeConfig::at_on(Point::new(dist, 0.0), Channel::CH11),
            Box::new(Recorder::default()),
        );
        struct Shouter;
        impl NetApp for Shouter {
            fn on_start(&mut self, ctx: &mut NetCtx<'_>) {
                for _ in 0..5 {
                    ctx.send(Address::Broadcast, Bytes::from_static(b"ch1"));
                }
            }
        }
        net.add_node(
            NodeConfig::at_on(Point::new(0.0, 0.0), Channel::CH1),
            Box::new(Shouter),
        );
        net.run_for(SimDuration::from_secs(1));
        prop_assert_eq!(net.app_as::<Recorder>(rx).unwrap().received.len(), 0);
    }
}

/// The `Instant::now` in `Network::dispatch` is waived with
/// `lint:allow(sim-wall-clock)` on the claim that its nanos feed ONLY the
/// snapshot's handler profile, which `deterministic_eq` excludes. Pin that
/// claim: two traced runs of the same seed record real (and almost surely
/// different) wall-clock handler timings, yet must compare
/// `deterministic_eq` — and the profile must actually be populated, so the
/// waived site is known to be on the profile-only path this test pins.
#[test]
fn traced_profile_never_reaches_deterministic_sections() {
    use aroma_sim::telemetry::TelemetryConfig;
    let run = || {
        let mut net = Network::new(quiet(), MacConfig::default(), 42);
        net.attach_telemetry(TelemetryConfig::default());
        let rx = net.add_node(
            NodeConfig::at(Point::new(5.0, 0.0)),
            Box::new(Recorder::default()),
        );
        net.add_node(
            NodeConfig::at(Point::new(0.0, 0.0)),
            Box::new(ScriptedSender {
                dst: rx,
                payloads: vec![vec![0x5Au8; 64]; 8],
                accepted: 0,
                completed: 0,
                failed: 0,
            }),
        );
        net.run_for(SimDuration::from_secs(2));
        net.telemetry_snapshot().expect("telemetry attached")
    };
    let (a, b) = (run(), run());
    assert!(
        !a.profile.is_empty() && a.profile.iter().any(|p| p.calls > 0),
        "dispatch profiling recorded nothing — the waiver's premise is gone"
    );
    assert!(
        a.deterministic_eq(&b),
        "wall-clock profiling leaked into a deterministic_eq-compared section"
    );
}
