//! Failure injection: hostile or degenerate radio conditions.

use aroma_env::radio::{Channel, RadioEnvironment};
use aroma_env::space::Point;
use aroma_net::traffic::{CountingSink, SaturatedSource};
use aroma_net::{Address, MacConfig, Network, NodeConfig};
use aroma_sim::SimDuration;

fn quiet() -> RadioEnvironment {
    RadioEnvironment {
        shadowing_sigma_db: 0.0,
        ..Default::default()
    }
}

/// Goodput of one pair with an optional co-channel jammer beside the
/// receiver. The jammer is CSMA-polite (it's still a legal device), so the
/// damage is contention *plus* collisions.
fn run(jam: bool, seed: u64) -> u64 {
    let mut net = Network::new(quiet(), MacConfig::default(), seed);
    let rx = net.add_node(
        NodeConfig::at(Point::new(0.0, 0.0)),
        Box::new(CountingSink::default()),
    );
    net.add_node(
        NodeConfig::at(Point::new(4.0, 0.0)),
        Box::new(SaturatedSource::new(Address::Node(rx), 1000)),
    );
    if jam {
        // Broadcast flooder right next to the victim receiver.
        net.add_node(
            NodeConfig::at(Point::new(0.5, 0.5)),
            Box::new(SaturatedSource::new(Address::Broadcast, 1400)),
        );
    }
    net.run_for(SimDuration::from_secs(2));
    net.app_as::<CountingSink>(rx).unwrap().bytes
}

#[test]
fn jammer_halves_goodput_or_worse() {
    let clean = run(false, 1);
    let jammed = run(true, 1);
    assert!(clean > 800_000, "baseline sanity: {clean}");
    assert!(
        jammed < clean * 2 / 3,
        "a saturating co-channel neighbour must hurt: {clean} -> {jammed}"
    );
}

#[test]
fn jam_on_an_orthogonal_channel_is_harmless() {
    let clean = run(false, 2);
    let mut net = Network::new(quiet(), MacConfig::default(), 2);
    let rx = net.add_node(
        NodeConfig::at(Point::new(0.0, 0.0)),
        Box::new(CountingSink::default()),
    );
    net.add_node(
        NodeConfig::at(Point::new(4.0, 0.0)),
        Box::new(SaturatedSource::new(Address::Node(rx), 1000)),
    );
    net.add_node(
        NodeConfig::at_on(Point::new(0.5, 0.5), Channel::CH11),
        Box::new(SaturatedSource::new(Address::Broadcast, 1400)),
    );
    net.run_for(SimDuration::from_secs(2));
    let with_orthogonal = net.app_as::<CountingSink>(rx).unwrap().bytes;
    // Within noise of the clean run (same seed, slightly different event
    // interleavings): allow 15%.
    assert!(
        with_orthogonal as f64 > clean as f64 * 0.85,
        "orthogonal jammer should be harmless: {clean} -> {with_orthogonal}"
    );
}

#[test]
fn ambient_noise_rise_shortens_links() {
    // Same geometry, quiet band vs +10 dB noise rise (a microwave oven).
    let run_with_noise = |rise: f64| -> u64 {
        let env = RadioEnvironment {
            shadowing_sigma_db: 0.0,
            ambient_noise_rise_db: rise,
            ..Default::default()
        };
        let mut net = Network::new(env, MacConfig::default(), 3);
        // 110 m: fine in a quiet band, marginal with a raised floor.
        let rx = net.add_node(
            NodeConfig::at(Point::new(110.0, 0.0)),
            Box::new(CountingSink::default()),
        );
        net.add_node(
            NodeConfig::at(Point::new(0.0, 0.0)),
            Box::new(SaturatedSource::new(Address::Node(rx), 1000)),
        );
        net.run_for(SimDuration::from_secs(2));
        net.app_as::<CountingSink>(rx).unwrap().bytes
    };
    let quiet_band = run_with_noise(0.0);
    let noisy_band = run_with_noise(10.0);
    assert!(
        noisy_band * 2 < quiet_band,
        "a 10 dB noise rise must cost dearly at range: {quiet_band} -> {noisy_band}"
    );
}
