//! Shape test for the paper's E2 concern: "there are many wireless devices
//! operating in the 2.4 GHz radio band, and the effect of a high
//! concentration of these devices needs to be studied."
//!
//! As co-channel device density grows, per-pair goodput must collapse and
//! contention indicators (ACK timeouts) must rise.

use aroma_env::radio::{Channel, RadioEnvironment};
use aroma_env::space::Point;
use aroma_net::traffic::{CountingSink, SaturatedSource};
use aroma_net::{Address, MacConfig, Network, NodeConfig};
use aroma_sim::SimDuration;

/// Build `pairs` saturated sender→receiver pairs around a circle, all
/// co-channel, run 1 s, return (aggregate goodput bps, per-pair goodput bps,
/// ack timeouts).
fn run_density(pairs: usize, seed: u64) -> (f64, f64, u64) {
    let env = RadioEnvironment {
        shadowing_sigma_db: 0.0,
        ..Default::default()
    };
    let mut net = Network::new(env, MacConfig::default(), seed);
    let mut sinks = Vec::new();
    for i in 0..pairs {
        let angle = i as f64 / pairs as f64 * std::f64::consts::TAU;
        let (s, c) = angle.sin_cos();
        // Receivers clustered near the centre, senders on a 5 m circle:
        // interferer paths are comparable to signal paths, so simultaneous
        // transmissions genuinely collide (no capture escape hatch).
        let rx = net.add_node(
            NodeConfig::at_on(Point::new(1.0 * c, 1.0 * s), Channel::CH6),
            Box::new(CountingSink::default()),
        );
        sinks.push(rx);
        net.add_node(
            NodeConfig::at_on(Point::new(5.0 * c, 5.0 * s), Channel::CH6),
            Box::new(SaturatedSource::new(Address::Node(rx), 1000)),
        );
    }
    let horizon = SimDuration::from_secs(1);
    net.run_for(horizon);
    let total: u64 = sinks
        .iter()
        .map(|&rx| net.app_as::<CountingSink>(rx).unwrap().bytes)
        .sum();
    let agg_bps = total as f64 * 8.0;
    (
        agg_bps,
        agg_bps / pairs as f64,
        net.stats().total_ack_timeouts(),
    )
}

#[test]
fn per_pair_goodput_collapses_with_density() {
    let (_, solo, timeouts_1) = run_density(1, 42);
    let (_, at8, timeouts_8) = run_density(8, 42);
    assert!(
        at8 < solo / 4.0,
        "8 co-channel pairs should see <1/4 of solo per-pair goodput: solo {solo}, at8 {at8}"
    );
    assert!(
        timeouts_8 > timeouts_1,
        "contention must produce more ACK timeouts ({timeouts_1} -> {timeouts_8})"
    );
}

#[test]
fn aggregate_goodput_saturates_not_scales() {
    let (agg1, _, _) = run_density(1, 7);
    let (agg8, _, _) = run_density(8, 7);
    // The channel is shared: 8 pairs cannot carry 8x the traffic of one.
    assert!(
        agg8 < agg1 * 3.0,
        "aggregate should saturate: 1 pair {agg1}, 8 pairs {agg8}"
    );
}

#[test]
fn orthogonal_channels_relieve_contention() {
    // Two pairs on the same channel vs on channels 1 and 11.
    let run = |ch_a: Channel, ch_b: Channel| -> f64 {
        let env = RadioEnvironment {
            shadowing_sigma_db: 0.0,
            ..Default::default()
        };
        let mut net = Network::new(env, MacConfig::default(), 11);
        let rx_a = net.add_node(
            NodeConfig::at_on(Point::new(0.0, 0.0), ch_a),
            Box::new(CountingSink::default()),
        );
        net.add_node(
            NodeConfig::at_on(Point::new(3.0, 0.0), ch_a),
            Box::new(SaturatedSource::new(Address::Node(rx_a), 1000)),
        );
        let rx_b = net.add_node(
            NodeConfig::at_on(Point::new(0.0, 4.0), ch_b),
            Box::new(CountingSink::default()),
        );
        net.add_node(
            NodeConfig::at_on(Point::new(3.0, 4.0), ch_b),
            Box::new(SaturatedSource::new(Address::Node(rx_b), 1000)),
        );
        net.run_for(SimDuration::from_secs(1));
        (net.app_as::<CountingSink>(rx_a).unwrap().bytes
            + net.app_as::<CountingSink>(rx_b).unwrap().bytes) as f64
            * 8.0
    };
    let cochannel = run(Channel::CH6, Channel::CH6);
    let orthogonal = run(Channel::CH1, Channel::CH11);
    assert!(
        orthogonal > cochannel * 1.5,
        "channel separation should raise aggregate goodput: co {cochannel}, orth {orthogonal}"
    );
}
