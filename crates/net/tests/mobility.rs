//! Mobility: ranging behaviour as a node walks away — the paper's
//! "ranging … constraints" of the wireless environment.

use aroma_env::radio::RadioEnvironment;
use aroma_env::space::Point;
use aroma_net::traffic::{CountingSink, SaturatedSource};
use aroma_net::{Address, MacConfig, MobilityPath, Network, NodeConfig};
use aroma_sim::{SimDuration, SimTime};

fn quiet() -> RadioEnvironment {
    RadioEnvironment {
        shadowing_sigma_db: 0.0,
        ..Default::default()
    }
}

#[test]
fn position_follows_the_path() {
    let mut net = Network::new(quiet(), MacConfig::default(), 1);
    let walker = net.add_node(
        NodeConfig::at(Point::new(0.0, 0.0)).moving(MobilityPath::line(
            Point::new(0.0, 0.0),
            Point::new(100.0, 0.0),
            SimTime::ZERO,
            SimDuration::from_secs(10),
        )),
        Box::new(CountingSink::default()),
    );
    net.run_for(SimDuration::from_secs(5));
    let x = net.position_of(walker).x;
    assert!((x - 50.0).abs() < 3.0, "halfway point expected, got {x}");
    net.run_for(SimDuration::from_secs(10));
    assert!((net.position_of(walker).x - 100.0).abs() < 1e-6);
}

#[test]
fn throughput_decays_as_the_receiver_walks_away() {
    // Sender fixed at the origin; receiver walks from 3 m to 600 m.
    let mut net = Network::new(quiet(), MacConfig::default(), 2);
    let rx = net.add_node(
        NodeConfig::at(Point::new(3.0, 0.0)).moving(MobilityPath::line(
            Point::new(3.0, 0.0),
            Point::new(600.0, 0.0),
            SimTime::ZERO,
            SimDuration::from_secs(12),
        )),
        Box::new(CountingSink::default()),
    );
    net.add_node(
        NodeConfig::at(Point::new(0.0, 0.0)),
        Box::new(SaturatedSource::new(Address::Node(rx), 1000)),
    );
    // Measure per-2-second windows.
    let mut window_bytes = Vec::new();
    let mut last = 0u64;
    for _ in 0..6 {
        net.run_for(SimDuration::from_secs(2));
        let total = net.app_as::<CountingSink>(rx).unwrap().bytes;
        window_bytes.push(total - last);
        last = total;
    }
    assert!(
        window_bytes[0] > 100_000,
        "close-range window should move real data: {window_bytes:?}"
    );
    let first = window_bytes[0] as f64;
    let lastw = *window_bytes.last().unwrap() as f64;
    assert!(
        lastw < first / 10.0,
        "out of range should collapse goodput: {window_bytes:?}"
    );
    // Monotone-ish decay: each window at most ~1.5x the previous
    // (allowing MAC noise), and the trend strictly down overall.
    for w in window_bytes.windows(2) {
        assert!(
            (w[1] as f64) < (w[0] as f64) * 1.5 + 20_000.0,
            "throughput should not grow while walking away: {window_bytes:?}"
        );
    }
}

#[test]
fn rate_adaptation_extends_range_over_fixed_fast_rate() {
    use aroma_net::{Rate, RateAdaptation};
    // At 160 m (n = 3.0), SNR ≈ 10 dB: below the 11 Mbps threshold but
    // comfortably above the 2 Mbps one — the adaptive radio steps down,
    // the fixed-fast radio goes deaf.
    let run = |adapt: RateAdaptation| -> u64 {
        let mut net = Network::new(quiet(), MacConfig::default(), 3);
        let rx = net.add_node(
            NodeConfig {
                adapt,
                ..NodeConfig::at(Point::new(160.0, 0.0))
            },
            Box::new(CountingSink::default()),
        );
        net.add_node(
            NodeConfig {
                adapt,
                ..NodeConfig::at(Point::new(0.0, 0.0))
            },
            Box::new(SaturatedSource::new(Address::Node(rx), 1000)),
        );
        net.run_for(SimDuration::from_secs(2));
        net.app_as::<CountingSink>(rx).unwrap().bytes
    };
    let adaptive = run(RateAdaptation::SnrBased);
    let fixed11 = run(RateAdaptation::Fixed(Rate::R11));
    assert!(
        adaptive > fixed11 * 2,
        "adaptive {adaptive} should beat fixed-11 {fixed11} at the cell edge"
    );
}
