//! Frames and addressing.

use bytes::Bytes;

/// Maximum payload per frame, bytes (Ethernet-class MTU; applications that
/// need more — the VNC substrate does — fragment above the MAC).
pub const MTU_BYTES: usize = 1500;

/// MAC header + FCS overhead added to every data frame, bytes.
pub const MAC_OVERHEAD_BYTES: usize = 28;

/// ACK frame size, bytes.
pub const ACK_BYTES: usize = 14;

/// Identifier of a node on the simulated network.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Stable 64-bit key (for shadowing draws and RNG forks).
    pub fn key(self) -> u64 {
        self.0 as u64
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Destination of a frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Address {
    /// A single node (acknowledged, retried).
    Node(NodeId),
    /// All nodes in radio range (unacknowledged, single attempt).
    Broadcast,
}

impl Address {
    /// Is this the broadcast address?
    pub fn is_broadcast(self) -> bool {
        matches!(self, Address::Broadcast)
    }
}

impl From<NodeId> for Address {
    fn from(n: NodeId) -> Address {
        Address::Node(n)
    }
}

/// Frame type on the air.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FrameKind {
    /// Application data.
    Data,
    /// MAC-level acknowledgement.
    Ack,
}

/// A frame as handed to the PHY.
#[derive(Clone, Debug)]
pub struct Frame {
    /// Transmitting node.
    pub src: NodeId,
    /// Destination address.
    pub dst: Address,
    /// Data or ACK.
    pub kind: FrameKind,
    /// MAC sequence number (per-source, wrapping; used for ACK matching and
    /// receiver-side duplicate detection).
    pub seq: u16,
    /// Application payload (empty for ACKs).
    pub payload: Bytes,
}

impl Frame {
    /// Total size on the air in bytes, including MAC overhead.
    pub fn wire_bytes(&self) -> usize {
        match self.kind {
            FrameKind::Data => self.payload.len() + MAC_OVERHEAD_BYTES,
            FrameKind::Ack => ACK_BYTES,
        }
    }

    /// Total size on the air in bits.
    pub fn wire_bits(&self) -> u64 {
        self.wire_bytes() as u64 * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data_frame(len: usize) -> Frame {
        Frame {
            src: NodeId(1),
            dst: Address::Node(NodeId(2)),
            kind: FrameKind::Data,
            seq: 0,
            payload: Bytes::from(vec![0u8; len]),
        }
    }

    #[test]
    fn wire_size_includes_mac_overhead() {
        assert_eq!(data_frame(100).wire_bytes(), 128);
        assert_eq!(data_frame(0).wire_bytes(), MAC_OVERHEAD_BYTES);
    }

    #[test]
    fn ack_is_fixed_size() {
        let ack = Frame {
            kind: FrameKind::Ack,
            ..data_frame(500)
        };
        assert_eq!(ack.wire_bytes(), ACK_BYTES);
    }

    #[test]
    fn broadcast_detection() {
        assert!(Address::Broadcast.is_broadcast());
        assert!(!Address::Node(NodeId(3)).is_broadcast());
        assert_eq!(Address::from(NodeId(3)), Address::Node(NodeId(3)));
    }

    #[test]
    fn node_display_and_key() {
        assert_eq!(NodeId(7).to_string(), "n7");
        assert_eq!(NodeId(7).key(), 7);
    }
}
