//! DSSS physical layer: rates, airtime, error model, rate selection.
//!
//! Models the 802.11b PHY the Aroma Adapter's PCMCIA card would have used:
//! four rates with long-preamble framing. Absolute error-rate values are a
//! smooth approximation (the experiments depend on the *shape*: monotone in
//! SINR, worse for longer frames, stepwise-better for lower rates), and the
//! numbers are chosen so sensitivities land near datasheet values
//! (−94…−85 dBm over a −101 dBm noise floor).

use aroma_sim::SimDuration;

/// PLCP long preamble + header airtime (always sent at 1 Mbit/s).
pub const PREAMBLE: SimDuration = SimDuration::from_micros(192);

/// Carrier-sense / energy-detect threshold at the antenna, dBm.
pub const CS_THRESHOLD_DBM: f64 = -82.0;

/// A DSSS transmit rate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Rate {
    /// 1 Mbit/s DBPSK.
    R1,
    /// 2 Mbit/s DQPSK.
    R2,
    /// 5.5 Mbit/s CCK.
    R5_5,
    /// 11 Mbit/s CCK.
    R11,
}

impl Rate {
    /// All rates, slowest first.
    pub const ALL: [Rate; 4] = [Rate::R1, Rate::R2, Rate::R5_5, Rate::R11];

    /// Bits per second.
    pub fn bps(self) -> u64 {
        match self {
            Rate::R1 => 1_000_000,
            Rate::R2 => 2_000_000,
            Rate::R5_5 => 5_500_000,
            Rate::R11 => 11_000_000,
        }
    }

    /// Minimum SINR for usable reception at this rate, dB.
    pub fn sinr_threshold_db(self) -> f64 {
        match self {
            Rate::R1 => 4.0,
            Rate::R2 => 6.0,
            Rate::R5_5 => 8.0,
            Rate::R11 => 11.0,
        }
    }

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            Rate::R1 => "1Mbps",
            Rate::R2 => "2Mbps",
            Rate::R5_5 => "5.5Mbps",
            Rate::R11 => "11Mbps",
        }
    }
}

/// Rate-control policy for a node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RateAdaptation {
    /// Pick the fastest rate whose threshold (plus a 3 dB margin) the
    /// link's mean SNR clears; fall back to 1 Mbit/s.
    SnrBased,
    /// Always use one rate (the ablation arm: shows why adaptation matters).
    Fixed(Rate),
}

impl RateAdaptation {
    /// Choose the transmit rate for a link with the given mean SNR.
    pub fn select(self, snr_db: f64) -> Rate {
        match self {
            RateAdaptation::Fixed(r) => r,
            RateAdaptation::SnrBased => {
                const MARGIN_DB: f64 = 3.0;
                Rate::ALL
                    .iter()
                    .rev()
                    .copied()
                    .find(|r| snr_db >= r.sinr_threshold_db() + MARGIN_DB)
                    .unwrap_or(Rate::R1)
            }
        }
    }
}

/// Airtime of a frame: preamble plus body at the data rate.
pub fn airtime(wire_bits: u64, rate: Rate) -> SimDuration {
    PREAMBLE + SimDuration::for_bits(wire_bits, rate.bps())
}

/// Packet error rate for a frame of `bits` received at `sinr_db` on `rate`.
///
/// Below the rate's threshold reception always fails. Above it, a per-bit
/// error probability decays a decade per 5 dB of margin from 10⁻⁵ at the
/// threshold, and the frame succeeds only if every bit does — the standard
/// independent-bit-error composition, giving longer frames visibly higher
/// loss near the edge.
pub fn packet_error_rate(rate: Rate, sinr_db: f64, bits: u64) -> f64 {
    let margin = sinr_db - rate.sinr_threshold_db();
    if margin < 0.0 {
        return 1.0;
    }
    let p_bit = 1e-5 * 10f64.powf(-margin / 5.0);
    let p_ok = (1.0 - p_bit).powf(bits as f64);
    1.0 - p_ok
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_are_ordered() {
        for w in Rate::ALL.windows(2) {
            assert!(w[0].bps() < w[1].bps());
            assert!(w[0].sinr_threshold_db() < w[1].sinr_threshold_db());
        }
    }

    #[test]
    fn airtime_includes_preamble() {
        let t = airtime(0, Rate::R11);
        assert_eq!(t, PREAMBLE);
        let t2 = airtime(8 * 1500, Rate::R1);
        assert!(t2 > SimDuration::from_millis(12)); // 12 ms body + preamble
    }

    #[test]
    fn airtime_faster_at_higher_rates() {
        let bits = 8 * 1000;
        assert!(airtime(bits, Rate::R11) < airtime(bits, Rate::R2));
    }

    #[test]
    fn per_below_threshold_is_certain_loss() {
        assert_eq!(packet_error_rate(Rate::R11, 10.9, 8000), 1.0);
        assert_eq!(packet_error_rate(Rate::R1, -20.0, 8000), 1.0);
    }

    #[test]
    fn per_decays_with_margin() {
        let bits = 8 * 1500;
        let edge = packet_error_rate(Rate::R11, 11.0, bits);
        let mid = packet_error_rate(Rate::R11, 16.0, bits);
        let good = packet_error_rate(Rate::R11, 26.0, bits);
        assert!(edge > mid && mid > good);
        assert!(edge > 0.05, "edge PER should be noticeable: {edge}");
        assert!(good < 0.01, "comfortable margin should be clean: {good}");
    }

    #[test]
    fn per_grows_with_frame_length() {
        let short = packet_error_rate(Rate::R2, 8.0, 8 * 100);
        let long = packet_error_rate(Rate::R2, 8.0, 8 * 1500);
        assert!(long > short);
    }

    #[test]
    fn per_is_a_probability() {
        for rate in Rate::ALL {
            for sinr in [-10.0, 0.0, 5.0, 12.0, 30.0, 80.0] {
                let p = packet_error_rate(rate, sinr, 12_000);
                assert!((0.0..=1.0).contains(&p), "{rate:?} {sinr} -> {p}");
            }
        }
    }

    #[test]
    fn snr_based_selection_is_monotone() {
        let mut prev = Rate::R1;
        for snr in 0..40 {
            let r = RateAdaptation::SnrBased.select(snr as f64);
            assert!(r >= prev, "rate selection regressed at {snr} dB");
            prev = r;
        }
        assert_eq!(RateAdaptation::SnrBased.select(40.0), Rate::R11);
        assert_eq!(RateAdaptation::SnrBased.select(0.0), Rate::R1);
    }

    #[test]
    fn fixed_rate_ignores_snr() {
        assert_eq!(RateAdaptation::Fixed(Rate::R2).select(40.0), Rate::R2);
        assert_eq!(RateAdaptation::Fixed(Rate::R2).select(-10.0), Rate::R2);
    }

    #[test]
    fn selection_honours_margin() {
        // 11 Mbps needs 11 + 3 = 14 dB.
        assert_eq!(RateAdaptation::SnrBased.select(13.9), Rate::R5_5);
        assert_eq!(RateAdaptation::SnrBased.select(14.0), Rate::R11);
    }
}
