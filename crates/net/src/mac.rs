//! CSMA/CA MAC: timing constants, per-node state machine data, and the
//! binary-exponential backoff arithmetic.
//!
//! The state machine itself is driven by the event loop in [`crate::network`];
//! this module holds the pure parts so they can be unit-tested in isolation.

use crate::frame::Frame;
use aroma_sim::{SimDuration, SimRng, SimTime};
use std::collections::VecDeque;

/// MAC timing and retry parameters (802.11b DSSS values by default).
#[derive(Clone, Copy, Debug)]
pub struct MacConfig {
    /// Slot time.
    pub slot: SimDuration,
    /// Short interframe space (data → ACK gap).
    pub sifs: SimDuration,
    /// Distributed interframe space (idle wait before backoff countdown).
    pub difs: SimDuration,
    /// Minimum contention window (slots − 1; CW is drawn from `0..=cw`).
    pub cw_min: u32,
    /// Maximum contention window.
    pub cw_max: u32,
    /// Maximum retransmissions of a unicast frame before it is dropped.
    pub retry_limit: u32,
    /// Transmit queue capacity per node; frames beyond this are dropped at
    /// enqueue (counted, reported).
    pub queue_cap: usize,
}

impl Default for MacConfig {
    fn default() -> Self {
        MacConfig {
            slot: SimDuration::from_micros(20),
            sifs: SimDuration::from_micros(10),
            difs: SimDuration::from_micros(50),
            cw_min: 31,
            cw_max: 1023,
            retry_limit: 7,
            queue_cap: 64,
        }
    }
}

impl MacConfig {
    /// Contention window for the given retry attempt (0 = first try):
    /// CWmin doubling per retry, capped at CWmax.
    pub fn cw_for_attempt(&self, attempt: u32) -> u32 {
        let cw = (self.cw_min + 1)
            .saturating_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX))
            .saturating_sub(1);
        cw.min(self.cw_max)
    }

    /// Draw a backoff slot count for the given attempt.
    pub fn draw_backoff(&self, attempt: u32, rng: &mut SimRng) -> u32 {
        let cw = self.cw_for_attempt(attempt);
        rng.below(cw as u64 + 1) as u32
    }
}

/// Where a node's MAC is in its contention cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MacState {
    /// Nothing to send.
    Idle,
    /// Contending: counting down `remaining` backoff slots.
    Contending {
        /// Slots left before transmission.
        remaining: u32,
    },
    /// A frame of ours is on the air.
    Transmitting,
    /// Unicast data sent; waiting for the ACK.
    WaitAck {
        /// Sequence number the ACK must match.
        seq: u16,
    },
}

/// Phase carried by a MAC tick event so a fired timer knows what it was
/// armed for (stale ticks are filtered by generation, see `MacNode::gen`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TickPhase {
    /// Re-check the medium after it was busy.
    Poll,
    /// DIFS elapsed; begin/resume slot countdown.
    AfterDifs,
    /// One backoff slot elapsed.
    Slot,
}

/// A queued outgoing frame with bookkeeping.
#[derive(Clone, Debug)]
pub struct TxJob {
    /// The frame (seq filled at enqueue).
    pub frame: Frame,
    /// When the application handed it to the MAC (for latency stats).
    pub enqueued_at: SimTime,
    /// Retransmissions so far.
    pub retries: u32,
}

/// Per-node MAC state owned by the network core.
#[derive(Debug)]
pub struct MacNode {
    /// Current state.
    pub state: MacState,
    /// Outgoing frame queue (head is in service).
    pub queue: VecDeque<TxJob>,
    /// Generation counter: bumped whenever the contention cycle restarts so
    /// stale tick/timeout events can be recognised and ignored.
    pub gen: u64,
    /// Next MAC sequence number.
    pub next_seq: u16,
    /// The medium is known busy for this node until this instant.
    pub busy_until: SimTime,
    /// Frames dropped at enqueue because the queue was full.
    pub queue_drops: u64,
}

impl MacNode {
    /// Fresh idle MAC.
    pub fn new() -> Self {
        MacNode {
            state: MacState::Idle,
            queue: VecDeque::new(),
            gen: 0,
            next_seq: 0,
            busy_until: SimTime::ZERO,
            queue_drops: 0,
        }
    }

    /// Allocate the next sequence number (wrapping).
    pub fn alloc_seq(&mut self) -> u16 {
        let s = self.next_seq;
        self.next_seq = self.next_seq.wrapping_add(1);
        s
    }

    /// Is the medium busy for this node at `now`?
    pub fn medium_busy(&self, now: SimTime) -> bool {
        now < self.busy_until
    }

    /// Note carrier energy on the medium until `until`.
    pub fn mark_busy_until(&mut self, until: SimTime) {
        if until > self.busy_until {
            self.busy_until = until;
        }
    }

    /// Invalidate outstanding tick/timeout events and return the new
    /// generation to stamp on freshly scheduled ones.
    pub fn bump_gen(&mut self) -> u64 {
        self.gen += 1;
        self.gen
    }
}

impl Default for MacNode {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{Address, FrameKind, NodeId};
    use bytes::Bytes;

    #[test]
    fn default_timing_is_80211b() {
        let c = MacConfig::default();
        assert_eq!(c.slot.as_micros(), 20);
        assert_eq!(c.sifs.as_micros(), 10);
        assert_eq!(c.difs.as_micros(), 50);
        assert_eq!(c.cw_min, 31);
        assert_eq!(c.cw_max, 1023);
    }

    #[test]
    fn cw_doubles_and_caps() {
        let c = MacConfig::default();
        assert_eq!(c.cw_for_attempt(0), 31);
        assert_eq!(c.cw_for_attempt(1), 63);
        assert_eq!(c.cw_for_attempt(2), 127);
        assert_eq!(c.cw_for_attempt(5), 1023);
        assert_eq!(c.cw_for_attempt(20), 1023); // saturates, no overflow
        assert_eq!(c.cw_for_attempt(40), 1023); // shl overflow guarded
    }

    #[test]
    fn backoff_draw_within_window() {
        let c = MacConfig::default();
        let mut rng = SimRng::new(5);
        for attempt in 0..3 {
            let cw = c.cw_for_attempt(attempt);
            for _ in 0..200 {
                assert!(c.draw_backoff(attempt, &mut rng) <= cw);
            }
        }
    }

    #[test]
    fn seq_allocation_wraps() {
        let mut m = MacNode::new();
        m.next_seq = u16::MAX;
        assert_eq!(m.alloc_seq(), u16::MAX);
        assert_eq!(m.alloc_seq(), 0);
    }

    #[test]
    fn busy_marking_is_monotone() {
        let mut m = MacNode::new();
        m.mark_busy_until(SimTime::from_nanos(100));
        m.mark_busy_until(SimTime::from_nanos(50)); // earlier: ignored
        assert!(m.medium_busy(SimTime::from_nanos(99)));
        assert!(!m.medium_busy(SimTime::from_nanos(100)));
    }

    #[test]
    fn gen_bump_invalidates() {
        let mut m = MacNode::new();
        let g1 = m.bump_gen();
        let g2 = m.bump_gen();
        assert!(g2 > g1);
    }

    #[test]
    fn txjob_carries_frame() {
        let j = TxJob {
            frame: Frame {
                src: NodeId(0),
                dst: Address::Broadcast,
                kind: FrameKind::Data,
                seq: 9,
                payload: Bytes::from_static(b"x"),
            },
            enqueued_at: SimTime::ZERO,
            retries: 0,
        };
        assert_eq!(j.frame.seq, 9);
    }
}
