//! Node mobility.
//!
//! Pervasive computing "is mobile" and the paper lists *ranging* among the
//! wireless environment issues. A [`MobilityPath`] gives a node a
//! piecewise-linear trajectory; the network core samples it on a fixed
//! period and updates the node's position, so carrier sense, SINR and rate
//! selection all see the motion.

use aroma_env::space::Point;
use aroma_sim::{SimDuration, SimTime};

/// A piecewise-linear trajectory with a sampling period.
#[derive(Clone, Debug)]
pub struct MobilityPath {
    /// Timestamped waypoints, strictly increasing in time. Before the
    /// first waypoint the node sits at the first point; after the last it
    /// parks at the last point.
    pub waypoints: Vec<(SimTime, Point)>,
    /// How often the core re-samples the position.
    pub update_period: SimDuration,
}

impl MobilityPath {
    /// Straight-line walk from `from` to `to`, departing at `start` and
    /// arriving `duration` later, sampled every 200 ms.
    pub fn line(from: Point, to: Point, start: SimTime, duration: SimDuration) -> Self {
        assert!(!duration.is_zero(), "zero-duration walk");
        MobilityPath {
            waypoints: vec![(start, from), (start + duration, to)],
            update_period: SimDuration::from_millis(200),
        }
    }

    /// Position at time `t` (clamped to the path's ends).
    pub fn position_at(&self, t: SimTime) -> Point {
        assert!(!self.waypoints.is_empty(), "empty mobility path");
        if t <= self.waypoints[0].0 {
            return self.waypoints[0].1;
        }
        for w in self.waypoints.windows(2) {
            let (t0, p0) = w[0];
            let (t1, p1) = w[1];
            if t < t1 {
                let span = (t1 - t0).as_secs_f64();
                let frac = if span <= 0.0 {
                    1.0
                } else {
                    (t - t0).as_secs_f64() / span
                };
                return Point::new(p0.x + (p1.x - p0.x) * frac, p0.y + (p1.y - p0.y) * frac);
            }
        }
        self.waypoints.last().unwrap().1
    }

    /// Instant after which the node no longer moves.
    pub fn ends_at(&self) -> SimTime {
        self.waypoints.last().map(|(t, _)| *t).unwrap_or(SimTime::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(s: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(s)
    }

    #[test]
    fn line_interpolates() {
        let p = MobilityPath::line(
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            at(5),
            SimDuration::from_secs(10),
        );
        assert_eq!(p.position_at(at(0)), Point::new(0.0, 0.0)); // before start
        assert_eq!(p.position_at(at(5)), Point::new(0.0, 0.0));
        let mid = p.position_at(at(10));
        assert!((mid.x - 5.0).abs() < 1e-9);
        assert_eq!(p.position_at(at(15)), Point::new(10.0, 0.0));
        assert_eq!(p.position_at(at(99)), Point::new(10.0, 0.0)); // parked
        assert_eq!(p.ends_at(), at(15));
    }

    #[test]
    fn multi_segment_path() {
        let p = MobilityPath {
            waypoints: vec![
                (at(0), Point::new(0.0, 0.0)),
                (at(10), Point::new(10.0, 0.0)),
                (at(20), Point::new(10.0, 10.0)),
            ],
            update_period: SimDuration::from_millis(100),
        };
        let q = p.position_at(at(15));
        assert!((q.x - 10.0).abs() < 1e-9);
        assert!((q.y - 5.0).abs() < 1e-9);
    }

    #[test]
    fn position_is_monotone_along_a_line() {
        let p = MobilityPath::line(
            Point::new(0.0, 0.0),
            Point::new(100.0, 0.0),
            at(0),
            SimDuration::from_secs(50),
        );
        let mut last = -1.0;
        for s in 0..=50 {
            let x = p.position_at(at(s)).x;
            assert!(x >= last);
            last = x;
        }
    }
}
