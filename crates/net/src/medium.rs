//! The shared radio medium: who is on the air, and what each receiver hears.
//!
//! Keeps the set of in-flight (and recently finished) transmissions so that,
//! when a frame ends, the receiver's SINR can be integrated over every
//! overlapping transmission — co-channel or partially overlapping channels —
//! using the propagation model from `aroma-env`. Carrier sense queries run
//! against the same bookkeeping, so hidden terminals (out of CS range but in
//! interference range of the receiver) arise naturally.

use crate::frame::{Frame, NodeId};
use crate::phy::{Rate, CS_THRESHOLD_DBM};
use aroma_env::radio::{dbm_to_mw, Channel, RadioEnvironment};
use aroma_env::space::Point;
use aroma_sim::SimTime;

/// Identifier of one transmission on the medium.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TxId(pub u64);

/// One transmission, in flight or recently completed.
#[derive(Clone, Debug)]
pub struct Transmission {
    /// Identifier.
    pub id: TxId,
    /// Transmitting node.
    pub src: NodeId,
    /// Its position at transmit time.
    pub src_pos: Point,
    /// Its channel.
    pub channel: Channel,
    /// Transmit power, dBm.
    pub tx_dbm: f64,
    /// PHY rate of the body.
    pub rate: Rate,
    /// First energy on the air.
    pub start: SimTime,
    /// Last energy on the air.
    pub end: SimTime,
    /// The frame being carried.
    pub frame: Frame,
}

/// Bookkeeping for the shared medium.
#[derive(Debug, Default)]
pub struct Medium {
    /// Transmissions whose `end` has not yet been processed, plus a recent
    /// tail kept for interference integration.
    txs: Vec<Transmission>,
    next_id: u64,
}

impl Medium {
    /// Empty medium.
    pub fn new() -> Self {
        Medium::default()
    }

    /// Register a transmission; returns its id.
    pub fn begin(&mut self, mut tx: Transmission) -> TxId {
        let id = TxId(self.next_id);
        self.next_id += 1;
        tx.id = id;
        self.txs.push(tx);
        id
    }

    /// Fetch a transmission by id (it may already have ended).
    pub fn get(&self, id: TxId) -> Option<&Transmission> {
        self.txs.iter().find(|t| t.id == id)
    }

    /// Drop transmissions that ended before `horizon` (they can no longer
    /// overlap anything in flight).
    pub fn prune(&mut self, horizon: SimTime) {
        self.txs.retain(|t| t.end >= horizon);
    }

    /// Number of retained transmissions (pruned ones excluded).
    pub fn retained(&self) -> usize {
        self.txs.len()
    }

    /// Is the medium busy for a listener at `pos` on `channel` at `now`?
    ///
    /// True when any in-flight transmission delivers energy above the
    /// carrier-sense threshold, weighted by spectral overlap. The listener's
    /// own transmission (if any) also counts — a radio cannot decrement
    /// backoff while its own PA is on.
    pub fn busy_for(
        &self,
        env: &RadioEnvironment,
        listener: NodeId,
        pos: Point,
        channel: Channel,
        now: SimTime,
    ) -> Option<SimTime> {
        let mut latest: Option<SimTime> = None;
        for t in &self.txs {
            // A transmission starting at this very instant is not sensible
            // yet (zero propagation delay would otherwise serialise slot
            // collisions out of existence — the slot-granularity collisions
            // CSMA/CA actually suffers from).
            if t.start >= now || t.end <= now {
                continue;
            }
            let sensed = if t.src == listener {
                f64::INFINITY // own transmission: certainly busy
            } else {
                let overlap = channel.overlap(t.channel);
                if overlap <= 0.0 {
                    continue;
                }
                env.received_dbm(t.tx_dbm, t.src.key(), t.src_pos, listener.key(), pos)
                    + 10.0 * overlap.log10()
            };
            if sensed >= CS_THRESHOLD_DBM && Some(t.end) > latest {
                latest = Some(t.end);
            }
        }
        latest
    }

    /// SINR (dB) for receiving transmission `of` at `listener`.
    ///
    /// Interference integrates every other transmission overlapping the
    /// frame in time, weighted by spectral overlap and by the fraction of
    /// the frame it covered — the standard additive-interference
    /// approximation.
    pub fn sinr_for(
        &self,
        env: &RadioEnvironment,
        of: TxId,
        listener: NodeId,
        pos: Point,
    ) -> Option<f64> {
        let wanted = self.get(of)?;
        let signal_dbm = env.received_dbm(
            wanted.tx_dbm,
            wanted.src.key(),
            wanted.src_pos,
            listener.key(),
            pos,
        );
        let dur = (wanted.end - wanted.start).as_secs_f64().max(1e-12);
        let mut interferers: Vec<(f64, f64)> = Vec::new();
        for t in &self.txs {
            if t.id == of || t.src == listener {
                continue;
            }
            let ov_start = t.start.max(wanted.start);
            let ov_end = t.end.min(wanted.end);
            if ov_end <= ov_start {
                continue;
            }
            let spectral = wanted.channel.overlap(t.channel);
            if spectral <= 0.0 {
                continue;
            }
            let time_frac = (ov_end - ov_start).as_secs_f64() / dur;
            let p_dbm = env.received_dbm(t.tx_dbm, t.src.key(), t.src_pos, listener.key(), pos);
            interferers.push((p_dbm, spectral * time_frac.min(1.0)));
        }
        Some(env.sinr_db(signal_dbm, &interferers))
    }

    /// Was `listener` itself transmitting at any point during `[start, end)`?
    /// (Half-duplex radios cannot receive while transmitting.)
    pub fn was_transmitting(&self, listener: NodeId, start: SimTime, end: SimTime) -> bool {
        self.txs
            .iter()
            .any(|t| t.src == listener && t.start < end && t.end > start)
    }

    /// Linear interference power (mW) present at `pos` on `channel` at `now`
    /// — used by diagnostics and tests.
    pub fn interference_mw(
        &self,
        env: &RadioEnvironment,
        listener: NodeId,
        pos: Point,
        channel: Channel,
        now: SimTime,
    ) -> f64 {
        self.txs
            .iter()
            .filter(|t| t.src != listener && t.start <= now && t.end > now)
            .map(|t| {
                let ov = channel.overlap(t.channel);
                dbm_to_mw(env.received_dbm(t.tx_dbm, t.src.key(), t.src_pos, listener.key(), pos))
                    * ov
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{Address, FrameKind};
    use bytes::Bytes;

    fn env() -> RadioEnvironment {
        RadioEnvironment {
            shadowing_sigma_db: 0.0,
            ..Default::default()
        }
    }

    fn tx(src: u32, x: f64, ch: Channel, start_ns: u64, end_ns: u64) -> Transmission {
        Transmission {
            id: TxId(0),
            src: NodeId(src),
            src_pos: Point::new(x, 0.0),
            channel: ch,
            tx_dbm: 15.0,
            rate: Rate::R2,
            start: SimTime::from_nanos(start_ns),
            end: SimTime::from_nanos(end_ns),
            frame: Frame {
                src: NodeId(src),
                dst: Address::Broadcast,
                kind: FrameKind::Data,
                seq: 0,
                payload: Bytes::new(),
            },
        }
    }

    #[test]
    fn begin_assigns_monotone_ids() {
        let mut m = Medium::new();
        let a = m.begin(tx(1, 0.0, Channel::CH6, 0, 100));
        let b = m.begin(tx(2, 5.0, Channel::CH6, 0, 100));
        assert!(b.0 > a.0);
        assert!(m.get(a).is_some());
        assert!(m.get(TxId(99)).is_none());
    }

    #[test]
    fn nearby_cochannel_tx_is_sensed() {
        let mut m = Medium::new();
        m.begin(tx(1, 0.0, Channel::CH6, 0, 1_000_000));
        let busy = m.busy_for(
            &env(),
            NodeId(2),
            Point::new(5.0, 0.0),
            Channel::CH6,
            SimTime::from_nanos(500),
        );
        assert_eq!(busy, Some(SimTime::from_nanos(1_000_000)));
    }

    #[test]
    fn distant_tx_is_not_sensed() {
        let mut m = Medium::new();
        m.begin(tx(1, 0.0, Channel::CH6, 0, 1_000_000));
        // At n=3.0 path loss, 15 dBm at ~500 m is far below −82 dBm.
        let busy = m.busy_for(
            &env(),
            NodeId(2),
            Point::new(500.0, 0.0),
            Channel::CH6,
            SimTime::from_nanos(500),
        );
        assert_eq!(busy, None);
    }

    #[test]
    fn orthogonal_channel_is_not_sensed() {
        let mut m = Medium::new();
        m.begin(tx(1, 0.0, Channel::CH1, 0, 1_000_000));
        let busy = m.busy_for(
            &env(),
            NodeId(2),
            Point::new(2.0, 0.0),
            Channel::CH6,
            SimTime::from_nanos(500),
        );
        assert_eq!(busy, None);
    }

    #[test]
    fn own_transmission_always_busy() {
        let mut m = Medium::new();
        m.begin(tx(1, 0.0, Channel::CH1, 0, 1_000_000));
        // Even on an orthogonal channel, your own PA blinds you.
        let busy = m.busy_for(
            &env(),
            NodeId(1),
            Point::new(0.0, 0.0),
            Channel::CH11,
            SimTime::from_nanos(10),
        );
        assert!(busy.is_some());
    }

    #[test]
    fn ended_tx_not_busy() {
        let mut m = Medium::new();
        m.begin(tx(1, 0.0, Channel::CH6, 0, 100));
        let busy = m.busy_for(
            &env(),
            NodeId(2),
            Point::new(2.0, 0.0),
            Channel::CH6,
            SimTime::from_nanos(100),
        );
        assert_eq!(busy, None);
    }

    #[test]
    fn sinr_clean_link_is_high() {
        let mut m = Medium::new();
        let id = m.begin(tx(1, 0.0, Channel::CH6, 0, 1_000_000));
        let sinr = m
            .sinr_for(&env(), id, NodeId(2), Point::new(5.0, 0.0))
            .unwrap();
        assert!(sinr > 20.0, "clean 5 m link should be strong: {sinr}");
    }

    #[test]
    fn overlapping_tx_degrades_sinr() {
        let mut m = Medium::new();
        let id = m.begin(tx(1, 0.0, Channel::CH6, 0, 1_000_000));
        let clean = m
            .sinr_for(&env(), id, NodeId(2), Point::new(5.0, 0.0))
            .unwrap();
        m.begin(tx(3, 10.0, Channel::CH6, 0, 1_000_000));
        let jammed = m
            .sinr_for(&env(), id, NodeId(2), Point::new(5.0, 0.0))
            .unwrap();
        assert!(jammed < clean - 10.0, "{clean} -> {jammed}");
    }

    #[test]
    fn partial_time_overlap_scales_interference() {
        let mut m = Medium::new();
        let id = m.begin(tx(1, 0.0, Channel::CH6, 0, 1_000_000));
        m.begin(tx(3, 10.0, Channel::CH6, 900_000, 1_900_000)); // 10% overlap
        let slight = m
            .sinr_for(&env(), id, NodeId(2), Point::new(5.0, 0.0))
            .unwrap();
        let mut m2 = Medium::new();
        let id2 = m2.begin(tx(1, 0.0, Channel::CH6, 0, 1_000_000));
        m2.begin(tx(3, 10.0, Channel::CH6, 0, 1_000_000)); // full overlap
        let full = m2
            .sinr_for(&env(), id2, NodeId(2), Point::new(5.0, 0.0))
            .unwrap();
        assert!(slight > full, "partial {slight} vs full {full}");
    }

    #[test]
    fn adjacent_channel_interference_is_attenuated() {
        let co = {
            let mut m = Medium::new();
            let id = m.begin(tx(1, 0.0, Channel::CH6, 0, 1_000_000));
            m.begin(tx(3, 10.0, Channel::CH6, 0, 1_000_000));
            m.sinr_for(&env(), id, NodeId(2), Point::new(5.0, 0.0)).unwrap()
        };
        let adj = {
            let mut m = Medium::new();
            let id = m.begin(tx(1, 0.0, Channel::CH6, 0, 1_000_000));
            m.begin(tx(3, 10.0, Channel::new(8), 0, 1_000_000));
            m.sinr_for(&env(), id, NodeId(2), Point::new(5.0, 0.0)).unwrap()
        };
        assert!(adj > co, "adjacent-channel should hurt less: {adj} vs {co}");
    }

    #[test]
    fn half_duplex_detection() {
        let mut m = Medium::new();
        m.begin(tx(7, 0.0, Channel::CH6, 100, 200));
        assert!(m.was_transmitting(NodeId(7), SimTime::from_nanos(150), SimTime::from_nanos(300)));
        assert!(!m.was_transmitting(NodeId(7), SimTime::from_nanos(200), SimTime::from_nanos(300)));
        assert!(!m.was_transmitting(NodeId(8), SimTime::from_nanos(150), SimTime::from_nanos(300)));
    }

    #[test]
    fn prune_removes_stale_transmissions() {
        let mut m = Medium::new();
        m.begin(tx(1, 0.0, Channel::CH6, 0, 100));
        m.begin(tx(2, 0.0, Channel::CH6, 0, 10_000));
        m.prune(SimTime::from_nanos(5_000));
        assert_eq!(m.retained(), 1);
    }

    #[test]
    fn interference_power_sums_sources() {
        let mut m = Medium::new();
        let e = env();
        let p = Point::new(5.0, 0.0);
        let t = SimTime::from_nanos(50);
        assert_eq!(m.interference_mw(&e, NodeId(9), p, Channel::CH6, t), 0.0);
        m.begin(tx(1, 0.0, Channel::CH6, 0, 100));
        let one = m.interference_mw(&e, NodeId(9), p, Channel::CH6, t);
        m.begin(tx(2, 10.0, Channel::CH6, 0, 100));
        let two = m.interference_mw(&e, NodeId(9), p, Channel::CH6, t);
        assert!(two > one && one > 0.0);
    }
}
