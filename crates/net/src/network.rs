//! The network simulator: event loop, MAC state machine driver, application
//! interface.
//!
//! A [`Network`] owns a set of nodes (position, channel, radio parameters,
//! MAC state) sharing one [`crate::medium::Medium`] inside one
//! [`RadioEnvironment`]. Applications implement [`NetApp`] and interact with
//! the stack exclusively through a [`NetCtx`] — sending frames, arming
//! timers, reading the clock — which is also how the higher substrates
//! (`aroma-discovery`, `aroma-vnc`, `smart-projector`) are built.
//!
//! ## Event model
//!
//! Four event kinds drive everything:
//!
//! * `MacTick` — one step of a node's CSMA/CA contention (poll-after-busy,
//!   DIFS expiry, or one backoff slot). Ticks are stamped with the node's
//!   MAC generation; bumping the generation invalidates outstanding ticks,
//!   which is cheaper and simpler than cancelling them.
//! * `TxEnd` — a transmission leaves the air; receivers evaluate SINR and
//!   the frame either dies or is delivered/acknowledged.
//! * `AckTimeout` — a unicast sender gave up waiting; binary-exponential
//!   backoff and retry, or drop at the retry limit.
//! * `AppTimer` — an application timer armed through [`NetCtx::set_timer`].
//!
//! A fifth kind, `Fault`, exists only when a [`FaultSchedule`] was attached
//! with [`Network::attach_faults`]: scripted node crashes/restarts, channel
//! partitions, burst loss beyond the PHY model, clock skew and application
//! process kills, all driven by the fault plane's own RNG stream so an
//! empty schedule never perturbs a run.

use crate::frame::{Address, Frame, FrameKind, NodeId, ACK_BYTES, MTU_BYTES};
use crate::mac::{MacConfig, MacNode, MacState, TickPhase, TxJob};
use crate::medium::{Medium, Transmission, TxId};
use crate::mobility::MobilityPath;
use crate::phy::{airtime, packet_error_rate, Rate, RateAdaptation};
use aroma_env::radio::{Channel, RadioEnvironment};
use aroma_env::space::Point;
use aroma_sim::faults::{FaultOp, FaultSchedule};
use aroma_sim::stats::Summary;
use aroma_sim::telemetry::{Layer, Recorder, Snapshot, Telemetry, TelemetryConfig};
use aroma_sim::{EventId, EventQueue, SimDuration, SimRng, SimTime};
use bytes::Bytes;
use std::any::Any;
use std::collections::HashMap;
use std::time::Instant;

/// Handle to a pending application timer (cancellable).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimerId(EventId);

/// Static configuration of one node.
#[derive(Clone, Debug)]
pub struct NodeConfig {
    /// Position in the floor plan (initial position when mobile).
    pub pos: Point,
    /// Operating channel.
    pub channel: Channel,
    /// Transmit power, dBm.
    pub tx_dbm: f64,
    /// Rate-control policy.
    pub adapt: RateAdaptation,
    /// Trajectory, if the node moves.
    pub mobility: Option<MobilityPath>,
}

impl NodeConfig {
    /// A node at `pos` with default radio parameters (channel 6, 15 dBm,
    /// SNR-based rate control).
    pub fn at(pos: Point) -> Self {
        NodeConfig {
            pos,
            channel: Channel::CH6,
            tx_dbm: 15.0,
            adapt: RateAdaptation::SnrBased,
            mobility: None,
        }
    }

    /// Attach a trajectory.
    pub fn moving(mut self, path: MobilityPath) -> Self {
        self.mobility = Some(path);
        self
    }

    /// Same, with an explicit channel.
    pub fn at_on(pos: Point, channel: Channel) -> Self {
        NodeConfig {
            channel,
            ..NodeConfig::at(pos)
        }
    }
}

/// Per-node traffic counters.
#[derive(Clone, Debug, Default)]
pub struct NodeStats {
    /// Data-frame transmissions started (including retries).
    pub tx_data_attempts: u64,
    /// ACK frames transmitted.
    pub tx_acks: u64,
    /// Data frames delivered up to the application.
    pub rx_delivered: u64,
    /// Payload bytes delivered up to the application.
    pub rx_bytes: u64,
    /// Duplicate data frames suppressed by sequence checking.
    pub rx_duplicates: u64,
    /// ACK timeouts (each implies a retry or a drop).
    pub ack_timeouts: u64,
    /// Unicast frames dropped after exhausting the retry limit.
    pub drops_retry: u64,
    /// Frames dropped at enqueue because the MAC queue was full.
    pub drops_queue: u64,
    /// Unicast frames successfully acknowledged.
    pub tx_completed: u64,
}

/// Network-wide counters.
#[derive(Clone, Debug, Default)]
pub struct NetStats {
    /// Per-node counters, indexed by `NodeId.0`.
    pub node: Vec<NodeStats>,
    /// Total data frames delivered to applications.
    pub delivered_frames: u64,
    /// Total payload bytes delivered to applications.
    pub delivered_bytes: u64,
    /// MAC service time for completed unicast frames (enqueue → ACK), s.
    pub service_time: Summary,
    /// Frames delivered over wired links.
    pub wired_frames: u64,
    /// Payload bytes delivered over wired links.
    pub wired_bytes: u64,
}

impl NetStats {
    /// Aggregate application-level throughput over `horizon`, bits/s.
    pub fn goodput_bps(&self, horizon: SimDuration) -> f64 {
        let secs = horizon.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.delivered_bytes as f64 * 8.0 / secs
        }
    }

    /// Total retry-limit drops across nodes.
    pub fn total_retry_drops(&self) -> u64 {
        self.node.iter().map(|n| n.drops_retry).sum()
    }

    /// Total ACK timeouts (collision/loss indicator) across nodes.
    pub fn total_ack_timeouts(&self) -> u64 {
        self.node.iter().map(|n| n.ack_timeouts).sum()
    }

    /// Total data transmission attempts across nodes.
    pub fn total_tx_attempts(&self) -> u64 {
        self.node.iter().map(|n| n.tx_data_attempts).sum()
    }
}

/// Counters for the fault-injection plane (kept apart from [`NetStats`] so
/// attaching an empty schedule leaves the traffic counters untouched).
#[derive(Clone, Debug, Default)]
pub struct FaultStats {
    /// Scheduled fault operations applied.
    pub injected: u64,
    /// Node power failures applied.
    pub node_crashes: u64,
    /// Node restorations applied.
    pub node_restarts: u64,
    /// Application process kills applied.
    pub process_kills: u64,
    /// Application process restarts applied.
    pub process_restarts: u64,
    /// Frames silently lost because an active partition separated the
    /// endpoints.
    pub frames_blocked_partition: u64,
    /// Otherwise-successful receptions lost to a burst-loss window.
    pub frames_lost_burst: u64,
    /// Receptions lost because an endpoint was powered down.
    pub frames_lost_down: u64,
    /// App timers suppressed by a crash or process kill (lazy cancel).
    pub timers_suppressed: u64,
    /// Sends rejected because the source node was powered down.
    pub sends_blocked_down: u64,
    /// MAC-queued frames dropped at the instant of a crash.
    pub queued_frames_dropped: u64,
}

/// Live state of an attached fault schedule.
struct FaultPlane {
    /// The schedule's operations, sorted by time (index-addressed from
    /// `Event::Fault`).
    ops: Vec<(u64, FaultOp)>,
    /// The injector's private RNG stream (burst-loss coin flips). Never
    /// touches the simulation RNG, so faults-off runs are unperturbed.
    rng: SimRng,
    /// Active partitions, most recent last (`PartitionEnd` pops).
    partitions: Vec<(u64, u64)>,
    /// Current burst-loss probability (0 outside burst windows).
    burst: f64,
    stats: FaultStats,
}

impl FaultPlane {
    /// Does an active partition separate `src` from `rx`? Masks cover node
    /// indices 0..64; nodes beyond that are never partitioned.
    fn partitioned(&self, src: NodeId, rx: NodeId) -> bool {
        if src.0 >= 64 || rx.0 >= 64 {
            return false;
        }
        let (s, r) = (1u64 << src.0, 1u64 << rx.0);
        self.partitions
            .iter()
            .any(|&(a, b)| (a & s != 0 && b & r != 0) || (a & r != 0 && b & s != 0))
    }
}

/// Static trace-event name for a fault operation.
fn fault_event_name(op: &FaultOp) -> &'static str {
    match op {
        FaultOp::NodeDown { .. } => "fault.node_down",
        FaultOp::NodeUp { .. } => "fault.node_up",
        FaultOp::PartitionStart { .. } => "fault.partition_start",
        FaultOp::PartitionEnd => "fault.partition_end",
        FaultOp::BurstStart { .. } => "fault.burst_start",
        FaultOp::BurstEnd => "fault.burst_end",
        FaultOp::ClockSkew { .. } => "fault.clock_skew",
        FaultOp::ProcessKill { .. } => "fault.process_kill",
        FaultOp::ProcessRestart { .. } => "fault.process_restart",
    }
}

/// An application running on a node.
///
/// Implementations also serve as the state the embedding test/experiment
/// inspects afterwards — retrieve them with [`Network::app_as`].
pub trait NetApp: Any {
    /// Called once, at simulation start.
    fn on_start(&mut self, _ctx: &mut NetCtx<'_>) {}
    /// A data frame arrived.
    fn on_packet(&mut self, _ctx: &mut NetCtx<'_>, _from: NodeId, _payload: &Bytes) {}
    /// A timer armed with [`NetCtx::set_timer`] fired.
    fn on_timer(&mut self, _ctx: &mut NetCtx<'_>, _token: u64) {}
    /// A frame we sent finished service successfully (ACKed, or broadcast
    /// completed its single attempt).
    fn on_sent(&mut self, _ctx: &mut NetCtx<'_>, _to: Address) {}
    /// A unicast frame was dropped after the retry limit.
    fn on_send_failed(&mut self, _ctx: &mut NetCtx<'_>, _to: NodeId, _payload: &Bytes) {}
    /// The fault plane crashed this node (or killed just its process) with
    /// state loss: every pending timer is already cancelled and, for a full
    /// node crash, the MAC queue is gone. Implementations should drop or
    /// invalidate in-memory state here; they must not expect any further
    /// callback until [`NetApp::on_restart`].
    fn on_crash(&mut self, _ctx: &mut NetCtx<'_>) {}
    /// The fault plane restored this node (or its process). Timers armed
    /// before the crash stay cancelled. The default re-runs
    /// [`NetApp::on_start`], which is the right recovery for stateless
    /// protocol apps; stateful apps override to resynchronise instead.
    fn on_restart(&mut self, ctx: &mut NetCtx<'_>) {
        self.on_start(ctx);
    }
}

/// The application's handle onto the stack.
pub struct NetCtx<'a> {
    core: &'a mut Core,
    node: NodeId,
}

impl NetCtx<'_> {
    /// This node's id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.core.queue.now()
    }

    /// This node's position.
    pub fn position(&self) -> Point {
        self.core.nodes[self.node.0 as usize].pos
    }

    /// Number of nodes in the network.
    pub fn node_count(&self) -> usize {
        self.core.nodes.len()
    }

    /// Deterministic per-node random stream.
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.core.nodes[self.node.0 as usize].rng
    }

    /// Queue a frame for transmission. Payloads larger than [`MTU_BYTES`]
    /// panic (fragmentation belongs to the layer above). Returns `false` if
    /// the MAC queue was full and the frame was dropped.
    pub fn send(&mut self, dst: Address, payload: Bytes) -> bool {
        self.core.enqueue(self.node, dst, payload)
    }

    /// Send over a wired link (the "traditional network"): reliable,
    /// contention-free, delivered after link latency plus serialisation.
    /// Returns `false` when no cable connects this node to `peer`.
    pub fn send_wired(&mut self, peer: NodeId, payload: Bytes) -> bool {
        self.core.send_wired(self.node, peer, payload)
    }

    /// Is this node cabled directly to `peer`?
    pub fn has_wired_link(&self, peer: NodeId) -> bool {
        self.core.wired_link(self.node, peer).is_some()
    }

    /// Free slots in this node's MAC transmit queue right now. A batching
    /// sender (the VNC broadcast pump) uses this as its per-dispatch budget
    /// so it never feeds the queue a frame that [`NetCtx::send`] would have
    /// to reject.
    pub fn mac_queue_space(&self) -> usize {
        let n = &self.core.nodes[self.node.0 as usize];
        self.core.cfg.queue_cap.saturating_sub(n.mac.queue.len())
    }

    /// Would a unicast [`NetCtx::send`] to `peer` ride a cable instead of
    /// the radio? True only when wired-preferred routing is enabled on the
    /// network *and* a cable exists — such sends never consume MAC queue
    /// slots.
    pub fn unicast_is_wired(&self, peer: NodeId) -> bool {
        self.core.prefer_wired && self.core.wired_link(self.node, peer).is_some()
    }

    /// Arm a timer; `token` is handed back to
    /// [`NetApp::on_timer`] when it fires. Under an active clock-skew fault
    /// the delay is stretched or compressed by the node's skew factor.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) -> TimerId {
        let info = &self.core.nodes[self.node.0 as usize];
        let delay = if info.skew == 1.0 {
            delay
        } else {
            SimDuration::from_nanos((delay.as_nanos() as f64 * info.skew).round() as u64)
        };
        let epoch = info.timer_epoch;
        TimerId(self.core.queue.schedule_in(
            delay,
            Event::AppTimer {
                node: self.node,
                token,
                epoch,
            },
        ))
    }

    /// Cancel a pending timer (no-op if it already fired).
    pub fn cancel_timer(&mut self, id: TimerId) -> bool {
        self.core.queue.cancel(id.0)
    }

    /// Mean SNR (dB, interference-free) of the link to `peer` — what a
    /// driver would estimate from beacons; used by apps for diagnostics.
    pub fn link_snr_db(&self, peer: NodeId) -> f64 {
        self.core.link_snr_db(self.node, peer)
    }

    /// The network's telemetry recorder, so applications built on
    /// [`NetApp`] (discovery, VNC, the projector) record into the same
    /// snapshot as the MAC. Off unless [`Network::attach_telemetry`] ran.
    pub fn telemetry(&mut self) -> &mut Telemetry {
        &mut self.core.rec
    }
}

#[derive(Debug)]
enum Event {
    MacTick {
        node: NodeId,
        gen: u64,
        phase: TickPhase,
    },
    TxEnd {
        tx: TxId,
    },
    AckTimeout {
        node: NodeId,
        gen: u64,
    },
    AppTimer {
        node: NodeId,
        token: u64,
        /// The node's timer epoch when armed; a crash bumps the epoch, so
        /// pre-crash timers die lazily at fire time.
        epoch: u32,
    },
    MobilityTick {
        node: NodeId,
    },
    WiredDeliver {
        from: NodeId,
        to: NodeId,
        payload: Bytes,
    },
    /// Apply the `index`-th operation of the attached fault schedule.
    Fault {
        index: u32,
    },
}

impl Event {
    /// Static handler label for event-loop self-profiling.
    fn kind_name(&self) -> &'static str {
        match self {
            Event::MacTick { .. } => "MacTick",
            Event::TxEnd { .. } => "TxEnd",
            Event::AckTimeout { .. } => "AckTimeout",
            Event::AppTimer { .. } => "AppTimer",
            Event::MobilityTick { .. } => "MobilityTick",
            Event::WiredDeliver { .. } => "WiredDeliver",
            Event::Fault { .. } => "Fault",
        }
    }
}

enum AppCall {
    Packet {
        node: NodeId,
        from: NodeId,
        payload: Bytes,
    },
    Timer {
        node: NodeId,
        token: u64,
    },
    Sent {
        node: NodeId,
        to: Address,
    },
    SendFailed {
        node: NodeId,
        to: NodeId,
        payload: Bytes,
    },
    Crash {
        node: NodeId,
    },
    Restart {
        node: NodeId,
    },
}

struct NodeInfo {
    pos: Point,
    channel: Channel,
    tx_dbm: f64,
    adapt: RateAdaptation,
    mobility: Option<MobilityPath>,
    mac: MacNode,
    /// Last sequence number seen per source (duplicate suppression).
    dedup: HashMap<NodeId, u16>,
    rng: SimRng,
    /// Powered and able to transmit/receive (fault plane; always true
    /// without one).
    up: bool,
    /// Bumped by crashes and process kills to lazily cancel app timers.
    timer_epoch: u32,
    /// Clock-skew factor applied to subsequent timer delays (fault plane;
    /// exactly 1.0 means untouched).
    skew: f64,
}

/// A reliable point-to-point cable between two nodes (the "traditional
/// network" the Aroma project bridges to). Full duplex, contention-free.
#[derive(Clone, Copy, Debug)]
struct WiredLink {
    a: NodeId,
    b: NodeId,
    latency: SimDuration,
    bps: u64,
}

struct Core {
    queue: EventQueue<Event>,
    env: RadioEnvironment,
    cfg: MacConfig,
    nodes: Vec<NodeInfo>,
    medium: Medium,
    rng: SimRng,
    stats: NetStats,
    pending: Vec<AppCall>,
    prune_counter: u32,
    wired: Vec<WiredLink>,
    /// Cable lookup by normalised `(min, max)` node pair — `wired_link` is
    /// on the per-frame send path, and a linear scan over ten thousand
    /// cables would turn the broadcast fan-out quadratic. Keyed access
    /// only (never iterated), so determinism is unaffected.
    wired_index: HashMap<(u32, u32), u32>,
    /// Route unicast [`NetCtx::send`]s over a cable whenever one exists
    /// (opt-in via [`Network::set_prefer_wired`]; radio remains the
    /// broadcast and fallback path).
    prefer_wired: bool,
    /// Telemetry recorder (Off by default; every call inlines to a no-op).
    rec: Telemetry,
    /// Fault-injection plane; `None` unless a schedule was attached.
    faults: Option<FaultPlane>,
}

/// ACK wait: SIFS + ACK airtime at the base rate + two slots of grace.
fn ack_timeout(cfg: &MacConfig) -> SimDuration {
    cfg.sifs + airtime(ACK_BYTES as u64 * 8, Rate::R2) + cfg.slot * 2
}

impl Core {
    fn node(&mut self, id: NodeId) -> &mut NodeInfo {
        &mut self.nodes[id.0 as usize]
    }

    fn link_snr_db(&self, a: NodeId, b: NodeId) -> f64 {
        let na = &self.nodes[a.0 as usize];
        let nb = &self.nodes[b.0 as usize];
        self.env
            .received_dbm(na.tx_dbm, a.key(), na.pos, b.key(), nb.pos)
            - self.env.noise_floor_dbm()
    }

    fn enqueue(&mut self, src: NodeId, dst: Address, payload: Bytes) -> bool {
        assert!(
            payload.len() <= MTU_BYTES,
            "payload {} exceeds MTU {MTU_BYTES}; fragment above the MAC",
            payload.len()
        );
        if let Address::Node(d) = dst {
            assert!(
                (d.0 as usize) < self.nodes.len(),
                "destination {d} does not exist"
            );
            assert_ne!(d, src, "a node cannot unicast to itself");
        }
        if !self.nodes[src.0 as usize].up {
            // Powered-down radio (fault plane): the send is silently lost.
            if let Some(fp) = &mut self.faults {
                fp.stats.sends_blocked_down += 1;
            }
            return false;
        }
        if self.prefer_wired {
            if let Address::Node(d) = dst {
                if self.wired_link(src, d).is_some() {
                    // Wired-preferred routing: the cable carries the frame,
                    // so it never occupies a MAC queue slot.
                    return self.send_wired(src, d, payload);
                }
            }
        }
        let now = self.queue.now();
        let cap = self.cfg.queue_cap;
        if self.nodes[src.0 as usize].mac.queue.len() >= cap {
            self.nodes[src.0 as usize].mac.queue_drops += 1;
            self.stats.node[src.0 as usize].drops_queue += 1;
            self.rec.count("net.mac.drop.queue_full", 1);
            self.rec.event(
                now.as_nanos(),
                Layer::Resource,
                "mac.drop.queue_full",
                src.0,
                cap as i64,
                0,
            );
            return false;
        }
        let node = &mut self.nodes[src.0 as usize];
        let seq = node.mac.alloc_seq();
        node.mac.queue.push_back(TxJob {
            frame: Frame {
                src,
                dst,
                kind: FrameKind::Data,
                seq,
                payload,
            },
            enqueued_at: now,
            retries: 0,
        });
        self.kick(src);
        true
    }

    /// Start contention if the MAC is idle and has work.
    fn kick(&mut self, id: NodeId) {
        let node = self.node(id);
        if node.mac.state == MacState::Idle && !node.mac.queue.is_empty() {
            self.start_contention(id);
        }
    }

    fn start_contention(&mut self, id: NodeId) {
        let cfg = self.cfg;
        let node = self.node(id);
        let attempt = node.mac.queue.front().map(|j| j.retries).unwrap_or(0);
        let remaining = cfg.draw_backoff(attempt, &mut node.rng);
        node.mac.state = MacState::Contending { remaining };
        let gen = node.mac.bump_gen();
        self.rec.count("net.mac.contention_rounds", 1);
        self.rec.event(
            self.queue.now().as_nanos(),
            Layer::Resource,
            "mac.state.contending",
            id.0,
            attempt as i64,
            remaining as i64,
        );
        self.schedule_tick(id, gen, TickPhase::Poll, SimDuration::ZERO);
    }

    fn schedule_tick(&mut self, node: NodeId, gen: u64, phase: TickPhase, delay: SimDuration) {
        self.queue
            .schedule_in(delay, Event::MacTick { node, gen, phase });
    }

    fn on_tick(&mut self, id: NodeId, gen: u64, phase: TickPhase) {
        let now = self.queue.now();
        {
            let node = &self.nodes[id.0 as usize];
            if node.mac.gen != gen {
                return; // stale tick from a previous contention cycle
            }
            let MacState::Contending { .. } = node.mac.state else {
                return;
            };
        }
        // Carrier sense against the live medium.
        let (pos, ch) = {
            let n = &self.nodes[id.0 as usize];
            (n.pos, n.channel)
        };
        if let Some(busy_end) = self.medium.busy_for(&self.env, id, pos, ch, now) {
            // Busy: freeze the countdown, poll again when the sensed
            // transmission ends.
            let delay = busy_end.saturating_since(now);
            self.schedule_tick(id, gen, TickPhase::Poll, delay);
            return;
        }
        match phase {
            TickPhase::Poll => {
                // Idle again: wait a full DIFS before resuming the countdown.
                self.schedule_tick(id, gen, TickPhase::AfterDifs, self.cfg.difs);
            }
            TickPhase::AfterDifs | TickPhase::Slot => {
                let node = self.node(id);
                let MacState::Contending { remaining } = &mut node.mac.state else {
                    unreachable!("checked above");
                };
                if phase == TickPhase::Slot && *remaining > 0 {
                    *remaining -= 1;
                }
                if *remaining == 0 {
                    self.transmit_head(id);
                } else {
                    self.schedule_tick(id, gen, TickPhase::Slot, self.cfg.slot);
                }
            }
        }
    }

    fn transmit_head(&mut self, id: NodeId) {
        let now = self.queue.now();
        let (frame, rate, pos, ch, tx_dbm) = {
            let adapt = self.nodes[id.0 as usize].adapt;
            let rate = match self.nodes[id.0 as usize]
                .mac
                .queue
                .front()
                .expect("transmit with empty queue")
                .frame
                .dst
            {
                Address::Node(d) => adapt.select(self.link_snr_db(id, d)),
                // Broadcasts go at a basic rate every receiver can decode.
                Address::Broadcast => Rate::R2,
            };
            let n = &self.nodes[id.0 as usize];
            let job = n.mac.queue.front().unwrap();
            (job.frame.clone(), rate, n.pos, n.channel, n.tx_dbm)
        };
        let air = airtime(frame.wire_bits(), rate);
        let tx = self.medium.begin(Transmission {
            id: TxId(0),
            src: id,
            src_pos: pos,
            channel: ch,
            tx_dbm,
            rate,
            start: now,
            end: now + air,
            frame,
        });
        self.stats.node[id.0 as usize].tx_data_attempts += 1;
        self.node(id).mac.state = MacState::Transmitting;
        self.rec.count("net.mac.tx_attempts", 1);
        self.rec.event(
            now.as_nanos(),
            Layer::Resource,
            "mac.state.transmitting",
            id.0,
            air.as_nanos() as i64,
            0,
        );
        self.queue.schedule_at(now + air, Event::TxEnd { tx });
    }

    fn send_ack(&mut self, from: NodeId, to: NodeId, seq: u16) {
        let now = self.queue.now();
        // A half-duplex radio that is (or will be) transmitting cannot ACK.
        let start = now + self.cfg.sifs;
        let air = airtime(ACK_BYTES as u64 * 8, Rate::R2);
        if self.medium.was_transmitting(from, now, start + air) {
            return;
        }
        let n = &self.nodes[from.0 as usize];
        let tx = self.medium.begin(Transmission {
            id: TxId(0),
            src: from,
            src_pos: n.pos,
            channel: n.channel,
            tx_dbm: n.tx_dbm,
            rate: Rate::R2,
            start,
            end: start + air,
            frame: Frame {
                src: from,
                dst: Address::Node(to),
                kind: FrameKind::Ack,
                seq,
                payload: Bytes::new(),
            },
        });
        self.stats.node[from.0 as usize].tx_acks += 1;
        self.queue.schedule_at(start + air, Event::TxEnd { tx });
    }

    fn on_tx_end(&mut self, tx_id: TxId) {
        let now = self.queue.now();
        let Some(t) = self.medium.get(tx_id).cloned() else {
            return; // pruned (cannot happen before its TxEnd, but be safe)
        };
        match t.frame.kind {
            FrameKind::Data => self.finish_data(&t),
            FrameKind::Ack => self.finish_ack(&t),
        }
        // Periodically drop transmissions too old to overlap anything.
        self.prune_counter += 1;
        if self.prune_counter.is_multiple_of(64) {
            let horizon = SimTime::from_nanos(now.as_nanos().saturating_sub(50_000_000));
            self.medium.prune(horizon);
        }
    }

    fn receive_ok(&mut self, t: &Transmission, rx: NodeId) -> bool {
        // Fault plane: a powered-down endpoint (a sender crashing mid-air
        // corrupts its frame) or an active partition kills the frame before
        // any PHY consideration. These branches cannot trigger without an
        // active fault, so they never perturb faults-off runs.
        if !self.nodes[rx.0 as usize].up || !self.nodes[t.frame.src.0 as usize].up {
            if let Some(fp) = &mut self.faults {
                fp.stats.frames_lost_down += 1;
            }
            return false;
        }
        if let Some(fp) = &mut self.faults {
            if fp.partitioned(t.frame.src, rx) {
                fp.stats.frames_blocked_partition += 1;
                return false;
            }
        }
        // A radio can only decode frames on the channel it is tuned to
        // (adjacent channels interfere but are not demodulable).
        if self.nodes[rx.0 as usize].channel != t.channel {
            return false;
        }
        if self.medium.was_transmitting(rx, t.start, t.end) {
            return false; // half duplex
        }
        let pos = self.nodes[rx.0 as usize].pos;
        let Some(sinr) = self.medium.sinr_for(&self.env, t.id, rx, pos) else {
            return false;
        };
        let per = packet_error_rate(t.rate, sinr, t.frame.wire_bits());
        if self.rng.chance(per) {
            return false;
        }
        // Burst-loss window: an otherwise-successful reception is lost with
        // the scripted probability, drawn from the fault plane's own stream.
        if let Some(fp) = &mut self.faults {
            if fp.burst > 0.0 && fp.rng.chance(fp.burst) {
                fp.stats.frames_lost_burst += 1;
                return false;
            }
        }
        true
    }

    /// Is `src` still mid-transmission of exactly this frame? Always true
    /// in a fault-free run at `TxEnd` time; false when a crash tore the MAC
    /// down (and cleared its queue) while the frame was on the air.
    fn sender_active(&self, src: NodeId, seq: u16) -> bool {
        let node = &self.nodes[src.0 as usize];
        node.mac.state == MacState::Transmitting
            && node.mac.queue.front().map(|j| j.frame.seq) == Some(seq)
    }

    fn finish_data(&mut self, t: &Transmission) {
        let src = t.frame.src;
        match t.frame.dst {
            Address::Node(dst) => {
                let ok = self.receive_ok(t, dst);
                if ok {
                    self.send_ack(dst, src, t.frame.seq);
                    self.deliver(t, dst);
                }
                if !self.sender_active(src, t.frame.seq) {
                    return; // sender crashed mid-air; nothing awaits the ACK
                }
                // Sender now waits for the ACK (or times out). Even when
                // reception failed we must arm the timeout.
                let gen = {
                    let node = self.node(src);
                    node.mac.state = MacState::WaitAck { seq: t.frame.seq };
                    node.mac.bump_gen()
                };
                self.rec.event(
                    self.queue.now().as_nanos(),
                    Layer::Resource,
                    "mac.state.wait_ack",
                    src.0,
                    t.frame.seq as i64,
                    ok as i64,
                );
                let timeout = ack_timeout(&self.cfg);
                self.queue
                    .schedule_in(timeout, Event::AckTimeout { node: src, gen });
            }
            Address::Broadcast => {
                let receivers: Vec<NodeId> = (0..self.nodes.len() as u32)
                    .map(NodeId)
                    .filter(|&r| r != src)
                    .collect();
                for r in receivers {
                    if self.receive_ok(t, r) {
                        self.deliver(t, r);
                    }
                }
                // Single attempt; service complete (unless a crash already
                // tore the sender's queue down mid-air).
                if self.sender_active(src, t.frame.seq) {
                    self.complete_head(src, true);
                }
            }
        }
    }

    fn finish_ack(&mut self, t: &Transmission) {
        let Address::Node(data_sender) = t.frame.dst else {
            return;
        };
        if !self.receive_ok(t, data_sender) {
            return; // lost ACK: the sender's timeout will fire
        }
        let matches = {
            let node = &self.nodes[data_sender.0 as usize];
            node.mac.state == MacState::WaitAck { seq: t.frame.seq }
        };
        if !matches {
            return; // late or duplicate ACK
        }
        let now = self.queue.now();
        let service = {
            let node = self.node(data_sender);
            node.mac.bump_gen(); // invalidate the armed AckTimeout
            let job = node.mac.queue.front().expect("WaitAck with empty queue");
            now.saturating_since(job.enqueued_at)
        };
        self.stats.service_time.record(service.as_secs_f64());
        self.stats.node[data_sender.0 as usize].tx_completed += 1;
        self.rec.count("net.mac.tx_completed", 1);
        self.rec.observe("net.mac.service_time_s", service.as_secs_f64());
        self.complete_head(data_sender, true);
    }

    fn deliver(&mut self, t: &Transmission, rx: NodeId) {
        let src = t.frame.src;
        let is_dup = {
            let node = self.node(rx);
            node.dedup.get(&src) == Some(&t.frame.seq)
        };
        if is_dup {
            self.stats.node[rx.0 as usize].rx_duplicates += 1;
            return;
        }
        self.node(rx).dedup.insert(src, t.frame.seq);
        let s = &mut self.stats.node[rx.0 as usize];
        s.rx_delivered += 1;
        s.rx_bytes += t.frame.payload.len() as u64;
        self.stats.delivered_frames += 1;
        self.stats.delivered_bytes += t.frame.payload.len() as u64;
        self.rec.count("net.rx.delivered", 1);
        self.pending.push(AppCall::Packet {
            node: rx,
            from: src,
            payload: t.frame.payload.clone(),
        });
    }

    fn on_ack_timeout(&mut self, id: NodeId, gen: u64) {
        let cfg = self.cfg;
        {
            let node = &self.nodes[id.0 as usize];
            if node.mac.gen != gen || !matches!(node.mac.state, MacState::WaitAck { .. }) {
                return;
            }
        }
        self.stats.node[id.0 as usize].ack_timeouts += 1;
        self.rec.count("net.mac.ack_timeouts", 1);
        let (exhausted, retries) = {
            let node = self.node(id);
            let job = node.mac.queue.front_mut().expect("WaitAck with empty queue");
            job.retries += 1;
            (job.retries > cfg.retry_limit, job.retries)
        };
        if exhausted {
            self.stats.node[id.0 as usize].drops_retry += 1;
            self.rec.count("net.mac.drop.retry_limit", 1);
            self.rec.event(
                self.queue.now().as_nanos(),
                Layer::Resource,
                "mac.drop.retry_limit",
                id.0,
                retries as i64,
                0,
            );
            self.complete_head(id, false);
        } else {
            self.rec.count("net.mac.retries", 1);
            self.start_contention(id);
        }
    }

    /// Pop the head job, emit the right app callback, return to Idle and
    /// look for more work.
    fn complete_head(&mut self, id: NodeId, success: bool) {
        let job = {
            let node = self.node(id);
            node.mac.state = MacState::Idle;
            node.mac.bump_gen();
            node.mac.queue.pop_front().expect("complete with empty queue")
        };
        self.rec.event(
            self.queue.now().as_nanos(),
            Layer::Resource,
            "mac.state.idle",
            id.0,
            success as i64,
            0,
        );
        if success {
            self.pending.push(AppCall::Sent {
                node: id,
                to: job.frame.dst,
            });
        } else if let Address::Node(d) = job.frame.dst {
            self.pending.push(AppCall::SendFailed {
                node: id,
                to: d,
                payload: job.frame.payload,
            });
        }
        self.kick(id);
    }

    fn handle(&mut self, ev: Event) {
        match ev {
            Event::MacTick { node, gen, phase } => self.on_tick(node, gen, phase),
            Event::TxEnd { tx } => self.on_tx_end(tx),
            Event::AckTimeout { node, gen } => self.on_ack_timeout(node, gen),
            Event::AppTimer { node, token, epoch } => {
                let info = &self.nodes[node.0 as usize];
                if info.timer_epoch != epoch || !info.up {
                    // Armed before a crash/kill (or firing into a downed
                    // node): the epoch bump cancelled it lazily.
                    if let Some(fp) = &mut self.faults {
                        fp.stats.timers_suppressed += 1;
                    }
                    return;
                }
                self.pending.push(AppCall::Timer { node, token });
            }
            Event::MobilityTick { node } => self.on_mobility_tick(node),
            Event::WiredDeliver { from, to, payload } => {
                if !self.nodes[from.0 as usize].up || !self.nodes[to.0 as usize].up {
                    // A cable into a powered-down host delivers nothing. A
                    // live sender still learns its frame died — the same
                    // contract the radio keeps via retry exhaustion — so
                    // windowed senders can reclaim the in-flight slot.
                    if let Some(fp) = &mut self.faults {
                        fp.stats.frames_lost_down += 1;
                    }
                    if self.nodes[from.0 as usize].up {
                        self.pending.push(AppCall::SendFailed {
                            node: from,
                            to,
                            payload,
                        });
                    }
                    return;
                }
                self.stats.wired_frames += 1;
                self.stats.wired_bytes += payload.len() as u64;
                // Wired sends complete at delivery: the sender's `on_sent`
                // fires in the same batch as the receiver's `on_packet`,
                // giving windowed senders the completion edge the radio
                // path gets from its ACK.
                self.pending.push(AppCall::Sent {
                    node: from,
                    to: Address::Node(to),
                });
                self.pending.push(AppCall::Packet {
                    node: to,
                    from,
                    payload,
                });
            }
            Event::Fault { index } => self.apply_fault(index as usize),
        }
    }

    /// Apply the `idx`-th scheduled fault operation.
    fn apply_fault(&mut self, idx: usize) {
        let Some(fp) = self.faults.as_mut() else {
            return;
        };
        let op = fp.ops[idx].1;
        fp.stats.injected += 1;
        let now = self.queue.now().as_nanos();
        let (node, a, b) = match op {
            FaultOp::NodeDown { node, drop_state } => (node, drop_state as i64, 0),
            FaultOp::NodeUp { node }
            | FaultOp::ProcessKill { node }
            | FaultOp::ProcessRestart { node } => (node, 0, 0),
            FaultOp::PartitionStart { a, b } => (u32::MAX, a as i64, b as i64),
            FaultOp::BurstStart { loss } => (u32::MAX, (loss * 1_000.0) as i64, 0),
            FaultOp::ClockSkew { node, factor } => (node, (factor * 1_000.0) as i64, 0),
            FaultOp::PartitionEnd | FaultOp::BurstEnd => (u32::MAX, 0, 0),
        };
        self.rec.count("faults.injected", 1);
        self.rec
            .event(now, Layer::Physical, fault_event_name(&op), node, a, b);
        match op {
            FaultOp::NodeDown { node, drop_state } => self.node_down(NodeId(node), drop_state),
            FaultOp::NodeUp { node } => self.node_up(NodeId(node)),
            FaultOp::PartitionStart { a, b } => {
                self.faults.as_mut().unwrap().partitions.push((a, b));
            }
            FaultOp::PartitionEnd => {
                self.faults.as_mut().unwrap().partitions.pop();
            }
            FaultOp::BurstStart { loss } => self.faults.as_mut().unwrap().burst = loss,
            FaultOp::BurstEnd => self.faults.as_mut().unwrap().burst = 0.0,
            FaultOp::ClockSkew { node, factor } => {
                self.nodes[node as usize].skew = factor;
            }
            FaultOp::ProcessKill { node } => {
                let id = NodeId(node);
                self.node(id).timer_epoch += 1;
                self.faults.as_mut().unwrap().stats.process_kills += 1;
                self.pending.push(AppCall::Crash { node: id });
            }
            FaultOp::ProcessRestart { node } => {
                self.faults.as_mut().unwrap().stats.process_restarts += 1;
                self.pending.push(AppCall::Restart { node: NodeId(node) });
            }
        }
    }

    /// Power-fail a node: silence the radio, tear down the MAC (queued and
    /// in-flight frames die), cancel app timers via the epoch. With
    /// `drop_state` the app is notified through `on_crash` and its
    /// duplicate-suppression memory is wiped too.
    fn node_down(&mut self, id: NodeId, drop_state: bool) {
        let node = self.node(id);
        if !node.up {
            return;
        }
        node.up = false;
        node.timer_epoch += 1;
        let dropped = node.mac.queue.len() as u64;
        node.mac.queue.clear();
        node.mac.state = MacState::Idle;
        // Invalidate outstanding MacTick/AckTimeout events. The sequence
        // counter deliberately survives so late ACKs for pre-crash frames
        // can never be confused with post-restart traffic.
        node.mac.bump_gen();
        if drop_state {
            node.dedup.clear();
        }
        let fp = self.faults.as_mut().expect("fault op without a plane");
        fp.stats.node_crashes += 1;
        fp.stats.queued_frames_dropped += dropped;
        if drop_state {
            self.pending.push(AppCall::Crash { node: id });
        }
    }

    /// Restore a downed node and let its app recover via `on_restart`.
    fn node_up(&mut self, id: NodeId) {
        let node = self.node(id);
        if node.up {
            return;
        }
        node.up = true;
        self.faults
            .as_mut()
            .expect("fault op without a plane")
            .stats
            .node_restarts += 1;
        self.pending.push(AppCall::Restart { node: id });
    }

    /// Is there a cable directly between `a` and `b`?
    fn wired_link(&self, a: NodeId, b: NodeId) -> Option<WiredLink> {
        let key = (a.0.min(b.0), a.0.max(b.0));
        let link = self.wired_index.get(&key).map(|&i| self.wired[i as usize])?;
        debug_assert!(
            (link.a == a && link.b == b) || (link.a == b && link.b == a),
            "wired index out of sync with the cable table"
        );
        Some(link)
    }

    fn send_wired(&mut self, from: NodeId, to: NodeId, payload: Bytes) -> bool {
        let Some(link) = self.wired_link(from, to) else {
            return false;
        };
        let delay = link.latency + SimDuration::for_bits(payload.len() as u64 * 8, link.bps);
        self.queue
            .schedule_in(delay, Event::WiredDeliver { from, to, payload });
        true
    }

    fn on_mobility_tick(&mut self, id: NodeId) {
        let now = self.queue.now();
        let Some(path) = self.nodes[id.0 as usize].mobility.clone() else {
            return;
        };
        self.nodes[id.0 as usize].pos = path.position_at(now);
        if now < path.ends_at() {
            self.queue
                .schedule_in(path.update_period, Event::MobilityTick { node: id });
        }
    }
}

/// The simulated wireless network.
pub struct Network {
    core: Core,
    apps: Vec<Option<Box<dyn NetApp>>>,
    started: bool,
}

impl Network {
    /// Create a network inside the given radio environment.
    pub fn new(env: RadioEnvironment, cfg: MacConfig, seed: u64) -> Self {
        Network {
            core: Core {
                queue: EventQueue::new(),
                env,
                cfg,
                nodes: Vec::new(),
                medium: Medium::new(),
                rng: SimRng::new(seed),
                stats: NetStats::default(),
                pending: Vec::new(),
                prune_counter: 0,
                wired: Vec::new(),
                wired_index: HashMap::new(),
                prefer_wired: false,
                rec: Telemetry::Off,
                faults: None,
            },
            apps: Vec::new(),
            started: false,
        }
    }

    /// Cable two nodes together (the "traditional network" side of the
    /// pervasive system): reliable point-to-point delivery with the given
    /// latency and serialisation rate, independent of the radio medium.
    pub fn add_wired_link(&mut self, a: NodeId, b: NodeId, latency: SimDuration, bps: u64) {
        assert_ne!(a, b, "a cable needs two ends");
        assert!(bps > 0, "a zero-rate cable is a wall decoration");
        assert!(
            (a.0 as usize) < self.core.nodes.len() && (b.0 as usize) < self.core.nodes.len(),
            "both ends must exist"
        );
        let key = (a.0.min(b.0), a.0.max(b.0));
        let prev = self
            .core
            .wired_index
            .insert(key, self.core.wired.len() as u32);
        assert!(prev.is_none(), "nodes {a} and {b} are already cabled");
        self.core.wired.push(WiredLink { a, b, latency, bps });
    }

    /// Route unicast sends over a cable whenever one exists. Off by
    /// default: every existing scenario keeps its radio path byte for
    /// byte. The broadcast fan-out benchmark turns this on so a 10k-viewer
    /// star topology models a switched LAN instead of an impossible
    /// 10k-station CSMA cell.
    pub fn set_prefer_wired(&mut self, on: bool) {
        self.core.prefer_wired = on;
    }

    /// Add a node running `app`. Nodes must all be added before the first
    /// `run_*` call.
    pub fn add_node(&mut self, nc: NodeConfig, app: Box<dyn NetApp>) -> NodeId {
        assert!(!self.started, "nodes must be added before the network starts");
        let id = NodeId(self.core.nodes.len() as u32);
        let rng = self.core.rng.fork(id.key() ^ 0xA11CE);
        self.core.nodes.push(NodeInfo {
            pos: nc.pos,
            channel: nc.channel,
            tx_dbm: nc.tx_dbm,
            adapt: nc.adapt,
            mobility: nc.mobility,
            mac: MacNode::new(),
            dedup: HashMap::new(),
            rng,
            up: true,
            timer_epoch: 0,
            skew: 1.0,
        });
        self.core.stats.node.push(NodeStats::default());
        self.apps.push(Some(app));
        id
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.core.queue.now()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &NetStats {
        &self.core.stats
    }

    /// Attach a live telemetry recorder. MAC state transitions, retry/drop
    /// causes and service times are recorded from here on, and the event
    /// loop starts charging wall time per handler type.
    pub fn attach_telemetry(&mut self, cfg: TelemetryConfig) {
        self.core.rec = Telemetry::enabled(cfg);
    }

    /// The recorder (for direct recording or handle registration).
    pub fn telemetry_mut(&mut self) -> &mut Telemetry {
        &mut self.core.rec
    }

    /// Attach a deterministic fault schedule. Each operation is applied at
    /// its scripted instant; every random decision the injectors make
    /// (burst-loss coin flips) comes from the schedule's own seed, never the
    /// simulation RNG, so an *empty* schedule leaves the run byte-identical
    /// to one without a fault plane. Partition masks address node indices
    /// 0..64. Must be called before the first `run_*`.
    pub fn attach_faults(&mut self, schedule: &FaultSchedule) {
        assert!(
            !self.started,
            "attach the fault plane before the network starts"
        );
        assert!(
            self.core.faults.is_none(),
            "a fault schedule is already attached"
        );
        for (i, &(t, _)) in schedule.ops().iter().enumerate() {
            self.core
                .queue
                .schedule_at(SimTime::from_nanos(t), Event::Fault { index: i as u32 });
        }
        self.core.faults = Some(FaultPlane {
            ops: schedule.ops().to_vec(),
            rng: SimRng::new(schedule.seed()),
            partitions: Vec::new(),
            burst: 0.0,
            stats: FaultStats::default(),
        });
    }

    /// The fault plane's counters; `None` unless a schedule was attached.
    pub fn fault_stats(&self) -> Option<&FaultStats> {
        self.core.faults.as_ref().map(|fp| &fp.stats)
    }

    /// Is `node` currently powered (fault plane)? Always true without one.
    pub fn node_is_up(&self, node: NodeId) -> bool {
        self.core.nodes[node.0 as usize].up
    }

    /// Snapshot the recorder; `None` when telemetry was never attached.
    pub fn telemetry_snapshot(&self) -> Option<Snapshot> {
        self.core.rec.snapshot()
    }

    /// Borrow an application back as its concrete type (for post-run
    /// inspection in tests and experiments).
    pub fn app_as<T: NetApp>(&self, node: NodeId) -> Option<&T> {
        let app = self.apps[node.0 as usize].as_deref()?;
        (app as &dyn Any).downcast_ref::<T>()
    }

    /// Mutable variant of [`Network::app_as`].
    pub fn app_as_mut<T: NetApp>(&mut self, node: NodeId) -> Option<&mut T> {
        let app = self.apps[node.0 as usize].as_deref_mut()?;
        (app as &mut dyn Any).downcast_mut::<T>()
    }

    /// Mean interference-free SNR of the `a → b` link, dB.
    pub fn link_snr_db(&self, a: NodeId, b: NodeId) -> f64 {
        self.core.link_snr_db(a, b)
    }

    fn start(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        // Arm mobility before any app logic runs.
        for i in 0..self.core.nodes.len() {
            if self.core.nodes[i].mobility.is_some() {
                self.core.queue.schedule_now(Event::MobilityTick {
                    node: NodeId(i as u32),
                });
            }
        }
        for i in 0..self.apps.len() {
            self.with_app(NodeId(i as u32), |app, ctx| app.on_start(ctx));
        }
        self.drain_app_calls();
    }

    /// Current position of a node (moves if the node has a trajectory).
    pub fn position_of(&self, node: NodeId) -> Point {
        self.core.nodes[node.0 as usize].pos
    }

    fn with_app(&mut self, id: NodeId, f: impl FnOnce(&mut dyn NetApp, &mut NetCtx<'_>)) {
        let mut app = self.apps[id.0 as usize]
            .take()
            .expect("re-entrant app dispatch");
        let mut ctx = NetCtx {
            core: &mut self.core,
            node: id,
        };
        f(app.as_mut(), &mut ctx);
        self.apps[id.0 as usize] = Some(app);
    }

    fn drain_app_calls(&mut self) {
        while !self.core.pending.is_empty() {
            let calls = std::mem::take(&mut self.core.pending);
            for call in calls {
                match call {
                    AppCall::Packet {
                        node,
                        from,
                        payload,
                    } => self.with_app(node, |a, c| a.on_packet(c, from, &payload)),
                    AppCall::Timer { node, token } => {
                        self.with_app(node, |a, c| a.on_timer(c, token))
                    }
                    AppCall::Sent { node, to } => self.with_app(node, |a, c| a.on_sent(c, to)),
                    AppCall::SendFailed { node, to, payload } => {
                        self.with_app(node, |a, c| a.on_send_failed(c, to, &payload))
                    }
                    AppCall::Crash { node } => self.with_app(node, |a, c| a.on_crash(c)),
                    AppCall::Restart { node } => self.with_app(node, |a, c| a.on_restart(c)),
                }
            }
        }
    }

    /// Run the simulation until `deadline` (events at exactly `deadline`
    /// are processed).
    pub fn run_until(&mut self, deadline: SimTime) {
        self.start();
        loop {
            match self.core.queue.peek_time() {
                Some(t) if t <= deadline => {
                    let (_, ev) = self.core.queue.pop().expect("peeked event vanished");
                    self.dispatch(ev);
                }
                _ => break,
            }
        }
        self.core.queue.fast_forward(deadline);
    }

    /// Handle one event plus the app callbacks it generated, charging wall
    /// time to the event's handler type when telemetry is live. Wall time is
    /// profile-only and never feeds back into the simulation, so traced runs
    /// stay deterministic.
    fn dispatch(&mut self, ev: Event) {
        if self.core.rec.enabled() {
            let kind = ev.kind_name();
            // lint:allow(sim-wall-clock): self-profiling only — the nanos feed Snapshot's profile section, which deterministic_eq excludes (pinned by traced_profile_never_reaches_deterministic_sections)
            let t0 = Instant::now();
            self.core.handle(ev);
            self.drain_app_calls();
            self.core
                .rec
                .profile(kind, t0.elapsed().as_nanos() as u64);
        } else {
            self.core.handle(ev);
            self.drain_app_calls();
        }
    }

    /// Run for a span from the current time.
    pub fn run_for(&mut self, d: SimDuration) {
        let deadline = self.now() + d;
        self.run_until(deadline);
    }

    /// Run until the event queue is exhausted (careful with periodic apps).
    pub fn run_to_quiescence(&mut self, hard_deadline: SimTime) {
        self.start();
        while let Some(t) = self.core.queue.peek_time() {
            if t > hard_deadline {
                break;
            }
            let (_, ev) = self.core.queue.pop().expect("peeked event vanished");
            self.dispatch(ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aroma_sim::SimDuration;

    /// Minimal app: records received payloads with timestamps.
    #[derive(Default)]
    struct Sink {
        got: Vec<(SimTime, NodeId, Vec<u8>)>,
    }
    impl NetApp for Sink {
        fn on_packet(&mut self, ctx: &mut NetCtx<'_>, from: NodeId, payload: &Bytes) {
            self.got.push((ctx.now(), from, payload.to_vec()));
        }
    }

    /// Sends one frame at start, counts outcomes.
    struct OneShot {
        dst: Address,
        payload: Vec<u8>,
        sent_ok: u32,
        failed: u32,
    }
    impl OneShot {
        fn to(dst: Address, payload: &[u8]) -> Self {
            OneShot {
                dst,
                payload: payload.to_vec(),
                sent_ok: 0,
                failed: 0,
            }
        }
    }
    impl NetApp for OneShot {
        fn on_start(&mut self, ctx: &mut NetCtx<'_>) {
            let p = Bytes::from(self.payload.clone());
            ctx.send(self.dst, p);
        }
        fn on_sent(&mut self, _ctx: &mut NetCtx<'_>, _to: Address) {
            self.sent_ok += 1;
        }
        fn on_send_failed(&mut self, _ctx: &mut NetCtx<'_>, _to: NodeId, _p: &Bytes) {
            self.failed += 1;
        }
    }

    fn quiet_env() -> RadioEnvironment {
        RadioEnvironment {
            shadowing_sigma_db: 0.0,
            ..Default::default()
        }
    }

    fn two_node_net() -> (Network, NodeId, NodeId) {
        let mut net = Network::new(quiet_env(), MacConfig::default(), 1);
        let b = NodeConfig::at(Point::new(5.0, 0.0));
        let rx = net.add_node(b, Box::new(Sink::default()));
        let a = NodeConfig::at(Point::new(0.0, 0.0));
        let tx = net.add_node(
            a,
            Box::new(OneShot::to(Address::Node(rx), b"hello world")),
        );
        (net, tx, rx)
    }

    fn traced_two_node_run() -> Option<Snapshot> {
        let (mut net, _, _) = two_node_net();
        net.attach_telemetry(TelemetryConfig::default());
        net.run_for(SimDuration::from_millis(100));
        net.telemetry_snapshot()
    }

    #[test]
    fn telemetry_counters_track_mac_outcomes() {
        let snap = traced_two_node_run().expect("recorder attached");
        assert_eq!(snap.counter("net.mac.tx_completed"), 1);
        assert_eq!(snap.counter("net.rx.delivered"), 1);
        assert_eq!(snap.counter("net.mac.drop.retry_limit"), 0);
        let svc = snap.summary("net.mac.service_time_s").unwrap();
        assert_eq!(svc.count, 1);
        assert!(svc.min.unwrap() > 0.0);
        // The run processed MacTick and TxEnd events, so the profile has
        // wall-time entries for them.
        assert!(snap.profile.iter().any(|p| p.name == "MacTick"));
        assert!(snap.profile.iter().any(|p| p.name == "TxEnd"));
        // State-machine trace: contention precedes transmission precedes
        // idle, all at the Resource layer.
        let names: Vec<_> = snap.trace.iter().map(|e| e.name).collect();
        assert!(names.contains(&"mac.state.contending"));
        assert!(names.contains(&"mac.state.transmitting"));
        assert!(names.contains(&"mac.state.idle"));
        assert!(snap.trace.iter().all(|e| e.layer == Layer::Resource));
    }

    #[test]
    fn traced_runs_are_seed_stable() {
        let a = traced_two_node_run().unwrap();
        let b = traced_two_node_run().unwrap();
        // Wall-clock profile differs run to run; everything else must not.
        assert!(a.deterministic_eq(&b));
    }

    #[test]
    fn unicast_delivery_and_ack() {
        let (mut net, tx, rx) = two_node_net();
        net.run_for(SimDuration::from_millis(100));
        let sink = net.app_as::<Sink>(rx).unwrap();
        assert_eq!(sink.got.len(), 1);
        assert_eq!(sink.got[0].2, b"hello world");
        assert_eq!(sink.got[0].1, tx);
        let shot = net.app_as::<OneShot>(tx).unwrap();
        assert_eq!(shot.sent_ok, 1);
        assert_eq!(shot.failed, 0);
        assert_eq!(net.stats().delivered_frames, 1);
        assert_eq!(net.stats().node[tx.0 as usize].tx_completed, 1);
        assert_eq!(net.stats().service_time.count(), 1);
    }

    #[test]
    fn delivery_takes_realistic_airtime() {
        let (mut net, _, rx) = two_node_net();
        net.run_for(SimDuration::from_millis(100));
        let sink = net.app_as::<Sink>(rx).unwrap();
        let at = sink.got[0].0;
        // preamble 192 µs + DIFS + backoff: must be at least ~250 µs,
        // and surely below 10 ms on a clean 5 m link.
        assert!(at > SimTime::ZERO + SimDuration::from_micros(250), "{at}");
        assert!(at < SimTime::ZERO + SimDuration::from_millis(10), "{at}");
    }

    #[test]
    fn out_of_range_unicast_fails_after_retries() {
        let mut net = Network::new(quiet_env(), MacConfig::default(), 2);
        let rx = net.add_node(
            NodeConfig::at(Point::new(5_000.0, 0.0)),
            Box::new(Sink::default()),
        );
        let tx = net.add_node(
            NodeConfig::at(Point::new(0.0, 0.0)),
            Box::new(OneShot::to(Address::Node(rx), b"into the void")),
        );
        net.run_for(SimDuration::from_secs(2));
        let shot = net.app_as::<OneShot>(tx).unwrap();
        assert_eq!(shot.sent_ok, 0);
        assert_eq!(shot.failed, 1);
        let s = &net.stats().node[tx.0 as usize];
        assert_eq!(s.drops_retry, 1);
        // 1 initial + retry_limit retries
        assert_eq!(s.tx_data_attempts as u32, MacConfig::default().retry_limit + 1);
        assert_eq!(net.stats().delivered_frames, 0);
    }

    #[test]
    fn broadcast_reaches_all_in_range() {
        let mut net = Network::new(quiet_env(), MacConfig::default(), 3);
        let sinks: Vec<NodeId> = (0..3)
            .map(|i| {
                net.add_node(
                    NodeConfig::at(Point::new(3.0 + i as f64, 2.0)),
                    Box::new(Sink::default()),
                )
            })
            .collect();
        let _tx = net.add_node(
            NodeConfig::at(Point::new(0.0, 0.0)),
            Box::new(OneShot::to(Address::Broadcast, b"to all")),
        );
        net.run_for(SimDuration::from_millis(50));
        for s in sinks {
            let sink = net.app_as::<Sink>(s).unwrap();
            assert_eq!(sink.got.len(), 1, "node {s} missed the broadcast");
        }
    }

    #[test]
    fn broadcast_needs_no_ack() {
        let mut net = Network::new(quiet_env(), MacConfig::default(), 4);
        let _rx = net.add_node(NodeConfig::at(Point::new(3.0, 0.0)), Box::new(Sink::default()));
        let tx = net.add_node(
            NodeConfig::at(Point::new(0.0, 0.0)),
            Box::new(OneShot::to(Address::Broadcast, b"x")),
        );
        net.run_for(SimDuration::from_millis(50));
        assert_eq!(net.app_as::<OneShot>(tx).unwrap().sent_ok, 1);
        assert_eq!(net.stats().node[tx.0 as usize].tx_data_attempts, 1);
        assert_eq!(net.stats().total_ack_timeouts(), 0);
    }

    #[test]
    fn timers_fire_with_token() {
        struct TimerApp {
            fired: Vec<(SimTime, u64)>,
        }
        impl NetApp for TimerApp {
            fn on_start(&mut self, ctx: &mut NetCtx<'_>) {
                ctx.set_timer(SimDuration::from_millis(5), 42);
                ctx.set_timer(SimDuration::from_millis(1), 7);
            }
            fn on_timer(&mut self, ctx: &mut NetCtx<'_>, token: u64) {
                self.fired.push((ctx.now(), token));
            }
        }
        let mut net = Network::new(quiet_env(), MacConfig::default(), 5);
        let n = net.add_node(
            NodeConfig::at(Point::new(0.0, 0.0)),
            Box::new(TimerApp { fired: vec![] }),
        );
        net.run_for(SimDuration::from_millis(10));
        let app = net.app_as::<TimerApp>(n).unwrap();
        assert_eq!(app.fired.len(), 2);
        assert_eq!(app.fired[0].1, 7);
        assert_eq!(app.fired[1].1, 42);
        assert_eq!(app.fired[1].0, SimTime::ZERO + SimDuration::from_millis(5));
    }

    #[test]
    fn cancelled_timer_does_not_fire() {
        struct CancelApp {
            fired: u32,
        }
        impl NetApp for CancelApp {
            fn on_start(&mut self, ctx: &mut NetCtx<'_>) {
                let id = ctx.set_timer(SimDuration::from_millis(5), 1);
                assert!(ctx.cancel_timer(id));
            }
            fn on_timer(&mut self, _ctx: &mut NetCtx<'_>, _t: u64) {
                self.fired += 1;
            }
        }
        let mut net = Network::new(quiet_env(), MacConfig::default(), 6);
        let n = net.add_node(
            NodeConfig::at(Point::new(0.0, 0.0)),
            Box::new(CancelApp { fired: 0 }),
        );
        net.run_for(SimDuration::from_millis(20));
        assert_eq!(net.app_as::<CancelApp>(n).unwrap().fired, 0);
    }

    #[test]
    fn queue_overflow_is_counted_and_reported() {
        struct Flooder {
            dst: NodeId,
            accepted: u32,
            rejected: u32,
        }
        impl NetApp for Flooder {
            fn on_start(&mut self, ctx: &mut NetCtx<'_>) {
                for _ in 0..100 {
                    if ctx.send(Address::Node(self.dst), Bytes::from_static(&[0u8; 100])) {
                        self.accepted += 1;
                    } else {
                        self.rejected += 1;
                    }
                }
            }
        }
        let cfg = MacConfig {
            queue_cap: 10,
            ..Default::default()
        };
        let mut net = Network::new(quiet_env(), cfg, 7);
        let rx = net.add_node(NodeConfig::at(Point::new(3.0, 0.0)), Box::new(Sink::default()));
        let tx = net.add_node(
            NodeConfig::at(Point::new(0.0, 0.0)),
            Box::new(Flooder {
                dst: rx,
                accepted: 0,
                rejected: 0,
            }),
        );
        net.run_for(SimDuration::from_millis(1));
        let f = net.app_as::<Flooder>(tx).unwrap();
        assert_eq!(f.accepted, 10);
        assert_eq!(f.rejected, 90);
        assert_eq!(net.stats().node[tx.0 as usize].drops_queue, 90);
    }

    #[test]
    fn two_senders_share_the_channel() {
        // Both frames eventually get through: CSMA/CA arbitrates.
        let mut net = Network::new(quiet_env(), MacConfig::default(), 8);
        let rx = net.add_node(NodeConfig::at(Point::new(0.0, 0.0)), Box::new(Sink::default()));
        let _a = net.add_node(
            NodeConfig::at(Point::new(3.0, 0.0)),
            Box::new(OneShot::to(Address::Node(rx), b"from a")),
        );
        let _b = net.add_node(
            NodeConfig::at(Point::new(-3.0, 0.0)),
            Box::new(OneShot::to(Address::Node(rx), b"from b")),
        );
        net.run_for(SimDuration::from_millis(100));
        let sink = net.app_as::<Sink>(rx).unwrap();
        assert_eq!(sink.got.len(), 2);
    }

    #[test]
    fn determinism_same_seed_same_outcome() {
        let run = |seed: u64| -> (u64, u64) {
            let mut net = Network::new(quiet_env(), MacConfig::default(), seed);
            let rx = net.add_node(NodeConfig::at(Point::new(4.0, 0.0)), Box::new(Sink::default()));
            for i in 0..4 {
                net.add_node(
                    NodeConfig::at(Point::new(i as f64, 1.0)),
                    Box::new(OneShot::to(Address::Node(rx), b"ping")),
                );
            }
            net.run_for(SimDuration::from_millis(200));
            (
                net.stats().delivered_frames,
                net.stats().total_tx_attempts(),
            )
        };
        assert_eq!(run(99), run(99));
        // And time never went backwards / nothing scheduled in the past:
        // covered by debug_assert inside; this run exercises it.
    }

    #[test]
    fn link_snr_is_symmetric_and_decays() {
        let mut net = Network::new(quiet_env(), MacConfig::default(), 10);
        let a = net.add_node(NodeConfig::at(Point::new(0.0, 0.0)), Box::new(Sink::default()));
        let b = net.add_node(NodeConfig::at(Point::new(5.0, 0.0)), Box::new(Sink::default()));
        let c = net.add_node(NodeConfig::at(Point::new(50.0, 0.0)), Box::new(Sink::default()));
        assert_eq!(net.link_snr_db(a, b), net.link_snr_db(b, a));
        assert!(net.link_snr_db(a, b) > net.link_snr_db(a, c));
    }

    #[test]
    #[should_panic(expected = "cannot unicast to itself")]
    fn self_send_rejected() {
        struct SelfSend;
        impl NetApp for SelfSend {
            fn on_start(&mut self, ctx: &mut NetCtx<'_>) {
                let me = ctx.node();
                ctx.send(Address::Node(me), Bytes::new());
            }
        }
        let mut net = Network::new(quiet_env(), MacConfig::default(), 11);
        net.add_node(NodeConfig::at(Point::new(0.0, 0.0)), Box::new(SelfSend));
        net.run_for(SimDuration::from_millis(1));
    }

    #[test]
    fn wired_preferred_unicast_rides_the_cable() {
        let mut net = Network::new(quiet_env(), MacConfig::default(), 21);
        let rx = net.add_node(NodeConfig::at(Point::new(5.0, 0.0)), Box::new(Sink::default()));
        let tx = net.add_node(
            NodeConfig::at(Point::new(0.0, 0.0)),
            Box::new(OneShot::to(Address::Node(rx), b"over copper")),
        );
        net.add_wired_link(tx, rx, SimDuration::from_micros(50), 1_000_000_000);
        net.set_prefer_wired(true);
        net.run_for(SimDuration::from_millis(10));
        assert_eq!(net.stats().wired_frames, 1);
        assert_eq!(net.stats().node[tx.0 as usize].tx_data_attempts, 0);
        let sink = net.app_as::<Sink>(rx).unwrap();
        assert_eq!(sink.got.len(), 1);
        assert_eq!(sink.got[0].2, b"over copper");
        // The sender's completion fires at delivery, like the radio ACK.
        assert_eq!(net.app_as::<OneShot>(tx).unwrap().sent_ok, 1);
    }

    #[test]
    fn prefer_wired_is_opt_in_radio_by_default() {
        let mut net = Network::new(quiet_env(), MacConfig::default(), 22);
        let rx = net.add_node(NodeConfig::at(Point::new(5.0, 0.0)), Box::new(Sink::default()));
        let tx = net.add_node(
            NodeConfig::at(Point::new(0.0, 0.0)),
            Box::new(OneShot::to(Address::Node(rx), b"airborne")),
        );
        net.add_wired_link(tx, rx, SimDuration::from_micros(50), 1_000_000_000);
        net.run_for(SimDuration::from_millis(10));
        // The cable exists but the flag is off: the frame took the radio.
        assert_eq!(net.stats().wired_frames, 0);
        assert!(net.stats().node[tx.0 as usize].tx_data_attempts > 0);
        assert_eq!(net.app_as::<Sink>(rx).unwrap().got.len(), 1);
    }

    #[test]
    fn mac_queue_space_counts_down_with_accepted_sends() {
        struct SpaceProbe {
            dst: NodeId,
            observed: Vec<usize>,
        }
        impl NetApp for SpaceProbe {
            fn on_start(&mut self, ctx: &mut NetCtx<'_>) {
                self.observed.push(ctx.mac_queue_space());
                for _ in 0..3 {
                    assert!(ctx.send(Address::Node(self.dst), Bytes::from_static(&[1u8; 16])));
                    self.observed.push(ctx.mac_queue_space());
                }
            }
        }
        let cfg = MacConfig {
            queue_cap: 10,
            ..Default::default()
        };
        let mut net = Network::new(quiet_env(), cfg, 23);
        let rx = net.add_node(NodeConfig::at(Point::new(3.0, 0.0)), Box::new(Sink::default()));
        let tx = net.add_node(
            NodeConfig::at(Point::new(0.0, 0.0)),
            Box::new(SpaceProbe {
                dst: rx,
                observed: vec![],
            }),
        );
        net.run_for(SimDuration::from_millis(1));
        let probe = net.app_as::<SpaceProbe>(tx).unwrap();
        assert_eq!(probe.observed, vec![10, 9, 8, 7]);
    }

    #[test]
    fn wired_send_into_downed_host_fails_back_to_the_sender() {
        let mut net = Network::new(quiet_env(), MacConfig::default(), 24);
        let rx = net.add_node(NodeConfig::at(Point::new(5.0, 0.0)), Box::new(Sink::default()));
        let tx = net.add_node(
            NodeConfig::at(Point::new(0.0, 0.0)),
            Box::new(OneShot::to(Address::Node(rx), b"doomed")),
        );
        // 1 ms of cable latency; the receiver dies at 0.5 ms, before the
        // frame lands.
        net.add_wired_link(tx, rx, SimDuration::from_millis(1), 1_000_000_000);
        net.set_prefer_wired(true);
        let schedule = FaultSchedule::builder(9)
            .power_cycle(500_000, 50_000_000, rx.0)
            .build();
        net.attach_faults(&schedule);
        net.run_for(SimDuration::from_millis(10));
        let shot = net.app_as::<OneShot>(tx).unwrap();
        assert_eq!(shot.sent_ok, 0);
        assert_eq!(shot.failed, 1);
        assert_eq!(net.app_as::<Sink>(rx).unwrap().got.len(), 0);
    }

    #[test]
    #[should_panic(expected = "already cabled")]
    fn duplicate_cable_rejected() {
        let mut net = Network::new(quiet_env(), MacConfig::default(), 25);
        let a = net.add_node(NodeConfig::at(Point::new(0.0, 0.0)), Box::new(Sink::default()));
        let b = net.add_node(NodeConfig::at(Point::new(5.0, 0.0)), Box::new(Sink::default()));
        net.add_wired_link(a, b, SimDuration::from_micros(50), 1_000_000);
        net.add_wired_link(b, a, SimDuration::from_micros(50), 1_000_000);
    }

    #[test]
    #[should_panic(expected = "exceeds MTU")]
    fn oversized_payload_rejected() {
        struct Jumbo {
            dst: NodeId,
        }
        impl NetApp for Jumbo {
            fn on_start(&mut self, ctx: &mut NetCtx<'_>) {
                ctx.send(Address::Node(self.dst), Bytes::from(vec![0u8; MTU_BYTES + 1]));
            }
        }
        let mut net = Network::new(quiet_env(), MacConfig::default(), 12);
        let rx = net.add_node(NodeConfig::at(Point::new(1.0, 0.0)), Box::new(Sink::default()));
        net.add_node(NodeConfig::at(Point::new(0.0, 0.0)), Box::new(Jumbo { dst: rx }));
        net.run_for(SimDuration::from_millis(1));
    }
}
