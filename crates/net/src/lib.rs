//! # aroma-net — event-driven 2.4 GHz wireless LAN simulator
//!
//! The Aroma Adapter "communicates via a 2.4 GHz wireless LAN PCMCIA card",
//! and two of the paper's layer analyses hinge on that link's behaviour: the
//! physical layer's *"relatively low bandwidth of current wireless
//! networking adapters … prevents us from displaying rapid animation"* (E1)
//! and the environment layer's concern about *"a high concentration of
//! [2.4 GHz] devices"* (E2). This crate is the substitute for that hardware:
//! an 802.11b-flavoured MAC/PHY simulator faithful to the mechanisms those
//! observations depend on —
//!
//! * **PHY** ([`phy`]) — DSSS rate set (1 / 2 / 5.5 / 11 Mbit/s), SINR
//!   thresholds, long-preamble overhead, a smooth SINR→packet-error-rate
//!   model, and SNR-based rate selection (with a fixed-rate ablation arm).
//! * **MAC** ([`mac`]) — CSMA/CA: DIFS deference, slotted binary-exponential
//!   backoff with freezing, SIFS-spaced ACKs, retry limit, duplicate
//!   detection. Broadcasts are unacknowledged single-shot, as in the
//!   standard.
//! * **Medium** ([`medium`]) — tracks concurrent transmissions; carrier
//!   sense and receiver SINR both derive from `aroma-env` propagation
//!   (path loss, walls, shadowing, channel overlap), so hidden terminals and
//!   adjacent-channel leakage emerge rather than being scripted.
//! * **Network** ([`network`]) — the event loop tying it together, plus the
//!   [`NetApp`] trait and [`NetCtx`] handle through which the higher
//!   substrates (discovery, VNC, the Smart Projector) implement protocols.
//! * **Traffic** ([`traffic`]) — reusable source/sink/echo applications for
//!   load generation and tests.
//!
//! Everything is deterministic given the network seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod frame;
pub mod mac;
pub mod medium;
pub mod mobility;
pub mod network;
pub mod phy;
pub mod traffic;

pub use frame::{Address, Frame, FrameKind, NodeId, MTU_BYTES};
pub use mac::MacConfig;
pub use mobility::MobilityPath;
pub use network::{FaultStats, NetApp, NetCtx, NetStats, Network, NodeConfig};
pub use phy::{Rate, RateAdaptation};
