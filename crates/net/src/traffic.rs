//! Reusable traffic applications: sources, sinks and an echo responder.
//!
//! These are the workhorses of the interference experiments (E2): a
//! [`PoissonSource`] models a background 2.4 GHz device with open-loop load,
//! a [`SaturatedSource`] models a device with always-full buffers (the
//! worst-case "high concentration of devices" regime), and a
//! [`CountingSink`] measures what actually arrives.

use crate::frame::{Address, NodeId};
use crate::network::{NetApp, NetCtx};
use aroma_sim::stats::RateMeter;
use aroma_sim::{SimDuration, SimTime};
use bytes::Bytes;

const TIMER_NEXT_SEND: u64 = 1;

/// Open-loop sender: frames of a fixed size to one destination with
/// exponential inter-arrival times.
pub struct PoissonSource {
    /// Destination.
    pub dst: Address,
    /// Payload size per frame, bytes.
    pub frame_bytes: usize,
    /// Mean inter-arrival time.
    pub mean_interval: SimDuration,
    /// Frames offered to the MAC.
    pub offered: u64,
    /// Frames the MAC accepted (queue not full).
    pub accepted: u64,
    /// Frames confirmed sent (ACKed / broadcast completed).
    pub completed: u64,
    /// Frames that exhausted retries.
    pub failed: u64,
    /// Stop offering after this many frames (`None` = unbounded).
    pub limit: Option<u64>,
}

impl PoissonSource {
    /// A source sending `frame_bytes`-byte frames to `dst` at `rate_fps`
    /// frames per second on average.
    pub fn new(dst: Address, frame_bytes: usize, rate_fps: f64) -> Self {
        assert!(rate_fps > 0.0, "rate must be positive");
        PoissonSource {
            dst,
            frame_bytes,
            mean_interval: SimDuration::from_secs_f64(1.0 / rate_fps),
            offered: 0,
            accepted: 0,
            completed: 0,
            failed: 0,
            limit: None,
        }
    }

    fn schedule_next(&self, ctx: &mut NetCtx<'_>) {
        let mean = self.mean_interval.as_secs_f64();
        let wait = SimDuration::from_secs_f64(ctx.rng().exponential(mean));
        ctx.set_timer(wait, TIMER_NEXT_SEND);
    }

    fn fire(&mut self, ctx: &mut NetCtx<'_>) {
        if let Some(limit) = self.limit {
            if self.offered >= limit {
                return;
            }
        }
        self.offered += 1;
        let payload = Bytes::from(vec![0xAA; self.frame_bytes]);
        if ctx.send(self.dst, payload) {
            self.accepted += 1;
        }
        self.schedule_next(ctx);
    }
}

impl NetApp for PoissonSource {
    fn on_start(&mut self, ctx: &mut NetCtx<'_>) {
        self.schedule_next(ctx);
    }
    fn on_timer(&mut self, ctx: &mut NetCtx<'_>, token: u64) {
        if token == TIMER_NEXT_SEND {
            self.fire(ctx);
        }
    }
    fn on_sent(&mut self, _ctx: &mut NetCtx<'_>, _to: Address) {
        self.completed += 1;
    }
    fn on_send_failed(&mut self, _ctx: &mut NetCtx<'_>, _to: NodeId, _p: &Bytes) {
        self.failed += 1;
    }
}

/// Closed-loop sender that keeps the MAC queue topped up: as soon as a frame
/// completes (or fails), it offers another. Models a saturated device.
pub struct SaturatedSource {
    /// Destination.
    pub dst: Address,
    /// Payload size per frame, bytes.
    pub frame_bytes: usize,
    /// How many frames to keep in flight / queued.
    pub window: usize,
    /// Frames confirmed sent.
    pub completed: u64,
    /// Frames that exhausted retries.
    pub failed: u64,
}

impl SaturatedSource {
    /// A saturated source with a 4-frame window.
    pub fn new(dst: Address, frame_bytes: usize) -> Self {
        SaturatedSource {
            dst,
            frame_bytes,
            window: 4,
            completed: 0,
            failed: 0,
        }
    }

    fn top_up(&mut self, ctx: &mut NetCtx<'_>) {
        // Offer one replacement frame; the window is maintained because every
        // completion/failure triggers a top-up.
        let payload = Bytes::from(vec![0x55; self.frame_bytes]);
        ctx.send(self.dst, payload);
    }
}

impl NetApp for SaturatedSource {
    fn on_start(&mut self, ctx: &mut NetCtx<'_>) {
        for _ in 0..self.window {
            self.top_up(ctx);
        }
    }
    fn on_sent(&mut self, ctx: &mut NetCtx<'_>, _to: Address) {
        self.completed += 1;
        self.top_up(ctx);
    }
    fn on_send_failed(&mut self, ctx: &mut NetCtx<'_>, _to: NodeId, _p: &Bytes) {
        self.failed += 1;
        self.top_up(ctx);
    }
}

/// Receiver that counts frames/bytes and measures arrival rate.
#[derive(Default)]
pub struct CountingSink {
    /// Frames received.
    pub frames: u64,
    /// Payload bytes received.
    pub bytes: u64,
    /// Arrival-rate meter (units = bytes).
    pub meter: RateMeter,
    /// Timestamp of the last arrival.
    pub last_arrival: Option<SimTime>,
}

impl NetApp for CountingSink {
    fn on_packet(&mut self, ctx: &mut NetCtx<'_>, _from: NodeId, payload: &Bytes) {
        self.frames += 1;
        self.bytes += payload.len() as u64;
        self.meter.record(ctx.now(), payload.len() as f64);
        self.last_arrival = Some(ctx.now());
    }
}

/// Replies to every received frame with the same payload (RTT probes).
#[derive(Default)]
pub struct EchoResponder {
    /// Frames echoed.
    pub echoed: u64,
}

impl NetApp for EchoResponder {
    fn on_packet(&mut self, ctx: &mut NetCtx<'_>, from: NodeId, payload: &Bytes) {
        self.echoed += 1;
        ctx.send(Address::Node(from), payload.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mac::MacConfig;
    use crate::network::{Network, NodeConfig};
    use aroma_env::radio::RadioEnvironment;
    use aroma_env::space::Point;

    fn quiet() -> RadioEnvironment {
        RadioEnvironment {
            shadowing_sigma_db: 0.0,
            ..Default::default()
        }
    }

    #[test]
    fn poisson_source_offers_at_configured_rate() {
        let mut net = Network::new(quiet(), MacConfig::default(), 21);
        let rx = net.add_node(
            NodeConfig::at(Point::new(3.0, 0.0)),
            Box::new(CountingSink::default()),
        );
        let tx = net.add_node(
            NodeConfig::at(Point::new(0.0, 0.0)),
            Box::new(PoissonSource::new(Address::Node(rx), 200, 100.0)),
        );
        net.run_for(SimDuration::from_secs(2));
        let src = net.app_as::<PoissonSource>(tx).unwrap();
        // ~200 expected; Poisson 3-sigma ≈ ±42.
        assert!(
            (140..=260).contains(&src.offered),
            "offered {}",
            src.offered
        );
        let sink = net.app_as::<CountingSink>(rx).unwrap();
        assert_eq!(sink.frames, src.completed);
        assert!(src.completed > 0);
    }

    #[test]
    fn poisson_source_respects_limit() {
        let mut net = Network::new(quiet(), MacConfig::default(), 22);
        let rx = net.add_node(
            NodeConfig::at(Point::new(3.0, 0.0)),
            Box::new(CountingSink::default()),
        );
        let mut src = PoissonSource::new(Address::Node(rx), 100, 1000.0);
        src.limit = Some(5);
        let tx = net.add_node(NodeConfig::at(Point::new(0.0, 0.0)), Box::new(src));
        net.run_for(SimDuration::from_secs(1));
        assert_eq!(net.app_as::<PoissonSource>(tx).unwrap().offered, 5);
        assert_eq!(net.app_as::<CountingSink>(rx).unwrap().frames, 5);
    }

    #[test]
    fn saturated_source_fills_the_pipe() {
        let mut net = Network::new(quiet(), MacConfig::default(), 23);
        let rx = net.add_node(
            NodeConfig::at(Point::new(3.0, 0.0)),
            Box::new(CountingSink::default()),
        );
        let tx = net.add_node(
            NodeConfig::at(Point::new(0.0, 0.0)),
            Box::new(SaturatedSource::new(Address::Node(rx), 1000)),
        );
        net.run_for(SimDuration::from_secs(1));
        let sink = net.app_as::<CountingSink>(rx).unwrap();
        // A clean 3 m link adapts to 11 Mbps; one saturated sender should
        // push several hundred 1000-byte frames per second.
        assert!(sink.frames > 300, "only {} frames in 1 s", sink.frames);
        let src = net.app_as::<SaturatedSource>(tx).unwrap();
        assert_eq!(src.failed, 0);
        assert_eq!(src.completed, sink.frames);
    }

    #[test]
    fn echo_responder_round_trips() {
        let mut net = Network::new(quiet(), MacConfig::default(), 24);
        let echo = net.add_node(
            NodeConfig::at(Point::new(3.0, 0.0)),
            Box::new(EchoResponder::default()),
        );
        let probe = net.add_node(
            NodeConfig::at(Point::new(0.0, 0.0)),
            Box::new(CountingSink::default()),
        );
        // A sink doesn't send; bolt a one-frame Poisson source onto a third
        // node aimed at the echoer, with replies going back to it.
        let mut src = PoissonSource::new(Address::Node(echo), 64, 1000.0);
        src.limit = Some(3);
        let tx = net.add_node(NodeConfig::at(Point::new(0.0, 1.0)), Box::new(src));
        net.run_for(SimDuration::from_secs(1));
        assert_eq!(net.app_as::<EchoResponder>(echo).unwrap().echoed, 3);
        // Echoes went back to the Poisson node, not the idle sink.
        assert_eq!(net.app_as::<CountingSink>(probe).unwrap().frames, 0);
        assert_eq!(net.stats().node[tx.0 as usize].rx_delivered, 3);
    }

    #[test]
    fn sink_meter_tracks_rate() {
        let mut net = Network::new(quiet(), MacConfig::default(), 25);
        let rx = net.add_node(
            NodeConfig::at(Point::new(3.0, 0.0)),
            Box::new(CountingSink::default()),
        );
        let _tx = net.add_node(
            NodeConfig::at(Point::new(0.0, 0.0)),
            Box::new(SaturatedSource::new(Address::Node(rx), 1400)),
        );
        net.run_for(SimDuration::from_secs(1));
        let sink = net.app_as::<CountingSink>(rx).unwrap();
        let bps = sink.meter.rate() * 8.0;
        // Goodput on a clean 11 Mbps link with MAC overhead: 4–8 Mbit/s.
        assert!(bps > 3e6, "goodput {bps}");
        assert!(bps < 11e6, "goodput {bps} exceeds channel rate");
    }
}
