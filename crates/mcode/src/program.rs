//! Validated program container and its wire format.
//!
//! Programs arriving over the network (as service-proxy blobs) are decoded
//! and **validated once**, so the interpreter never needs to re-check jump
//! targets or local indices on the hot path — and malformed mobile code is
//! rejected before it runs at all.

use crate::isa::{DecodeError, Op, MAX_LOCALS};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Why a decoded instruction sequence is not a runnable program.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ValidateError {
    /// A jump targets an instruction index ≥ program length.
    JumpOutOfRange {
        /// Instruction index of the offending jump.
        at: usize,
        /// Its target.
        target: u16,
    },
    /// A local slot index ≥ [`MAX_LOCALS`].
    LocalOutOfRange {
        /// Instruction index.
        at: usize,
        /// The slot.
        slot: u8,
    },
    /// The program is empty.
    Empty,
    /// The program exceeds the u16-addressable instruction space.
    TooLong,
}

/// Wire-format or structural failure while accepting foreign code.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProgramError {
    /// Byte-level decode failure.
    Decode(DecodeError),
    /// Structural validation failure.
    Validate(ValidateError),
}

/// A validated, immutable program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Program {
    ops: Vec<Op>,
}

impl Program {
    /// Validate an instruction sequence into a program.
    pub fn new(ops: Vec<Op>) -> Result<Program, ValidateError> {
        if ops.is_empty() {
            return Err(ValidateError::Empty);
        }
        if ops.len() > u16::MAX as usize {
            return Err(ValidateError::TooLong);
        }
        for (at, op) in ops.iter().enumerate() {
            match *op {
                Op::Jmp(t) | Op::Jz(t) | Op::Jnz(t) if t as usize >= ops.len() => {
                    return Err(ValidateError::JumpOutOfRange { at, target: t });
                }
                Op::Store(slot) | Op::Load(slot) if slot >= MAX_LOCALS => {
                    return Err(ValidateError::LocalOutOfRange { at, slot });
                }
                _ => {}
            }
        }
        Ok(Program { ops })
    }

    /// The instructions.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Always false (validation rejects empty programs); present for API
    /// completeness.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Serialise to proxy bytes (magic + count + ops).
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(4 + self.ops.len() * 3);
        buf.put_u8(0xAC); // "Aroma Code"
        buf.put_u16(self.ops.len() as u16);
        for op in &self.ops {
            op.encode_into(&mut buf);
        }
        buf.freeze()
    }

    /// Decode and validate proxy bytes.
    pub fn decode(mut bytes: Bytes) -> Result<Program, ProgramError> {
        if bytes.remaining() < 3 {
            return Err(ProgramError::Decode(DecodeError::Truncated));
        }
        let magic = bytes.get_u8();
        if magic != 0xAC {
            return Err(ProgramError::Decode(DecodeError::BadOpcode(magic)));
        }
        let n = bytes.get_u16() as usize;
        let mut ops = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            ops.push(Op::decode_from(&mut bytes).map_err(ProgramError::Decode)?);
        }
        // Foreign code must parse exactly: leftover bytes mean a framing
        // bug or a smuggled payload riding behind the program.
        if bytes.remaining() > 0 {
            return Err(ProgramError::Decode(DecodeError::TrailingBytes {
                remaining: bytes.remaining(),
            }));
        }
        Program::new(ops).map_err(ProgramError::Validate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_program_accepted() {
        let p = Program::new(vec![Op::PushI(1), Op::PushI(2), Op::Add, Op::Halt]).unwrap();
        assert_eq!(p.len(), 4);
        assert!(!p.is_empty());
    }

    #[test]
    fn empty_rejected() {
        assert_eq!(Program::new(vec![]), Err(ValidateError::Empty));
    }

    #[test]
    fn wild_jump_rejected() {
        let e = Program::new(vec![Op::Jmp(5), Op::Halt]).unwrap_err();
        assert_eq!(e, ValidateError::JumpOutOfRange { at: 0, target: 5 });
        // Jump to the last instruction is fine.
        assert!(Program::new(vec![Op::Jmp(1), Op::Halt]).is_ok());
    }

    #[test]
    fn wild_local_rejected() {
        let e = Program::new(vec![Op::Load(MAX_LOCALS), Op::Halt]).unwrap_err();
        assert_eq!(
            e,
            ValidateError::LocalOutOfRange {
                at: 0,
                slot: MAX_LOCALS
            }
        );
        assert!(Program::new(vec![Op::Load(MAX_LOCALS - 1), Op::Halt]).is_ok());
    }

    #[test]
    fn encode_decode_round_trip() {
        let p = Program::new(vec![
            Op::Arg(0),
            Op::PushI(100),
            Op::Mul,
            Op::PushI(255),
            Op::Min,
            Op::Halt,
        ])
        .unwrap();
        let decoded = Program::decode(p.encode()).unwrap();
        assert_eq!(decoded, p);
    }

    #[test]
    fn bad_magic_rejected() {
        let p = Program::new(vec![Op::Halt]).unwrap();
        let mut raw = p.encode().to_vec();
        raw[0] = 0x00;
        assert!(matches!(
            Program::decode(Bytes::from(raw)),
            Err(ProgramError::Decode(DecodeError::BadOpcode(0)))
        ));
    }

    #[test]
    fn truncated_stream_rejected() {
        let p = Program::new(vec![Op::PushI(7), Op::Halt]).unwrap();
        let full = p.encode();
        for cut in 0..full.len() {
            assert!(Program::decode(full.slice(0..cut)).is_err(), "prefix {cut}");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let p = Program::new(vec![Op::PushI(7), Op::Halt]).unwrap();
        let mut raw = p.encode().to_vec();
        raw.push(0x00);
        assert_eq!(
            Program::decode(Bytes::from(raw)),
            Err(ProgramError::Decode(DecodeError::TrailingBytes {
                remaining: 1
            }))
        );
    }

    #[test]
    fn decoded_programs_are_validated() {
        // Hand-craft bytes containing a wild jump.
        let mut buf = BytesMut::new();
        buf.put_u8(0xAC);
        buf.put_u16(1);
        Op::Jmp(9).encode_into(&mut buf);
        assert!(matches!(
            Program::decode(buf.freeze()),
            Err(ProgramError::Validate(ValidateError::JumpOutOfRange { .. }))
        ));
    }
}
