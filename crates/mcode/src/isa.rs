//! The instruction set and its wire format.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Maximum local-variable slots per program.
pub const MAX_LOCALS: u8 = 16;

/// One instruction of the stack machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    // --- stack -----------------------------------------------------------
    /// Push an immediate i64.
    PushI(i64),
    /// Duplicate the top of stack.
    Dup,
    /// Discard the top of stack.
    Drop,
    /// Swap the two top entries.
    Swap,
    /// Push a copy of the second entry.
    Over,
    // --- arithmetic (two operands popped, result pushed) ------------------
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction (`… a b → a−b`).
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Checked division (`VmError::DivByZero` on zero divisor).
    Div,
    /// Checked remainder.
    Rem,
    /// Arithmetic negation.
    Neg,
    /// Minimum of two values.
    Min,
    /// Maximum of two values.
    Max,
    // --- bitwise -----------------------------------------------------------
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    // --- comparison (push 1 or 0) -----------------------------------------
    /// Equality.
    Eq,
    /// Less-than (`… a b → a<b`).
    Lt,
    /// Greater-than.
    Gt,
    // --- control flow ------------------------------------------------------
    /// Unconditional jump to instruction index.
    Jmp(u16),
    /// Pop; jump if zero.
    Jz(u16),
    /// Pop; jump if non-zero.
    Jnz(u16),
    // --- data ---------------------------------------------------------------
    /// Push argument `n` (out-of-range args read as 0 — proxies tolerate
    /// shorter caller argument lists).
    Arg(u8),
    /// Pop into local slot `n`.
    Store(u8),
    /// Push local slot `n` (locals start at 0).
    Load(u8),
    // --- host ---------------------------------------------------------------
    /// Call host function `id` with `argc` values popped from the stack
    /// (first-pushed = first argument); push the reply.
    Syscall(u8, u8),
    // --- termination ----------------------------------------------------------
    /// Stop; the top of stack is the program result.
    Halt,
}

const T_PUSHI: u8 = 0x01;
const T_DUP: u8 = 0x02;
const T_DROP: u8 = 0x03;
const T_SWAP: u8 = 0x04;
const T_OVER: u8 = 0x05;
const T_ADD: u8 = 0x10;
const T_SUB: u8 = 0x11;
const T_MUL: u8 = 0x12;
const T_DIV: u8 = 0x13;
const T_REM: u8 = 0x14;
const T_NEG: u8 = 0x15;
const T_MIN: u8 = 0x16;
const T_MAX: u8 = 0x17;
const T_AND: u8 = 0x18;
const T_OR: u8 = 0x19;
const T_XOR: u8 = 0x1A;
const T_EQ: u8 = 0x20;
const T_LT: u8 = 0x21;
const T_GT: u8 = 0x22;
const T_JMP: u8 = 0x30;
const T_JZ: u8 = 0x31;
const T_JNZ: u8 = 0x32;
const T_ARG: u8 = 0x40;
const T_STORE: u8 = 0x41;
const T_LOAD: u8 = 0x42;
const T_SYSCALL: u8 = 0x50;
const T_HALT: u8 = 0x60;

/// Wire-format decode errors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Unknown opcode byte.
    BadOpcode(u8),
    /// Stream ended inside an instruction.
    Truncated,
    /// Bytes remained after the declared instruction count — a framing
    /// bug or smuggled payload; foreign code must parse exactly.
    TrailingBytes {
        /// How many bytes were left over.
        remaining: usize,
    },
}

impl Op {
    /// Append the wire encoding of this op.
    pub fn encode_into(&self, buf: &mut BytesMut) {
        match self {
            Op::PushI(v) => {
                buf.put_u8(T_PUSHI);
                buf.put_i64(*v);
            }
            Op::Dup => buf.put_u8(T_DUP),
            Op::Drop => buf.put_u8(T_DROP),
            Op::Swap => buf.put_u8(T_SWAP),
            Op::Over => buf.put_u8(T_OVER),
            Op::Add => buf.put_u8(T_ADD),
            Op::Sub => buf.put_u8(T_SUB),
            Op::Mul => buf.put_u8(T_MUL),
            Op::Div => buf.put_u8(T_DIV),
            Op::Rem => buf.put_u8(T_REM),
            Op::Neg => buf.put_u8(T_NEG),
            Op::Min => buf.put_u8(T_MIN),
            Op::Max => buf.put_u8(T_MAX),
            Op::And => buf.put_u8(T_AND),
            Op::Or => buf.put_u8(T_OR),
            Op::Xor => buf.put_u8(T_XOR),
            Op::Eq => buf.put_u8(T_EQ),
            Op::Lt => buf.put_u8(T_LT),
            Op::Gt => buf.put_u8(T_GT),
            Op::Jmp(t) => {
                buf.put_u8(T_JMP);
                buf.put_u16(*t);
            }
            Op::Jz(t) => {
                buf.put_u8(T_JZ);
                buf.put_u16(*t);
            }
            Op::Jnz(t) => {
                buf.put_u8(T_JNZ);
                buf.put_u16(*t);
            }
            Op::Arg(n) => {
                buf.put_u8(T_ARG);
                buf.put_u8(*n);
            }
            Op::Store(n) => {
                buf.put_u8(T_STORE);
                buf.put_u8(*n);
            }
            Op::Load(n) => {
                buf.put_u8(T_LOAD);
                buf.put_u8(*n);
            }
            Op::Syscall(id, argc) => {
                buf.put_u8(T_SYSCALL);
                buf.put_u8(*id);
                buf.put_u8(*argc);
            }
            Op::Halt => buf.put_u8(T_HALT),
        }
    }

    /// Decode one op from the stream.
    pub fn decode_from(buf: &mut Bytes) -> Result<Op, DecodeError> {
        if buf.remaining() < 1 {
            return Err(DecodeError::Truncated);
        }
        let tag = buf.get_u8();
        let need = |buf: &Bytes, n: usize| -> Result<(), DecodeError> {
            if buf.remaining() < n {
                Err(DecodeError::Truncated)
            } else {
                Ok(())
            }
        };
        Ok(match tag {
            T_PUSHI => {
                need(buf, 8)?;
                Op::PushI(buf.get_i64())
            }
            T_DUP => Op::Dup,
            T_DROP => Op::Drop,
            T_SWAP => Op::Swap,
            T_OVER => Op::Over,
            T_ADD => Op::Add,
            T_SUB => Op::Sub,
            T_MUL => Op::Mul,
            T_DIV => Op::Div,
            T_REM => Op::Rem,
            T_NEG => Op::Neg,
            T_MIN => Op::Min,
            T_MAX => Op::Max,
            T_AND => Op::And,
            T_OR => Op::Or,
            T_XOR => Op::Xor,
            T_EQ => Op::Eq,
            T_LT => Op::Lt,
            T_GT => Op::Gt,
            T_JMP => {
                need(buf, 2)?;
                Op::Jmp(buf.get_u16())
            }
            T_JZ => {
                need(buf, 2)?;
                Op::Jz(buf.get_u16())
            }
            T_JNZ => {
                need(buf, 2)?;
                Op::Jnz(buf.get_u16())
            }
            T_ARG => {
                need(buf, 1)?;
                Op::Arg(buf.get_u8())
            }
            T_STORE => {
                need(buf, 1)?;
                Op::Store(buf.get_u8())
            }
            T_LOAD => {
                need(buf, 1)?;
                Op::Load(buf.get_u8())
            }
            T_SYSCALL => {
                need(buf, 2)?;
                let id = buf.get_u8();
                let argc = buf.get_u8();
                Op::Syscall(id, argc)
            }
            T_HALT => Op::Halt,
            t => return Err(DecodeError::BadOpcode(t)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_ops() -> Vec<Op> {
        vec![
            Op::PushI(-42),
            Op::PushI(i64::MAX),
            Op::Dup,
            Op::Drop,
            Op::Swap,
            Op::Over,
            Op::Add,
            Op::Sub,
            Op::Mul,
            Op::Div,
            Op::Rem,
            Op::Neg,
            Op::Min,
            Op::Max,
            Op::And,
            Op::Or,
            Op::Xor,
            Op::Eq,
            Op::Lt,
            Op::Gt,
            Op::Jmp(7),
            Op::Jz(0),
            Op::Jnz(65535),
            Op::Arg(3),
            Op::Store(15),
            Op::Load(0),
            Op::Syscall(9, 2),
            Op::Halt,
        ]
    }

    #[test]
    fn every_op_round_trips() {
        for op in all_ops() {
            let mut buf = BytesMut::new();
            op.encode_into(&mut buf);
            let mut bytes = buf.freeze();
            assert_eq!(Op::decode_from(&mut bytes).unwrap(), op);
            assert_eq!(bytes.remaining(), 0, "{op:?} left trailing bytes");
        }
    }

    #[test]
    fn unknown_opcode_rejected() {
        let mut b = Bytes::from_static(&[0xFF]);
        assert_eq!(Op::decode_from(&mut b), Err(DecodeError::BadOpcode(0xFF)));
    }

    #[test]
    fn truncation_rejected() {
        let mut buf = BytesMut::new();
        Op::PushI(123456).encode_into(&mut buf);
        let full = buf.freeze();
        for cut in 0..full.len() {
            let mut b = full.slice(0..cut);
            assert!(Op::decode_from(&mut b).is_err(), "prefix {cut}");
        }
    }
}
