//! A line assembler for tests, examples and documentation.
//!
//! One instruction per line; `;` starts a comment; `name:` defines a label
//! usable as a jump target. Mnemonics are the lowercase op names:
//!
//! ```
//! use aroma_mcode::{asm::assemble, NullHost, Vm};
//!
//! // clamp(arg0 * 100 / 255, 0, 100)
//! let program = assemble(
//!     "arg 0
//!      push 100
//!      mul
//!      push 255
//!      div
//!      push 0
//!      max
//!      push 100
//!      min
//!      halt",
//! ).unwrap();
//! assert_eq!(Vm.run_default(&program, &[128], &mut NullHost), Ok(50));
//! ```

use crate::isa::Op;
use crate::program::{Program, ValidateError};
use std::collections::HashMap;

/// Assembly failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AsmError {
    /// Unknown mnemonic.
    UnknownMnemonic {
        /// 1-based source line.
        line: usize,
        /// The word.
        word: String,
    },
    /// Missing or malformed operand.
    BadOperand {
        /// 1-based source line.
        line: usize,
    },
    /// A jump references an undefined label.
    UndefinedLabel {
        /// The label.
        label: String,
    },
    /// A label was defined twice.
    DuplicateLabel {
        /// The label.
        label: String,
    },
    /// The assembled program failed validation.
    Invalid(ValidateError),
}

/// Assemble source text into a validated [`Program`].
pub fn assemble(src: &str) -> Result<Program, AsmError> {
    // Pass 1: strip comments, collect labels against instruction indices.
    let mut labels: HashMap<String, u16> = HashMap::new();
    let mut lines: Vec<(usize, Vec<String>)> = Vec::new();
    let mut index: u16 = 0;
    for (lineno, raw) in src.lines().enumerate() {
        let line = raw.split(';').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(label) = line.strip_suffix(':') {
            let label = label.trim().to_string();
            if labels.insert(label.clone(), index).is_some() {
                return Err(AsmError::DuplicateLabel { label });
            }
            continue;
        }
        lines.push((
            lineno + 1,
            line.split_whitespace().map(str::to_string).collect(),
        ));
        index += 1;
    }

    // Pass 2: translate mnemonics.
    let mut ops = Vec::with_capacity(lines.len());
    for (line, words) in lines {
        let mnemonic = words[0].to_lowercase();
        let operand = words.get(1).map(String::as_str);
        let int = |s: Option<&str>| -> Result<i64, AsmError> {
            s.and_then(|s| s.parse().ok())
                .ok_or(AsmError::BadOperand { line })
        };
        let slot = |s: Option<&str>| -> Result<u8, AsmError> {
            s.and_then(|s| s.parse().ok())
                .ok_or(AsmError::BadOperand { line })
        };
        let target = |s: Option<&str>| -> Result<u16, AsmError> {
            let word = s.ok_or(AsmError::BadOperand { line })?;
            if let Ok(n) = word.parse::<u16>() {
                return Ok(n);
            }
            labels
                .get(word)
                .copied()
                .ok_or_else(|| AsmError::UndefinedLabel {
                    label: word.to_string(),
                })
        };
        let op = match mnemonic.as_str() {
            "push" => Op::PushI(int(operand)?),
            "dup" => Op::Dup,
            "drop" => Op::Drop,
            "swap" => Op::Swap,
            "over" => Op::Over,
            "add" => Op::Add,
            "sub" => Op::Sub,
            "mul" => Op::Mul,
            "div" => Op::Div,
            "rem" => Op::Rem,
            "neg" => Op::Neg,
            "min" => Op::Min,
            "max" => Op::Max,
            "and" => Op::And,
            "or" => Op::Or,
            "xor" => Op::Xor,
            "eq" => Op::Eq,
            "lt" => Op::Lt,
            "gt" => Op::Gt,
            "jmp" => Op::Jmp(target(operand)?),
            "jz" => Op::Jz(target(operand)?),
            "jnz" => Op::Jnz(target(operand)?),
            "arg" => Op::Arg(slot(operand)?),
            "store" => Op::Store(slot(operand)?),
            "load" => Op::Load(slot(operand)?),
            "syscall" => {
                let id = slot(words.get(1).map(String::as_str))?;
                let argc = slot(words.get(2).map(String::as_str))?;
                Op::Syscall(id, argc)
            }
            "halt" => Op::Halt,
            _ => {
                return Err(AsmError::UnknownMnemonic {
                    line,
                    word: mnemonic,
                })
            }
        };
        ops.push(op);
    }
    Program::new(ops).map_err(AsmError::Invalid)
}

/// Disassemble a program back to assembler source, one instruction per
/// line, with numeric jump targets (labels don't survive assembly).
///
/// Inverse of [`assemble`] up to formatting: for any program,
/// `assemble(&disassemble(p)) == p`, and the property suite pins the full
/// `assemble → encode → decode → disassemble` round trip as the identity.
pub fn disassemble(program: &Program) -> String {
    let mut src = String::with_capacity(program.len() * 8);
    for op in program.ops() {
        let line = match *op {
            Op::PushI(v) => format!("push {v}"),
            Op::Dup => "dup".to_string(),
            Op::Drop => "drop".to_string(),
            Op::Swap => "swap".to_string(),
            Op::Over => "over".to_string(),
            Op::Add => "add".to_string(),
            Op::Sub => "sub".to_string(),
            Op::Mul => "mul".to_string(),
            Op::Div => "div".to_string(),
            Op::Rem => "rem".to_string(),
            Op::Neg => "neg".to_string(),
            Op::Min => "min".to_string(),
            Op::Max => "max".to_string(),
            Op::And => "and".to_string(),
            Op::Or => "or".to_string(),
            Op::Xor => "xor".to_string(),
            Op::Eq => "eq".to_string(),
            Op::Lt => "lt".to_string(),
            Op::Gt => "gt".to_string(),
            Op::Jmp(t) => format!("jmp {t}"),
            Op::Jz(t) => format!("jz {t}"),
            Op::Jnz(t) => format!("jnz {t}"),
            Op::Arg(n) => format!("arg {n}"),
            Op::Store(n) => format!("store {n}"),
            Op::Load(n) => format!("load {n}"),
            Op::Syscall(id, argc) => format!("syscall {id} {argc}"),
            Op::Halt => "halt".to_string(),
        };
        src.push_str(&line);
        src.push('\n');
    }
    src
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vm::{NullHost, Vm};

    #[test]
    fn assembles_and_runs_arithmetic() {
        let p = assemble("push 6\npush 7\nmul\nhalt").unwrap();
        assert_eq!(Vm.run_default(&p, &[], &mut NullHost), Ok(42));
    }

    #[test]
    fn labels_resolve_forward_and_backward() {
        // abs(arg0): if arg0 < 0 negate.
        let p = assemble(
            "arg 0
             dup
             push 0
             lt
             jz done
             neg
             done:
             halt",
        )
        .unwrap();
        assert_eq!(Vm.run_default(&p, &[-9], &mut NullHost), Ok(9));
        assert_eq!(Vm.run_default(&p, &[9], &mut NullHost), Ok(9));
    }

    #[test]
    fn loop_via_backward_label() {
        // countdown: sum = arg0 + (arg0-1) + ... + 1
        let p = assemble(
            "arg 0
             store 1
             loop:
             load 1
             jz out
             load 0
             load 1
             add
             store 0
             load 1
             push 1
             sub
             store 1
             jmp loop
             out:
             load 0
             halt",
        )
        .unwrap();
        assert_eq!(Vm.run_default(&p, &[100], &mut NullHost), Ok(5050));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let p = assemble("; a comment\n\npush 1 ; trailing\nhalt").unwrap();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn errors_are_reported() {
        assert!(matches!(
            assemble("frobnicate\nhalt"),
            Err(AsmError::UnknownMnemonic { line: 1, .. })
        ));
        assert!(matches!(
            assemble("push\nhalt"),
            Err(AsmError::BadOperand { line: 1 })
        ));
        assert!(matches!(
            assemble("jmp nowhere\nhalt"),
            Err(AsmError::UndefinedLabel { .. })
        ));
        assert!(matches!(
            assemble("x:\nx:\nhalt"),
            Err(AsmError::DuplicateLabel { .. })
        ));
        assert!(matches!(assemble(""), Err(AsmError::Invalid(_))));
    }

    #[test]
    fn numeric_jump_target_valid() {
        let p = assemble("push 1\njmp 3\npush 99\nhalt").unwrap();
        assert_eq!(Vm.run_default(&p, &[], &mut NullHost), Ok(1));
    }

    #[test]
    fn disassemble_round_trips_every_op_and_boundary_immediates() {
        use crate::isa::{Op, MAX_LOCALS};
        let ops = vec![
            Op::PushI(i64::MIN),
            Op::PushI(i64::MAX),
            Op::PushI(0),
            Op::Dup,
            Op::Over,
            Op::Swap,
            Op::Drop,
            Op::Add,
            Op::Sub,
            Op::Mul,
            Op::Div,
            Op::Rem,
            Op::Neg,
            Op::Min,
            Op::Max,
            Op::And,
            Op::Or,
            Op::Xor,
            Op::Eq,
            Op::Lt,
            Op::Gt,
            Op::Jz(0),
            Op::Jnz(27),
            Op::Arg(u8::MAX),
            Op::Store(MAX_LOCALS - 1),
            Op::Load(MAX_LOCALS - 1),
            Op::Syscall(u8::MAX, u8::MAX),
            Op::Jmp(28),
            Op::Halt,
        ];
        let p = Program::new(ops).unwrap();
        let src = disassemble(&p);
        let back = assemble(&src).unwrap();
        assert_eq!(back, p);
        // And through the wire format too.
        let decoded = Program::decode(p.encode()).unwrap();
        assert_eq!(disassemble(&decoded), src);
    }
}
