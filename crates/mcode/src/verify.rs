//! Static verification of mobile code — safety as a checkable property.
//!
//! [`Program`] validation (jump ranges, local indices) makes a byte blob
//! *decodable*; this pass makes it *provably safe to run*. A worklist
//! abstract interpretation computes, for every reachable instruction, the
//! **exact operand-stack height** (the lattice per program point is
//! `⊥ ∪ {0..=max_stack}`: unvisited, or one exact height — merges at
//! control-flow joins must agree, a `JoinMismatch` otherwise) and the set
//! of **definitely-initialized locals** (a bitset; merges intersect).
//! From the fixpoint the verifier proves, once, before execution:
//!
//! - no `StackUnderflow`/`StackOverflow` is reachable on any path;
//! - no `Load` reads a local that some path leaves unwritten;
//! - no `NoHalt` (control cannot run off the end) and no `NoResult`
//!   (`Halt` always sees a result value);
//! - every reachable `Syscall` id is permitted by the caller's
//!   [`SyscallPolicy`] — a *capability summary* of the proxy, checked
//!   against what the host is willing to expose;
//! - a **static fuel bound** for loop-free programs (from the CFG's
//!   longest path), letting the interpreter skip fuel metering entirely.
//!
//! The result is a [`VerifiedProgram`]: a certificate the interpreter's
//! fast path ([`crate::vm::Vm::run_verified`]) trusts to elide its per-op
//! dynamic checks, and that proxy-loading hosts (`aroma-discovery`,
//! `smart-projector`) demand before running downloaded code at all.

use crate::cfg::Cfg;
use crate::isa::{Op, MAX_LOCALS};
use crate::program::Program;
use crate::vm::STACK_MAX;

/// A 256-bit set of syscall ids.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SyscallSet(pub(crate) [u64; 4]);

impl SyscallSet {
    /// The empty set.
    pub fn empty() -> SyscallSet {
        SyscallSet::default()
    }

    /// Set from explicit ids.
    pub fn of(ids: &[u8]) -> SyscallSet {
        let mut s = SyscallSet::empty();
        for &id in ids {
            s.insert(id);
        }
        s
    }

    /// Add an id.
    pub fn insert(&mut self, id: u8) {
        self.0[(id >> 6) as usize] |= 1 << (id & 63);
    }

    /// Membership test.
    pub fn contains(&self, id: u8) -> bool {
        self.0[(id >> 6) as usize] & (1 << (id & 63)) != 0
    }

    /// True when no id is present.
    pub fn is_empty(&self) -> bool {
        self.0 == [0; 4]
    }

    /// Number of ids present.
    pub fn len(&self) -> usize {
        self.0.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// All ids present, ascending.
    pub fn iter(&self) -> impl Iterator<Item = u8> + '_ {
        (0..=255u8).filter(|&id| self.contains(id))
    }

    /// True when every id in `self` is also in `other`.
    pub fn is_subset(&self, other: &SyscallSet) -> bool {
        self.0.iter().zip(other.0.iter()).all(|(a, b)| a & !b == 0)
    }
}

/// What host capabilities a caller grants the program under verification.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SyscallPolicy {
    /// Any syscall id may appear (the host decides at runtime).
    AllowAll,
    /// No syscalls at all — pure computation (the right policy for
    /// proxies run against [`crate::vm::NullHost`]).
    #[default]
    DenyAll,
    /// Only the listed ids may appear.
    Allow(SyscallSet),
}

impl SyscallPolicy {
    fn permits(&self, id: u8) -> bool {
        match self {
            SyscallPolicy::AllowAll => true,
            SyscallPolicy::DenyAll => false,
            SyscallPolicy::Allow(set) => set.contains(id),
        }
    }
}

/// Caller-tunable verification limits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VerifyConfig {
    /// Maximum abstract stack height; defaults to the interpreter's hard
    /// bound [`STACK_MAX`].
    pub max_stack: usize,
    /// Which syscalls reachable code may invoke.
    pub syscalls: SyscallPolicy,
    /// Reject programs containing unreachable instructions. Off by
    /// default — dead code is inert, but a host may treat it as a smell
    /// in untrusted blobs.
    pub reject_dead_code: bool,
    /// Instruction-visit budget for the verifier's own fixpoint (and the
    /// optional range analysis). Verification of hostile input must not
    /// itself be a denial-of-service vector: past this many abstract
    /// transfers the program is rejected with
    /// [`VerifyError::AnalysisBudget`]. The default is far above anything
    /// a legitimate proxy needs.
    pub max_visits: u64,
    /// Run the interval/range analysis ([`crate::range`]) on cyclic
    /// programs to prove a static fuel bound for counted loops, extending
    /// the unmetered fast path beyond loop-free code. On by default; turn
    /// off to keep verification strictly linear-ish for huge blobs.
    pub infer_loop_bounds: bool,
}

/// Default instruction-visit budget: generous for real proxies (a proxy
/// is at most 65 535 instructions, and the height lattice converges in a
/// handful of passes), small enough to cut off adversarial churn fast.
pub const DEFAULT_MAX_VISITS: u64 = 1 << 22;

impl Default for VerifyConfig {
    fn default() -> VerifyConfig {
        VerifyConfig {
            max_stack: STACK_MAX,
            syscalls: SyscallPolicy::DenyAll,
            reject_dead_code: false,
            max_visits: DEFAULT_MAX_VISITS,
            infer_loop_bounds: true,
        }
    }
}

impl VerifyConfig {
    /// Default limits with the given syscall policy.
    pub fn with_syscalls(syscalls: SyscallPolicy) -> VerifyConfig {
        VerifyConfig {
            syscalls,
            ..VerifyConfig::default()
        }
    }
}

/// Why a program failed verification. Every variant names the offending
/// instruction, so hosts can log *where* an untrusted blob went wrong.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VerifyError {
    /// An op would pop more values than any path provides.
    StackUnderflow {
        /// Offending instruction.
        at: usize,
        /// Height arriving at the instruction.
        height: usize,
        /// Values the op consumes.
        need: usize,
    },
    /// An op would push past the configured stack bound.
    StackOverflow {
        /// Offending instruction.
        at: usize,
        /// Height the op would reach.
        height: usize,
        /// The configured bound.
        limit: usize,
    },
    /// Two paths reach the same instruction with different stack heights.
    JoinMismatch {
        /// The join point.
        at: usize,
        /// Height recorded first.
        have: usize,
        /// Conflicting height arriving later.
        incoming: usize,
    },
    /// A `Load` can execute before every path has stored the slot.
    UninitializedLocal {
        /// Offending instruction.
        at: usize,
        /// The local slot.
        slot: u8,
    },
    /// A reachable `Syscall` uses an id the policy does not grant.
    ForbiddenSyscall {
        /// Offending instruction.
        at: usize,
        /// The syscall id.
        id: u8,
    },
    /// A reachable `Halt` can see an empty stack (no result value).
    HaltWithoutResult {
        /// Offending instruction.
        at: usize,
    },
    /// Control can run past the last instruction (`NoHalt` at runtime).
    FallsOffEnd {
        /// The instruction that falls through.
        at: usize,
    },
    /// Unreachable instructions, rejected per
    /// [`VerifyConfig::reject_dead_code`].
    DeadCode {
        /// First unreachable instruction.
        at: usize,
    },
    /// The verifier's fixpoint exceeded [`VerifyConfig::max_visits`]
    /// abstract instruction transfers — the program is rejected rather
    /// than letting hostile input stall verification itself.
    AnalysisBudget {
        /// The configured budget that was exhausted.
        limit: u64,
    },
}

/// A program plus the verifier's certificate about it.
///
/// Obtainable only through [`Program::verify`], so holding one *is* the
/// proof that the facts below were established. The fast interpreter path
/// ([`crate::vm::Vm::run_verified`]) relies on them to skip per-op stack
/// and termination checks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifiedProgram {
    program: Program,
    max_stack_depth: usize,
    syscalls: SyscallSet,
    max_arg: Option<u8>,
    fuel_bound: Option<u64>,
    dead: Vec<usize>,
}

impl VerifiedProgram {
    /// The underlying program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Deepest operand stack any execution path can reach.
    pub fn max_stack_depth(&self) -> usize {
        self.max_stack_depth
    }

    /// Capability summary: every syscall id reachable code may invoke.
    pub fn syscalls(&self) -> &SyscallSet {
        &self.syscalls
    }

    /// Highest `Arg` index read, if any — how many caller arguments the
    /// program can observe.
    pub fn max_arg(&self) -> Option<u8> {
        self.max_arg
    }

    /// Static bound on retired instructions: the CFG longest path for
    /// loop-free programs, or a range-analysis-proven counted-loop bound
    /// (see [`crate::range`]) when [`VerifyConfig::infer_loop_bounds`] is
    /// on. `None` when no static bound exists — fuel metering required.
    pub fn fuel_bound(&self) -> Option<u64> {
        self.fuel_bound
    }

    /// Unreachable instruction indices (empty unless dead code was
    /// tolerated by the config).
    pub fn dead_code(&self) -> &[usize] {
        &self.dead
    }

    /// Unwrap back into the bare program.
    pub fn into_program(self) -> Program {
        self.program
    }
}

/// Abstract state at a program point: exact height + definitely-init set.
#[derive(Clone, Copy, PartialEq, Eq)]
struct AbsState {
    height: u32,
    init: u16,
}

/// Stack effect of `op`: `(pops, pushes)`; `None` when it has no single
/// static effect (only `Halt`, handled separately).
fn stack_effect(op: Op) -> (u32, u32) {
    match op {
        Op::PushI(_) | Op::Arg(_) | Op::Load(_) => (0, 1),
        Op::Dup | Op::Over => (op_peek_depth(op), op_peek_depth(op) + 1),
        Op::Drop | Op::Store(_) | Op::Jz(_) | Op::Jnz(_) => (1, 0),
        Op::Swap => (2, 2),
        Op::Add
        | Op::Sub
        | Op::Mul
        | Op::Div
        | Op::Rem
        | Op::Min
        | Op::Max
        | Op::And
        | Op::Or
        | Op::Xor
        | Op::Eq
        | Op::Lt
        | Op::Gt => (2, 1),
        Op::Neg => (1, 1),
        Op::Jmp(_) => (0, 0),
        Op::Syscall(_, argc) => (argc as u32, 1),
        Op::Halt => (1, 1), // needs a result on top; consumes nothing further
    }
}

/// `Dup` peeks one value, `Over` peeks two.
fn op_peek_depth(op: Op) -> u32 {
    match op {
        Op::Dup => 1,
        Op::Over => 2,
        _ => 0,
    }
}

impl Program {
    /// Verify this program against `config`, producing the certificate
    /// the fast interpreter path and proxy-loading hosts require.
    pub fn verify(&self, config: &VerifyConfig) -> Result<VerifiedProgram, VerifyError> {
        let code = self.ops();
        let n = code.len();
        let cfg = Cfg::build(self);

        let dead = cfg.dead_instructions();
        if config.reject_dead_code {
            if let Some(&at) = dead.first() {
                return Err(VerifyError::DeadCode { at });
            }
        }

        let mut states: Vec<Option<AbsState>> = vec![None; n];
        states[0] = Some(AbsState { height: 0, init: 0 });
        let mut worklist: Vec<usize> = vec![0];
        let mut max_depth: u32 = 0;
        let mut syscalls = SyscallSet::empty();
        let mut max_arg: Option<u8> = None;
        let mut visits: u64 = 0;

        while let Some(pc) = worklist.pop() {
            visits += 1;
            if visits > config.max_visits {
                return Err(VerifyError::AnalysisBudget {
                    limit: config.max_visits,
                });
            }
            let s = states[pc].expect("worklist entries always have state");
            let op = code[pc];
            let (pops, pushes) = stack_effect(op);

            if s.height < pops {
                if matches!(op, Op::Halt) {
                    return Err(VerifyError::HaltWithoutResult { at: pc });
                }
                return Err(VerifyError::StackUnderflow {
                    at: pc,
                    height: s.height as usize,
                    need: pops as usize,
                });
            }
            let after_height = s.height - pops + pushes;
            if after_height as usize > config.max_stack {
                return Err(VerifyError::StackOverflow {
                    at: pc,
                    height: after_height as usize,
                    limit: config.max_stack,
                });
            }
            max_depth = max_depth.max(after_height);

            let mut after_init = s.init;
            match op {
                Op::Load(slot) => {
                    debug_assert!(slot < MAX_LOCALS);
                    if s.init & (1 << slot) == 0 {
                        return Err(VerifyError::UninitializedLocal { at: pc, slot });
                    }
                }
                Op::Store(slot) => {
                    after_init |= 1 << slot;
                }
                Op::Syscall(id, _) => {
                    if !config.syscalls.permits(id) {
                        return Err(VerifyError::ForbiddenSyscall { at: pc, id });
                    }
                    syscalls.insert(id);
                }
                Op::Arg(idx) => {
                    max_arg = Some(max_arg.map_or(idx, |m| m.max(idx)));
                }
                _ => {}
            }

            let after = AbsState {
                height: after_height,
                init: after_init,
            };

            // Successor program points.
            let mut flow = |target: usize, worklist: &mut Vec<usize>| -> Result<(), VerifyError> {
                match states[target] {
                    None => {
                        states[target] = Some(after);
                        worklist.push(target);
                    }
                    Some(existing) => {
                        if existing.height != after.height {
                            return Err(VerifyError::JoinMismatch {
                                at: target,
                                have: existing.height as usize,
                                incoming: after.height as usize,
                            });
                        }
                        let merged_init = existing.init & after.init;
                        if merged_init != existing.init {
                            states[target] = Some(AbsState {
                                height: existing.height,
                                init: merged_init,
                            });
                            worklist.push(target);
                        }
                    }
                }
                Ok(())
            };

            match op {
                Op::Halt => {}
                Op::Jmp(t) => flow(t as usize, &mut worklist)?,
                Op::Jz(t) | Op::Jnz(t) => {
                    flow(t as usize, &mut worklist)?;
                    if pc + 1 >= n {
                        return Err(VerifyError::FallsOffEnd { at: pc });
                    }
                    flow(pc + 1, &mut worklist)?;
                }
                _ => {
                    if pc + 1 >= n {
                        return Err(VerifyError::FallsOffEnd { at: pc });
                    }
                    flow(pc + 1, &mut worklist)?;
                }
            }
        }

        // Fuel bound: the CFG longest path covers loop-free programs; for
        // cyclic ones, optionally ask the range analysis to prove a
        // counted-loop bound. Failure there is never an error — it just
        // means the interpreter meters fuel as before.
        let fuel_bound = cfg.max_executed_instructions().or_else(|| {
            if config.infer_loop_bounds && cfg.is_cyclic() {
                crate::range::Ranges::analyze(self, &cfg, config.max_visits)
                    .and_then(|r| r.loop_fuel_bound(&cfg))
            } else {
                None
            }
        });

        Ok(VerifiedProgram {
            program: self.clone(),
            max_stack_depth: max_depth as usize,
            syscalls,
            max_arg,
            fuel_bound,
            dead,
        })
    }

    /// Verify with default limits (full stack, no syscalls).
    pub fn verify_default(&self) -> Result<VerifiedProgram, VerifyError> {
        self.verify(&VerifyConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn verify(ops: Vec<Op>) -> Result<VerifiedProgram, VerifyError> {
        Program::new(ops).unwrap().verify_default()
    }

    #[test]
    fn straight_line_program_verifies_with_certificate() {
        let vp = verify(vec![Op::PushI(2), Op::PushI(3), Op::Add, Op::Halt]).unwrap();
        assert_eq!(vp.max_stack_depth(), 2);
        assert_eq!(vp.fuel_bound(), Some(4));
        assert!(vp.syscalls().is_empty());
        assert!(vp.dead_code().is_empty());
        assert_eq!(vp.max_arg(), None);
    }

    #[test]
    fn underflow_rejected_statically() {
        let e = verify(vec![Op::Add, Op::Halt]).unwrap_err();
        assert_eq!(
            e,
            VerifyError::StackUnderflow {
                at: 0,
                height: 0,
                need: 2
            }
        );
        let e = verify(vec![Op::PushI(1), Op::Swap, Op::Halt]).unwrap_err();
        assert!(matches!(e, VerifyError::StackUnderflow { at: 1, .. }));
        // Underflow behind a branch is still found.
        let e = verify(vec![
            Op::Arg(0),
            Op::Jz(3),
            Op::Halt, // then-arm halts fine (arg popped, push needed!)
            Op::Drop, // else-arm: stack is empty here → underflow
            Op::Halt,
        ])
        .unwrap_err();
        assert!(matches!(
            e,
            VerifyError::StackUnderflow { .. } | VerifyError::HaltWithoutResult { .. }
        ));
    }

    #[test]
    fn overflow_rejected_statically() {
        let cfg = VerifyConfig {
            max_stack: 3,
            ..VerifyConfig::default()
        };
        let p = Program::new(vec![
            Op::PushI(1),
            Op::PushI(2),
            Op::PushI(3),
            Op::PushI(4),
            Op::Halt,
        ])
        .unwrap();
        let e = p.verify(&cfg).unwrap_err();
        assert_eq!(
            e,
            VerifyError::StackOverflow {
                at: 3,
                height: 4,
                limit: 3
            }
        );
        // The unbounded-push loop the dynamic VM only catches at runtime.
        let e = verify(vec![Op::PushI(1), Op::Jmp(0)]).unwrap_err();
        assert!(matches!(
            e,
            VerifyError::JoinMismatch { .. } | VerifyError::StackOverflow { .. }
        ));
    }

    #[test]
    fn join_mismatch_rejected() {
        // Two arms reach the same join with different heights.
        // 0: arg0 ; 1: jz 4 ; 2: push ; 3: push ; 4(join): halt
        let e = verify(vec![
            Op::Arg(0),
            Op::Jz(4),
            Op::PushI(1),
            Op::PushI(2),
            Op::Halt,
        ])
        .unwrap_err();
        assert!(
            matches!(e, VerifyError::JoinMismatch { at: 4, .. }),
            "{e:?}"
        );
    }

    #[test]
    fn uninitialized_local_rejected() {
        let e = verify(vec![Op::Load(0), Op::Halt]).unwrap_err();
        assert_eq!(e, VerifyError::UninitializedLocal { at: 0, slot: 0 });
        // Initialised on only one path → still rejected at the join.
        let e = verify(vec![
            Op::Arg(0),
            Op::Jz(4),
            Op::PushI(7),
            Op::Store(3),
            Op::Load(3), // join: slot 3 only written on the fall-through arm
            Op::Halt,
        ])
        .unwrap_err();
        assert_eq!(e, VerifyError::UninitializedLocal { at: 4, slot: 3 });
        // Initialised on every path → accepted.
        verify(vec![Op::PushI(7), Op::Store(3), Op::Load(3), Op::Halt]).unwrap();
    }

    #[test]
    fn syscall_policy_enforced() {
        let prog = Program::new(vec![Op::PushI(1), Op::Syscall(9, 1), Op::Halt]).unwrap();
        // Default policy: pure computation only.
        assert_eq!(
            prog.verify_default().unwrap_err(),
            VerifyError::ForbiddenSyscall { at: 1, id: 9 }
        );
        // Allow-listed id verifies and lands in the capability summary.
        let cfg = VerifyConfig::with_syscalls(SyscallPolicy::Allow(SyscallSet::of(&[9])));
        let vp = prog.verify(&cfg).unwrap();
        assert!(vp.syscalls().contains(9));
        assert_eq!(vp.syscalls().len(), 1);
        // A different allow-list still rejects.
        let cfg = VerifyConfig::with_syscalls(SyscallPolicy::Allow(SyscallSet::of(&[8, 10])));
        assert!(matches!(
            prog.verify(&cfg),
            Err(VerifyError::ForbiddenSyscall { at: 1, id: 9 })
        ));
        // Syscalls in dead code don't require capabilities (never run).
        let prog = Program::new(vec![Op::PushI(1), Op::Halt, Op::Syscall(9, 0), Op::Halt]).unwrap();
        let vp = prog.verify_default().unwrap();
        assert!(vp.syscalls().is_empty());
        assert_eq!(vp.dead_code(), &[2, 3]);
    }

    #[test]
    fn termination_shape_enforced() {
        // Running off the end is a static error (dynamic: NoHalt).
        assert_eq!(
            verify(vec![Op::PushI(1), Op::PushI(2)]).unwrap_err(),
            VerifyError::FallsOffEnd { at: 1 }
        );
        // Halting with an empty stack is a static error (dynamic: NoResult).
        assert_eq!(
            verify(vec![Op::Halt]).unwrap_err(),
            VerifyError::HaltWithoutResult { at: 0 }
        );
    }

    #[test]
    fn dead_code_policy() {
        let prog = Program::new(vec![Op::PushI(1), Op::Halt, Op::PushI(2), Op::Halt]).unwrap();
        assert_eq!(prog.verify_default().unwrap().dead_code(), &[2, 3]);
        let strict = VerifyConfig {
            reject_dead_code: true,
            ..VerifyConfig::default()
        };
        assert_eq!(
            prog.verify(&strict).unwrap_err(),
            VerifyError::DeadCode { at: 2 }
        );
    }

    #[test]
    fn loops_verify_but_have_no_fuel_bound() {
        // Balanced loop: sum 1..=n with locals initialised first.
        let p = assemble(
            "push 0
             store 0
             arg 0
             store 1
             loop:
             load 1
             jz out
             load 0
             load 1
             add
             store 0
             load 1
             push 1
             sub
             store 1
             jmp loop
             out:
             load 0
             halt",
        )
        .unwrap();
        let vp = p.verify_default().unwrap();
        assert_eq!(vp.fuel_bound(), None);
        assert!(vp.max_stack_depth() >= 2);
    }

    #[test]
    fn analysis_budget_is_enforced() {
        // A loop the verifier must iterate over; with a one-visit budget
        // the fixpoint cannot finish and the program is rejected with the
        // typed budget error rather than looping.
        let p = assemble(
            "push 0
             store 0
             loop:
             load 0
             jz out
             load 0
             push 1
             sub
             store 0
             jmp loop
             out:
             push 1
             halt",
        )
        .unwrap();
        let starved = VerifyConfig {
            max_visits: 1,
            ..VerifyConfig::default()
        };
        assert_eq!(
            p.verify(&starved).unwrap_err(),
            VerifyError::AnalysisBudget { limit: 1 }
        );
        // The same program sails through with the default budget.
        p.verify_default().unwrap();
    }

    #[test]
    fn counted_loops_get_an_inferred_fuel_bound() {
        // A clamped counted loop: cyclic CFG, yet the range analysis
        // proves a static bound, so the unmetered fast path opens up.
        let p = assemble(
            "push 0
             store 0
             arg 0
             push 0
             max
             push 100
             min
             store 1
             loop:
             load 1
             jz out
             load 0
             load 1
             add
             store 0
             load 1
             push 1
             sub
             store 1
             jmp loop
             out:
             load 0
             halt",
        )
        .unwrap();
        let vp = p.verify_default().unwrap();
        let bound = vp.fuel_bound().expect("counted loop has a static bound");
        assert!(bound >= 100);
        // Opting out restores the old behaviour.
        let plain = VerifyConfig {
            infer_loop_bounds: false,
            ..VerifyConfig::default()
        };
        assert_eq!(p.verify(&plain).unwrap().fuel_bound(), None);
    }

    #[test]
    fn arg_usage_summarised() {
        let vp = verify(vec![Op::Arg(2), Op::Arg(5), Op::Add, Op::Halt]).unwrap();
        assert_eq!(vp.max_arg(), Some(5));
    }

    #[test]
    fn syscall_set_operations() {
        let mut s = SyscallSet::empty();
        assert!(s.is_empty());
        s.insert(0);
        s.insert(63);
        s.insert(64);
        s.insert(255);
        assert_eq!(s.len(), 4);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 63, 64, 255]);
        assert!(s.is_subset(&SyscallSet::of(&[0, 63, 64, 255, 7])));
        assert!(!SyscallSet::of(&[1]).is_subset(&s));
    }
}
