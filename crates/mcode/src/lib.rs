//! # aroma-mcode — mobile code for service proxies
//!
//! Two of the Aroma project's research areas are *"mobile code and data"*
//! and the forecast of $10 systems-on-chip with *"a sufficiently rich
//! run-time environment capable of running sophisticated virtual
//! machines"* — the substrate that made Jini's downloadable proxies
//! plausible. This crate is that substrate in miniature: a deterministic,
//! validated, fuel-metered stack VM whose programs travel as the opaque
//! `proxy` bytes of `aroma-discovery`'s service items, so a client can
//! download *behaviour* (how to talk to a device) rather than hard-coding
//! it.
//!
//! Design constraints, in order:
//!
//! 1. **Safety for untrusted code** — programs are validated before
//!    execution (jump targets in range, local slots bounded) and run under
//!    a fuel budget with hard stack bounds; every failure is a typed
//!    `VmError`, never a panic.
//! 2. **Determinism** — no clocks, no floats, no host randomness: a
//!    program's result is a pure function of its arguments and host
//!    replies, as required by the simulation substrate.
//! 3. **Smallness** — an appliance-class ISA: i64 stack machine, 30-odd
//!    ops, locals, relative-free absolute jumps, and numbered host calls
//!    ([`Host`]) for device effects.
//!
//! Safety comes in two escalating tiers. *Validation* ([`program`])
//! checks shape: jump targets in range, local slots bounded. *Static
//! verification* ([`verify`], over the control-flow graphs of [`cfg`])
//! proves behaviour: a worklist abstract interpretation computes the
//! exact operand-stack height and the definitely-initialized locals at
//! every reachable instruction (the lattice per program point is
//! "unvisited ⊥, or one exact height"; joins must agree on height and
//! intersect the init sets), so stack underflow/overflow, reads of
//! unwritten locals, running off the end, and un-allowlisted host calls
//! are all rejected *before* the program runs. The payoff is twofold:
//! hosts get a capability summary of untrusted proxy code (which
//! syscalls it can ever make, how deep its stack goes, a static fuel
//! bound when loop-free), and the interpreter gets a **fast path**
//! ([`vm::Vm::run_verified`]) that trusts the [`verify::VerifiedProgram`]
//! certificate to skip the per-op stack checks — and fuel metering
//! entirely, for loop-free code — while remaining panic-free.
//!
//! Beyond the verifier sits a reusable static-analysis layer
//! ("aroma-flow"): [`dataflow`] is a generic forward/backward worklist
//! fixpoint framework over the [`cfg`] basic blocks, parameterized by a
//! lattice ([`dataflow::Analysis`]); [`range`] instantiates it with an
//! interval domain to prove **static loop bounds**, extending the
//! unmetered fast path from loop-free programs to counted-loop programs;
//! [`flow`] instantiates it with a taint domain so a [`flow::FlowPolicy`]
//! can prove information-flow properties ("sensor reads never reach
//! network sends") that a capability allowlist cannot express; and
//! [`opt`] is an optimizer (constant folding, branch pruning, dead-store
//! and unreachable-code elimination, jump threading) gated by
//! **translation validation** — an optimized program is only used if it
//! re-verifies and differentially matches the original.
//!
//! Modules: [`isa`] (opcodes + wire format), [`program`] (validated
//! container), [`cfg`] (basic-block control-flow graphs), [`verify`]
//! (the static verifier), [`vm`] (the interpreter, checked and verified
//! paths), [`asm`] (a line assembler with labels, for
//! tests/examples/docs), [`dataflow`] / [`range`] / [`flow`] / [`opt`]
//! (the analysis layer).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
pub mod cfg;
pub mod dataflow;
pub mod flow;
pub mod isa;
pub mod opt;
pub mod program;
pub mod range;
pub mod verify;
pub mod vm;

pub use flow::{FlowError, FlowPolicy, FlowSummary};
pub use isa::Op;
pub use opt::{OptStats, Validated};
pub use program::{Program, ProgramError, ValidateError};
pub use range::{Interval, Ranges};
pub use verify::{SyscallPolicy, SyscallSet, VerifiedProgram, VerifyConfig, VerifyError};
pub use vm::{Host, NullHost, Vm, VmError, FUEL_DEFAULT};
