//! Taint / information-flow analysis: *where data may go*, not just
//! *which capabilities exist*.
//!
//! A [`crate::verify::SyscallPolicy`] is a capability allowlist — it can
//! say a proxy may call `read_sensor` and may call `net_send`, but not
//! that the value read from the sensor never *reaches* the network send.
//! [`FlowPolicy`] closes that gap: syscalls in `sources` produce tainted
//! replies, syscalls in `sinks` must never observe a tainted argument,
//! and [`check_flow`] proves it statically (or names the offending
//! instruction). It is another instance of the [`crate::dataflow`]
//! framework: one taint bit per stack slot and per local, joined by OR.
//!
//! Implicit flows are covered optionally: with
//! [`FlowPolicy::track_implicit`] set, branching on a tainted value
//! poisons a sticky *context bit*, and everything computed under a
//! tainted context (and the sink calls themselves) counts as tainted —
//! the classic conservative treatment, which rejects laundering taint
//! through control flow (`if secret { send(1) } else { send(2) }`) at
//! the cost of false positives after any tainted branch.

use crate::cfg::Cfg;
use crate::dataflow::{self, Analysis, Direction, Solution};
use crate::isa::Op;
use crate::verify::{SyscallSet, VerifiedProgram};

/// Default instruction-visit budget for the flow fixpoint.
pub const FLOW_VISIT_BUDGET: u64 = 1 << 20;

/// Source/sink labelling of the syscall surface, plus tracking options.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FlowPolicy {
    /// Syscalls whose replies are tainted (e.g. sensor reads).
    pub sources: SyscallSet,
    /// Syscalls that must never observe a tainted argument (e.g. network
    /// sends).
    pub sinks: SyscallSet,
    /// Treat caller arguments (`Arg`) as tainted too.
    pub taint_args: bool,
    /// Track implicit flows: branching on taint poisons the context, and
    /// a sink call under tainted context is a violation even with clean
    /// arguments.
    pub track_implicit: bool,
}

impl FlowPolicy {
    /// The common case: `sources` must never flow into `sinks`, explicit
    /// flows only.
    pub fn forbid(sources: &[u8], sinks: &[u8]) -> FlowPolicy {
        FlowPolicy {
            sources: SyscallSet::of(sources),
            sinks: SyscallSet::of(sinks),
            ..FlowPolicy::default()
        }
    }

    /// Same, but also rejecting implicit (control-flow) leaks.
    pub fn forbid_strict(sources: &[u8], sinks: &[u8]) -> FlowPolicy {
        FlowPolicy {
            track_implicit: true,
            ..FlowPolicy::forbid(sources, sinks)
        }
    }
}

/// Why a program violates a [`FlowPolicy`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlowError {
    /// A sink syscall can observe tainted data (or runs under a tainted
    /// branch context, when implicit tracking is on).
    TaintedSink {
        /// The offending `Syscall` instruction.
        at: usize,
        /// Its syscall id.
        id: u8,
    },
    /// The fixpoint exceeded its instruction-visit budget; the program is
    /// rejected rather than assumed clean.
    AnalysisBudget,
}

/// What the analysis proved about a policy-conforming program.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlowSummary {
    /// Whether the program's result (the value at some reachable `Halt`)
    /// may carry source taint.
    pub result_tainted: bool,
    /// Whether any source syscall is actually reachable.
    pub uses_sources: bool,
}

/// The abstract state: one taint bit per stack slot and local, plus the
/// implicit-flow context bit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TaintFact {
    /// ⊥ marker: `false` = no execution reaches this point yet.
    pub reachable: bool,
    /// Taint of each operand-stack slot, bottom first.
    pub stack: Vec<bool>,
    /// Taint bitset over the locals.
    pub locals: u16,
    /// Sticky control-context taint (implicit flows).
    pub ctx: bool,
}

impl TaintFact {
    fn pop(&mut self) -> bool {
        self.stack.pop().unwrap_or(false)
    }
}

/// The taint analysis (a [`dataflow::Analysis`] instance) for one policy.
#[derive(Clone, Copy, Debug)]
pub struct TaintAnalysis {
    policy: FlowPolicy,
}

impl TaintAnalysis {
    /// Analysis for `policy`.
    pub fn new(policy: FlowPolicy) -> TaintAnalysis {
        TaintAnalysis { policy }
    }
}

impl Analysis for TaintAnalysis {
    type Fact = TaintFact;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn boundary(&self) -> TaintFact {
        TaintFact {
            reachable: true,
            stack: Vec::new(),
            locals: 0,
            ctx: false,
        }
    }

    fn bottom(&self) -> TaintFact {
        TaintFact {
            reachable: false,
            stack: Vec::new(),
            locals: 0,
            ctx: false,
        }
    }

    fn join(&self, fact: &mut TaintFact, other: &TaintFact) -> bool {
        if !other.reachable {
            return false;
        }
        if !fact.reachable {
            *fact = other.clone();
            return true;
        }
        let mut changed = false;
        // Verified programs join at equal stack heights; tolerate skew by
        // aligning from the top, like the other analyses.
        if fact.stack.len() != other.stack.len() {
            let keep = fact.stack.len().min(other.stack.len());
            let cut = fact.stack.len() - keep;
            fact.stack.drain(..cut);
            changed = true;
        }
        let skip = other.stack.len() - fact.stack.len();
        for (s, &o) in fact.stack.iter_mut().zip(other.stack.iter().skip(skip)) {
            if o && !*s {
                *s = true;
                changed = true;
            }
        }
        if other.locals & !fact.locals != 0 {
            fact.locals |= other.locals;
            changed = true;
        }
        if other.ctx && !fact.ctx {
            fact.ctx = true;
            changed = true;
        }
        changed
    }

    fn transfer(&self, _pc: usize, op: Op, f: &mut TaintFact) {
        if !f.reachable {
            return;
        }
        let ctx = f.ctx && self.policy.track_implicit;
        match op {
            Op::PushI(_) => f.stack.push(ctx),
            Op::Dup => {
                let t = f.stack.last().copied().unwrap_or(false);
                f.stack.push(t || ctx);
            }
            Op::Drop => {
                f.pop();
            }
            Op::Swap => {
                let b = f.pop();
                let a = f.pop();
                f.stack.push(b);
                f.stack.push(a);
            }
            Op::Over => {
                let n = f.stack.len();
                let t = if n >= 2 { f.stack[n - 2] } else { false };
                f.stack.push(t || ctx);
            }
            Op::Add
            | Op::Sub
            | Op::Mul
            | Op::Div
            | Op::Rem
            | Op::Min
            | Op::Max
            | Op::And
            | Op::Or
            | Op::Xor
            | Op::Eq
            | Op::Lt
            | Op::Gt => {
                let b = f.pop();
                let a = f.pop();
                f.stack.push(a || b || ctx);
            }
            Op::Neg => {
                let a = f.pop();
                f.stack.push(a || ctx);
            }
            Op::Jmp(_) => {}
            Op::Jz(_) | Op::Jnz(_) => {
                let cond = f.pop();
                if cond && self.policy.track_implicit {
                    // Sticky: once control depends on taint, everything
                    // after is under suspicion. Coarse but sound.
                    f.ctx = true;
                }
            }
            Op::Arg(_) => f.stack.push(self.policy.taint_args || ctx),
            Op::Store(n) => {
                let v = f.pop();
                if v || ctx {
                    f.locals |= 1 << n;
                } else {
                    f.locals &= !(1 << n);
                }
            }
            Op::Load(n) => {
                let t = f.locals & (1 << n) != 0;
                f.stack.push(t || ctx);
            }
            Op::Syscall(id, argc) => {
                let mut arg_taint = false;
                for _ in 0..argc {
                    arg_taint |= f.pop();
                }
                let source = self.policy.sources.contains(id);
                // A sink's reply is not itself a source; anything else
                // propagates what went in (conservative for unlabelled
                // syscalls: a reply derived from tainted args is tainted).
                f.stack.push(source || arg_taint || ctx);
            }
            Op::Halt => {}
        }
    }
}

/// Check `program` against `policy`.
///
/// On success the program provably never lets a source-tainted value (or
/// a tainted branch context, in strict mode) reach a sink syscall's
/// arguments, on any execution; the summary reports residual facts a
/// host may care about. Requires a [`VerifiedProgram`] because the proof
/// leans on verifier invariants (balanced stack heights at joins, no
/// underflow), and because vetting order — verify, then flow-check — is
/// the only sensible one for untrusted proxies.
pub fn check_flow(
    program: &VerifiedProgram,
    policy: &FlowPolicy,
) -> Result<FlowSummary, FlowError> {
    let p = program.program();
    let cfg = Cfg::build(p);
    let analysis = TaintAnalysis::new(*policy);
    let solution: Solution<TaintFact> =
        dataflow::solve(&analysis, p, &cfg, FLOW_VISIT_BUDGET).ok_or(FlowError::AnalysisBudget)?;

    let code = p.ops();
    let mut summary = FlowSummary {
        result_tainted: false,
        uses_sources: false,
    };
    for block in cfg.blocks() {
        for (pc, &op) in code.iter().enumerate().take(block.end).skip(block.start) {
            let before = solution.at_instruction(&analysis, p, &cfg, pc);
            if !before.reachable {
                continue;
            }
            match op {
                Op::Syscall(id, argc) => {
                    if policy.sources.contains(id) {
                        summary.uses_sources = true;
                    }
                    if policy.sinks.contains(id) {
                        let n = before.stack.len();
                        let args_tainted = (0..argc as usize)
                            .any(|i| n > i && before.stack[n - 1 - i]);
                        let ctx_tainted = policy.track_implicit && before.ctx;
                        if args_tainted || ctx_tainted {
                            return Err(FlowError::TaintedSink { at: pc, id });
                        }
                    }
                }
                Op::Halt => {
                    let top = before.stack.last().copied().unwrap_or(false);
                    let ctx = policy.track_implicit && before.ctx;
                    summary.result_tainted |= top || ctx;
                }
                _ => {}
            }
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::verify::{SyscallPolicy, VerifyConfig};

    const READ_SENSOR: u8 = 10;
    const NET_SEND: u8 = 20;
    const GET_TIME: u8 = 30;

    fn vetted(src: &str) -> VerifiedProgram {
        let cfg = VerifyConfig::with_syscalls(SyscallPolicy::AllowAll);
        assemble(src).unwrap().verify(&cfg).unwrap()
    }

    fn policy() -> FlowPolicy {
        FlowPolicy::forbid(&[READ_SENSOR], &[NET_SEND])
    }

    #[test]
    fn direct_exfiltration_is_rejected() {
        // read_sensor() → net_send(it): the canonical leak. Passes any
        // capability allowlist granting both ids; FlowPolicy rejects it.
        let p = vetted(&format!(
            "syscall {READ_SENSOR} 0
             syscall {NET_SEND} 1
             halt"
        ));
        assert_eq!(
            check_flow(&p, &policy()),
            Err(FlowError::TaintedSink { at: 1, id: NET_SEND })
        );
    }

    #[test]
    fn laundering_through_locals_and_arithmetic_is_rejected() {
        let p = vetted(&format!(
            "syscall {READ_SENSOR} 0
             push 1000
             mul
             store 3
             push 0
             drop
             load 3
             push 7
             add
             syscall {NET_SEND} 1
             halt"
        ));
        assert!(matches!(
            check_flow(&p, &policy()),
            Err(FlowError::TaintedSink { id: NET_SEND, .. })
        ));
    }

    #[test]
    fn independent_send_is_accepted() {
        // Reads the sensor for its own result, sends an unrelated
        // constant: both capabilities used, no flow between them.
        let p = vetted(&format!(
            "push 1
             syscall {NET_SEND} 1
             drop
             syscall {READ_SENSOR} 0
             halt"
        ));
        let s = check_flow(&p, &policy()).unwrap();
        assert!(s.uses_sources);
        assert!(s.result_tainted);
    }

    #[test]
    fn overwritten_local_loses_taint() {
        // Taint stored to a local, then the local is overwritten with a
        // constant before the send: strong update, no violation.
        let p = vetted(&format!(
            "syscall {READ_SENSOR} 0
             store 0
             push 5
             store 0
             load 0
             syscall {NET_SEND} 1
             halt"
        ));
        check_flow(&p, &policy()).unwrap();
    }

    #[test]
    fn unlabelled_syscalls_propagate_taint_through_replies() {
        // sensor → get_time(sensor)'s reply → send: the unlabelled call's
        // reply is conservatively derived from its tainted argument.
        let p = vetted(&format!(
            "syscall {READ_SENSOR} 0
             syscall {GET_TIME} 1
             syscall {NET_SEND} 1
             halt"
        ));
        assert!(matches!(
            check_flow(&p, &policy()),
            Err(FlowError::TaintedSink { id: NET_SEND, .. })
        ));
    }

    #[test]
    fn implicit_flow_caught_only_in_strict_mode() {
        // if sensor() != 0 { send(1) } else { send(0) } — leaks one bit
        // via control flow; explicit tracking accepts, strict rejects.
        let src = format!(
            "syscall {READ_SENSOR} 0
             jz zero
             push 1
             syscall {NET_SEND} 1
             halt
             zero:
             push 0
             syscall {NET_SEND} 1
             halt"
        );
        let p = vetted(&src);
        check_flow(&p, &policy()).unwrap();
        let strict = FlowPolicy::forbid_strict(&[READ_SENSOR], &[NET_SEND]);
        assert!(matches!(
            check_flow(&p, &strict),
            Err(FlowError::TaintedSink { id: NET_SEND, .. })
        ));
    }

    #[test]
    fn tainted_args_mode_rejects_arg_to_sink() {
        let p = vetted(&format!(
            "arg 0
             syscall {NET_SEND} 1
             halt"
        ));
        check_flow(&p, &policy()).unwrap();
        let strict = FlowPolicy {
            taint_args: true,
            ..policy()
        };
        assert_eq!(
            check_flow(&p, &strict),
            Err(FlowError::TaintedSink { at: 1, id: NET_SEND })
        );
    }

    #[test]
    fn taint_survives_loops() {
        // Accumulate sensor readings in a loop, then send the total.
        let p = vetted(&format!(
            "push 0
             store 0
             push 3
             store 1
             loop:
             load 1
             jz out
             syscall {READ_SENSOR} 0
             load 0
             add
             store 0
             load 1
             push 1
             sub
             store 1
             jmp loop
             out:
             load 0
             syscall {NET_SEND} 1
             halt"
        ));
        assert!(matches!(
            check_flow(&p, &policy()),
            Err(FlowError::TaintedSink { id: NET_SEND, .. })
        ));
    }

    #[test]
    fn pure_programs_trivially_conform() {
        let p = assemble("push 2 \n push 3 \n add \n halt")
            .unwrap()
            .verify_default()
            .unwrap();
        let s = check_flow(&p, &policy()).unwrap();
        assert!(!s.uses_sources);
        assert!(!s.result_tainted);
    }
}
