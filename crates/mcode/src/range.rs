//! Constant/interval value-range analysis, and the loop bounds it proves.
//!
//! An instance of the [`crate::dataflow`] framework whose facts are, per
//! program point, an **interval** for every operand-stack slot and every
//! local. The lattice is the classic interval domain over `i64` (bounds
//! tracked in `i128` so arithmetic can detect wraparound and fall back to
//! ⊤ soundly — the VM's arithmetic wraps, so any overflowing transfer must
//! forget, not clamp). Conditional branches refine: `Load k; Jz t` teaches
//! the taken edge `k = 0` and the fall-through `k ≠ 0`, tracked through a
//! provenance tag on stack slots that remembers which local a value was
//! loaded from (invalidated when that local is re-stored).
//!
//! Two consumers:
//!
//! - the optimizer ([`crate::opt`]) reads per-point constants and branch
//!   feasibility for folding and pruning;
//! - the verifier ([`crate::verify`]) asks [`Ranges::loop_fuel_bound`] for
//!   a **static fuel bound on programs with loops**, extending the
//!   check-free unmetered fast path beyond loop-free code. A loop is
//!   bounded when it matches the *counted-loop* shape: a header testing a
//!   counter local against zero (`Load k; Jz exit` / `Load k; Jnz body`),
//!   exactly one `Store k` in the loop whose stored value is provably
//!   `k − 1`, every in-loop cycle passing through both, and the counter's
//!   interval at the header proven `[lo, hi]` with `0 ≤ lo` and finite
//!   `hi` — then the header runs at most `hi + 1` times and the whole
//!   program retires a computable number of instructions. Anything fancier
//!   (nested loops, non-unit strides, increasing counters) soundly falls
//!   back to `None`: the interpreter meters fuel as before. Unsoundness
//!   here would hand hostile proxies unmetered execution, so every rule
//!   errs toward "no bound".

use crate::cfg::Cfg;
use crate::dataflow::{self, Analysis, Direction, Edge, Solution};
use crate::isa::{Op, MAX_LOCALS};
use crate::program::Program;

/// Number of changed joins at one block entry before bounds are widened to
/// the full `i64` range (guaranteeing termination of the fixpoint).
const WIDEN_AFTER: u32 = 16;

/// Default instruction-visit budget for standalone range analysis.
pub const RANGE_VISIT_BUDGET: u64 = 1 << 20;

/// An inclusive interval of `i64` values; bounds held as `i128` so
/// transfer functions can detect wraparound exactly. Invariant:
/// `i64::MIN ≤ lo ≤ hi ≤ i64::MAX`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interval {
    /// Least value.
    pub lo: i128,
    /// Greatest value.
    pub hi: i128,
}

const I64MIN: i128 = i64::MIN as i128;
const I64MAX: i128 = i64::MAX as i128;

impl Interval {
    /// The full `i64` range — the ⊤ of the value lattice.
    pub fn top() -> Interval {
        Interval {
            lo: I64MIN,
            hi: I64MAX,
        }
    }

    /// A single value.
    pub fn constant(v: i64) -> Interval {
        Interval {
            lo: v as i128,
            hi: v as i128,
        }
    }

    /// Both endpoints, clamped into the `i64` range (soundly widened to ⊤
    /// by [`Interval::of`] when out of range).
    pub fn of(lo: i128, hi: i128) -> Interval {
        if lo < I64MIN || hi > I64MAX || lo > hi {
            Interval::top()
        } else {
            Interval { lo, hi }
        }
    }

    /// The single value, when the interval is a point.
    pub fn as_const(&self) -> Option<i64> {
        (self.lo == self.hi).then_some(self.lo as i64)
    }

    /// Whether 0 is a possible value.
    pub fn contains_zero(&self) -> bool {
        self.lo <= 0 && 0 <= self.hi
    }

    /// Interval hull (the join).
    pub fn hull(&self, other: &Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Intersection; `None` when empty (an infeasible path).
    pub fn intersect(&self, other: &Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        (lo <= hi).then_some(Interval { lo, hi })
    }

    /// Remove 0 when it is an endpoint (all the precision `≠ 0` buys an
    /// interval); `None` when the interval was exactly `[0, 0]`.
    fn refine_nonzero(&self) -> Option<Interval> {
        match (self.lo, self.hi) {
            (0, 0) => None,
            (0, hi) => Some(Interval { lo: 1, hi }),
            (lo, 0) => Some(Interval { lo, hi: -1 }),
            _ => Some(*self),
        }
    }

    fn add(&self, o: &Interval) -> Interval {
        Interval::of(self.lo + o.lo, self.hi + o.hi)
    }

    fn sub(&self, o: &Interval) -> Interval {
        Interval::of(self.lo - o.hi, self.hi - o.lo)
    }

    fn mul(&self, o: &Interval) -> Interval {
        let c = [
            self.lo * o.lo,
            self.lo * o.hi,
            self.hi * o.lo,
            self.hi * o.hi,
        ];
        Interval::of(*c.iter().min().unwrap(), *c.iter().max().unwrap())
    }

    fn neg(&self) -> Interval {
        Interval::of(-self.hi, -self.lo)
    }

    fn min_op(&self, o: &Interval) -> Interval {
        Interval {
            lo: self.lo.min(o.lo),
            hi: self.hi.min(o.hi),
        }
    }

    fn max_op(&self, o: &Interval) -> Interval {
        Interval {
            lo: self.lo.max(o.lo),
            hi: self.hi.max(o.hi),
        }
    }

    /// `a / b` with the VM's truncating semantics: precise only for a
    /// constant positive divisor (where truncation is monotone).
    fn div(&self, o: &Interval) -> Interval {
        match o.as_const() {
            Some(c) if c > 0 => Interval::of(self.lo / c as i128, self.hi / c as i128),
            _ => Interval::top(),
        }
    }

    /// `a % b`: bounded by the divisor's magnitude when it is a nonzero
    /// constant, with the dividend's sign when that is known.
    fn rem(&self, o: &Interval) -> Interval {
        match o.as_const() {
            Some(c) if c != 0 => {
                let m = (c as i128).abs() - 1;
                if self.lo >= 0 {
                    Interval::of(0, m)
                } else if self.hi <= 0 {
                    Interval::of(-m, 0)
                } else {
                    Interval::of(-m, m)
                }
            }
            _ => Interval::top(),
        }
    }

    fn eq_op(&self, o: &Interval) -> Interval {
        match (self.as_const(), o.as_const()) {
            (Some(a), Some(b)) => Interval::constant((a == b) as i64),
            _ if self.intersect(o).is_none() => Interval::constant(0),
            _ => Interval::of(0, 1),
        }
    }

    fn lt_op(&self, o: &Interval) -> Interval {
        if self.hi < o.lo {
            Interval::constant(1)
        } else if self.lo >= o.hi {
            Interval::constant(0)
        } else {
            Interval::of(0, 1)
        }
    }

    fn gt_op(&self, o: &Interval) -> Interval {
        o.lt_op(self)
    }

    /// Bitwise ops: precise on constants, `[0, min(hi)]`-style bounds for
    /// provably non-negative `And`, ⊤ otherwise.
    fn and_op(&self, o: &Interval) -> Interval {
        match (self.as_const(), o.as_const()) {
            (Some(a), Some(b)) => Interval::constant(a & b),
            _ if self.lo >= 0 && o.lo >= 0 => Interval::of(0, self.hi.min(o.hi)),
            _ => Interval::top(),
        }
    }

    fn or_op(&self, o: &Interval) -> Interval {
        match (self.as_const(), o.as_const()) {
            (Some(a), Some(b)) => Interval::constant(a | b),
            _ => Interval::top(),
        }
    }

    fn xor_op(&self, o: &Interval) -> Interval {
        match (self.as_const(), o.as_const()) {
            (Some(a), Some(b)) => Interval::constant(a ^ b),
            _ => Interval::top(),
        }
    }
}

/// One abstract stack slot: its interval plus, when the value is an
/// unmodified copy of a local (pushed by `Load`), which local — the
/// provenance that lets a branch on the copy refine the local itself.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Slot {
    /// Possible values.
    pub iv: Interval,
    /// `Some(k)` when this is a live copy of local `k`.
    pub src: Option<u8>,
}

impl Slot {
    fn new(iv: Interval) -> Slot {
        Slot { iv, src: None }
    }
}

/// The abstract state at a program point.
#[derive(Clone, Debug, PartialEq)]
pub struct RangeFact {
    /// ⊥ marker: `false` means "no execution reaches here yet".
    pub reachable: bool,
    /// One slot per operand-stack entry, bottom of stack first.
    pub stack: Vec<Slot>,
    /// Interval of each local.
    pub locals: [Interval; MAX_LOCALS as usize],
    /// The slot popped by the most recent conditional branch, kept so the
    /// edge refinement can see what was tested.
    branch_cond: Option<Slot>,
    /// Changed-join counter driving widening at this point.
    joins: u32,
}

impl RangeFact {
    fn bottom() -> RangeFact {
        RangeFact {
            reachable: false,
            stack: Vec::new(),
            locals: [Interval::top(); MAX_LOCALS as usize],
            branch_cond: None,
            joins: 0,
        }
    }

    fn entry() -> RangeFact {
        RangeFact {
            reachable: true,
            stack: Vec::new(),
            // Locals start zeroed in the VM.
            locals: [Interval::constant(0); MAX_LOCALS as usize],
            branch_cond: None,
            joins: 0,
        }
    }

    fn push(&mut self, s: Slot) {
        self.stack.push(s);
    }

    /// Pop a slot; ⊤ when the abstract stack is unexpectedly shallow (the
    /// verifier rules that out for certified programs; stay total anyway).
    fn pop(&mut self) -> Slot {
        self.stack.pop().unwrap_or(Slot::new(Interval::top()))
    }

    /// Drop provenance tags referring to local `k` (it is being re-stored,
    /// so stack copies stop tracking it).
    fn invalidate_src(&mut self, k: u8) {
        for s in &mut self.stack {
            if s.src == Some(k) {
                s.src = None;
            }
        }
    }
}

/// The range analysis (a [`dataflow::Analysis`] instance).
#[derive(Clone, Copy, Debug, Default)]
pub struct RangeAnalysis;

impl Analysis for RangeAnalysis {
    type Fact = RangeFact;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn boundary(&self) -> RangeFact {
        RangeFact::entry()
    }

    fn bottom(&self) -> RangeFact {
        RangeFact::bottom()
    }

    fn join(&self, fact: &mut RangeFact, other: &RangeFact) -> bool {
        if !other.reachable {
            return false;
        }
        if !fact.reachable {
            *fact = other.clone();
            fact.joins = 0;
            return true;
        }
        // Widening: past this many changed joins at one point, any bound
        // *still moving* jumps straight to the rim (per bound, so a stable
        // loop counter keeps its range while an unbounded accumulator next
        // to it goes to ±∞). Guarantees termination: pre-widening changes
        // are counted, post-widening ones each pin a bound permanently.
        let widen = fact.joins >= WIDEN_AFTER;
        let widened_hull = |cur: Interval, hull: Interval| -> Interval {
            if !widen {
                return hull;
            }
            Interval {
                lo: if hull.lo < cur.lo { I64MIN } else { cur.lo },
                hi: if hull.hi > cur.hi { I64MAX } else { cur.hi },
            }
        };
        let mut changed = false;
        // Verified programs join at equal heights; degrade to the shorter
        // prefix (from the top) if a caller runs this on unverified code.
        if fact.stack.len() != other.stack.len() {
            let keep = fact.stack.len().min(other.stack.len());
            let cut = fact.stack.len() - keep;
            fact.stack.drain(..cut);
            changed = true;
        }
        let skip = other.stack.len() - fact.stack.len();
        for (s, o) in fact.stack.iter_mut().zip(other.stack.iter().skip(skip)) {
            let hull = s.iv.hull(&o.iv);
            if hull != s.iv {
                s.iv = widened_hull(s.iv, hull);
                changed = true;
            }
            if s.src != o.src && s.src.is_some() {
                s.src = None;
                changed = true;
            }
        }
        for (l, o) in fact.locals.iter_mut().zip(other.locals.iter()) {
            let hull = l.hull(o);
            if hull != *l {
                *l = widened_hull(*l, hull);
                changed = true;
            }
        }
        if changed {
            fact.joins += 1;
        }
        changed
    }

    fn transfer(&self, _pc: usize, op: Op, f: &mut RangeFact) {
        if !f.reachable {
            return;
        }
        macro_rules! binop {
            ($m:ident) => {{
                let b = f.pop();
                let a = f.pop();
                f.push(Slot::new(a.iv.$m(&b.iv)));
            }};
        }
        match op {
            Op::PushI(v) => f.push(Slot::new(Interval::constant(v))),
            Op::Dup => {
                let top = *f.stack.last().unwrap_or(&Slot::new(Interval::top()));
                f.push(top);
            }
            Op::Drop => {
                f.pop();
            }
            Op::Swap => {
                let b = f.pop();
                let a = f.pop();
                f.push(b);
                f.push(a);
            }
            Op::Over => {
                let n = f.stack.len();
                let v = if n >= 2 {
                    f.stack[n - 2]
                } else {
                    Slot::new(Interval::top())
                };
                f.push(v);
            }
            Op::Add => binop!(add),
            Op::Sub => binop!(sub),
            Op::Mul => binop!(mul),
            Op::Div => binop!(div),
            Op::Rem => binop!(rem),
            Op::Neg => {
                let a = f.pop();
                f.push(Slot::new(a.iv.neg()));
            }
            Op::Min => binop!(min_op),
            Op::Max => binop!(max_op),
            Op::And => binop!(and_op),
            Op::Or => binop!(or_op),
            Op::Xor => binop!(xor_op),
            Op::Eq => binop!(eq_op),
            Op::Lt => binop!(lt_op),
            Op::Gt => binop!(gt_op),
            Op::Jmp(_) => {}
            Op::Jz(_) | Op::Jnz(_) => {
                let c = f.pop();
                f.branch_cond = Some(c);
            }
            Op::Arg(_) => f.push(Slot::new(Interval::top())),
            Op::Store(n) => {
                let v = f.pop();
                f.locals[n as usize] = v.iv;
                f.invalidate_src(n);
            }
            Op::Load(n) => f.push(Slot {
                iv: f.locals[n as usize],
                src: Some(n),
            }),
            Op::Syscall(_, argc) => {
                for _ in 0..argc {
                    f.pop();
                }
                f.push(Slot::new(Interval::top()));
            }
            Op::Halt => {}
        }
    }

    fn refine_edge(&self, _pc: usize, op: Op, edge: Edge, f: &mut RangeFact) {
        if !f.reachable {
            return;
        }
        let Some(cond) = f.branch_cond else { return };
        // Which edge implies "condition was zero"?
        let zero_edge = match op {
            Op::Jz(_) => Edge::Taken,
            Op::Jnz(_) => Edge::Fallthrough,
            _ => return,
        };
        let Some(k) = cond.src else { return };
        let k = k as usize;
        if edge == zero_edge {
            match f.locals[k].intersect(&Interval::constant(0)) {
                Some(iv) => f.locals[k] = iv,
                // The zero edge is infeasible: no execution reaches it.
                None => f.reachable = false,
            }
        } else {
            match f.locals[k].refine_nonzero() {
                Some(iv) => f.locals[k] = iv,
                None => f.reachable = false,
            }
        }
    }
}

/// The solved analysis plus everything needed to answer per-point queries.
pub struct Ranges {
    program: Program,
    solution: Solution<RangeFact>,
}

impl Ranges {
    /// Run the analysis. `None` when the fixpoint exceeded `max_visits`
    /// instruction transfers (hostile or pathological input — callers must
    /// treat this as "no information", never as an error).
    pub fn analyze(program: &Program, cfg: &Cfg, max_visits: u64) -> Option<Ranges> {
        let solution = dataflow::solve(&RangeAnalysis, program, cfg, max_visits)?;
        Some(Ranges {
            program: program.clone(),
            solution,
        })
    }

    /// The abstract state holding immediately before `pc` executes.
    pub fn before(&self, cfg: &Cfg, pc: usize) -> RangeFact {
        self.solution
            .at_instruction(&RangeAnalysis, &self.program, cfg, pc)
    }

    /// Interval of the operand-stack top just before `pc` (the branch
    /// condition for `Jz`/`Jnz` at `pc`); `None` when `pc` is unreachable
    /// or the abstract stack is empty there.
    pub fn stack_top_before(&self, cfg: &Cfg, pc: usize) -> Option<Interval> {
        let f = self.before(cfg, pc);
        if !f.reachable {
            return None;
        }
        f.stack.last().map(|s| s.iv)
    }

    /// A static bound on retired instructions for a program **with
    /// loops**, when every reachable loop matches the counted-loop shape
    /// (see the module docs). `None` whenever any reachable loop cannot be
    /// bounded — the sound default.
    pub fn loop_fuel_bound(&self, cfg: &Cfg) -> Option<u64> {
        loop_fuel_bound(&self.program, cfg, &self.solution)
    }
}

/// Per-SCC instruction weight for the condensation longest-path: how many
/// instructions one execution can retire inside the component.
fn scc_weight(
    program: &Program,
    cfg: &Cfg,
    solution: &Solution<RangeFact>,
    scc: &[usize],
) -> Option<u64> {
    let blocks = cfg.blocks();
    let cyclic = scc.len() > 1 || cfg.has_self_loop(scc[0]);
    let scc_len: u64 = scc.iter().map(|&b| blocks[b].len() as u64).sum();
    if !cyclic {
        return Some(scc_len);
    }
    let in_scc = |b: usize| scc.binary_search(&b).is_ok();

    // Unique loop header: the only block entered from outside the SCC
    // (or the program entry).
    let preds = cfg.predecessors();
    let mut headers = scc.iter().copied().filter(|&b| {
        b == 0 || preds[b].iter().any(|&p| !in_scc(p))
    });
    let header = headers.next()?;
    if headers.next().is_some() {
        return None; // multi-entry region: no bound
    }

    // Every in-SCC cycle must pass through the header: with the header
    // removed, the rest of the SCC must be acyclic (otherwise an iteration
    // could retire unboundedly many instructions between header visits).
    if !acyclic_without(cfg, scc, &[header]) {
        return None;
    }

    // Header shape: `Load k; Jz exit` (exit outside the SCC) or
    // `Load k; Jnz body` (body inside, fall-through outside).
    let code = program.ops();
    let hblock = &blocks[header];
    if hblock.len() != 2 {
        return None;
    }
    let k = match code[hblock.start] {
        Op::Load(k) => k,
        _ => return None,
    };
    match code[hblock.start + 1] {
        Op::Jz(t) => {
            if in_scc(cfg.block_of(t as usize)) {
                return None; // exit edge must leave the loop
            }
        }
        Op::Jnz(t) => {
            if !in_scc(cfg.block_of(t as usize)) {
                return None; // continue edge must stay in the loop
            }
            let fall = hblock.start + 2;
            if fall >= code.len() || in_scc(cfg.block_of(fall)) {
                return None; // fall-through must be the exit
            }
        }
        _ => return None,
    }

    // Exactly one Store(k) in the SCC, and its stored value must be
    // provably the current k minus one.
    let mut store_block = None;
    for &b in scc {
        for pc in blocks[b].start..blocks[b].end {
            if code[pc] == Op::Store(k) {
                if store_block.is_some() {
                    return None;
                }
                store_block = Some(b);
                if !stores_k_minus_one(code, blocks[b].start, pc, k) {
                    return None;
                }
            }
        }
    }
    let store_block = store_block?;

    // Every iteration must execute the decrement: no header→header cycle
    // may avoid the store block.
    if !acyclic_without(cfg, scc, &[header, store_block]) {
        return None;
    }

    // Counter interval at the header. 0 ≤ lo keeps unit decrements from
    // wrapping past zero; a finite hi caps the trip count.
    let entry = solution.block_entry(header);
    if !entry.reachable {
        return Some(scc_len); // loop never entered; charge one pass
    }
    let iv = entry.locals[k as usize];
    if iv.lo < 0 {
        return None;
    }
    let trips = u64::try_from(iv.hi).ok()?;
    // Header visits ≤ trips + 1; each visit retires at most one acyclic
    // traversal of the SCC (≤ scc_len instructions).
    trips.checked_add(1)?.checked_mul(scc_len)
}

/// Is the subgraph induced by `scc` minus the `removed` blocks acyclic?
fn acyclic_without(cfg: &Cfg, scc: &[usize], removed: &[usize]) -> bool {
    let keep: Vec<usize> = scc
        .iter()
        .copied()
        .filter(|b| !removed.contains(b))
        .collect();
    if keep.is_empty() {
        return true;
    }
    let in_keep = |b: usize| keep.binary_search(&b).is_ok();
    // Kahn's algorithm over the induced subgraph.
    let mut indeg: Vec<usize> = keep
        .iter()
        .map(|&b| {
            cfg.predecessors()[b]
                .iter()
                .filter(|&&p| in_keep(p))
                .count()
        })
        .collect();
    let mut queue: Vec<usize> = (0..keep.len()).filter(|&i| indeg[i] == 0).collect();
    let mut seen = 0;
    while let Some(i) = queue.pop() {
        seen += 1;
        for &s in &cfg.blocks()[keep[i]].successors {
            if let Ok(j) = keep.binary_search(&s) {
                indeg[j] -= 1;
                if indeg[j] == 0 {
                    queue.push(j);
                }
            }
        }
    }
    seen == keep.len()
}

/// Does the instruction sequence `block_start..store_pc` leave exactly
/// `k − 1` on top of the stack at the `Store k`? Decided by a symbolic
/// scan of the block prefix over the tiny domain
/// `{⊤, Const(c), Loc(slot, delta)}`; any value whose computation began
/// before this block is ⊤ (the pattern must be block-local to be trusted).
fn stores_k_minus_one(code: &[Op], block_start: usize, store_pc: usize, k: u8) -> bool {
    #[derive(Clone, Copy, PartialEq)]
    enum Sym {
        Top,
        Const(i64),
        Loc(u8, i64),
    }
    fn pop(stack: &mut Vec<Sym>) -> Sym {
        stack.pop().unwrap_or(Sym::Top)
    }
    let mut stack: Vec<Sym> = Vec::new();
    for &op in code.iter().take(store_pc).skip(block_start) {
        match op {
            Op::PushI(v) => stack.push(Sym::Const(v)),
            Op::Load(n) => stack.push(Sym::Loc(n, 0)),
            Op::Arg(_) | Op::Syscall(..) => {
                if let Op::Syscall(_, argc) = op {
                    for _ in 0..argc {
                        pop(&mut stack);
                    }
                }
                stack.push(Sym::Top);
            }
            Op::Dup => {
                let t = *stack.last().unwrap_or(&Sym::Top);
                stack.push(t);
            }
            Op::Drop => {
                pop(&mut stack);
            }
            Op::Swap => {
                let b = pop(&mut stack);
                let a = pop(&mut stack);
                stack.push(b);
                stack.push(a);
            }
            Op::Over => {
                let n = stack.len();
                let v = if n >= 2 { stack[n - 2] } else { Sym::Top };
                stack.push(v);
            }
            Op::Add | Op::Sub => {
                let b = pop(&mut stack);
                let a = pop(&mut stack);
                let sign = if op == Op::Add { 1i64 } else { -1 };
                let r = match (a, b) {
                    (Sym::Const(x), Sym::Const(y)) => y
                        .checked_mul(sign)
                        .and_then(|y| x.checked_add(y))
                        .map_or(Sym::Top, Sym::Const),
                    (Sym::Loc(n, d), Sym::Const(y)) => y
                        .checked_mul(sign)
                        .and_then(|y| d.checked_add(y))
                        .map_or(Sym::Top, |d| Sym::Loc(n, d)),
                    (Sym::Const(x), Sym::Loc(n, d)) if op == Op::Add => {
                        x.checked_add(d).map_or(Sym::Top, |d| Sym::Loc(n, d))
                    }
                    _ => Sym::Top,
                };
                stack.push(r);
            }
            Op::Store(n) => {
                let _ = pop(&mut stack);
                // A store to the counter before the tracked one shouldn't
                // happen (single-store rule), but a store to any local
                // invalidates nothing in this domain except copies of it:
                for s in &mut stack {
                    if matches!(s, Sym::Loc(m, _) if *m == n) {
                        *s = Sym::Top;
                    }
                }
            }
            _ => {
                // Any other op produces an untracked value; model its
                // stack effect coarsely as ⊤ results.
                let (pops, pushes) = coarse_effect(op);
                for _ in 0..pops {
                    pop(&mut stack);
                }
                for _ in 0..pushes {
                    stack.push(Sym::Top);
                }
            }
        }
    }
    stack.last() == Some(&Sym::Loc(k, -1))
}

/// Coarse stack effect for ops the symbolic scan does not model.
fn coarse_effect(op: Op) -> (u32, u32) {
    match op {
        Op::Mul | Op::Div | Op::Rem | Op::Min | Op::Max | Op::And | Op::Or | Op::Xor
        | Op::Eq | Op::Lt | Op::Gt => (2, 1),
        Op::Neg => (1, 1),
        Op::Jz(_) | Op::Jnz(_) => (1, 0),
        _ => (0, 0),
    }
}

/// Longest path over the SCC condensation, each component weighted by the
/// most instructions one execution can retire inside it.
fn loop_fuel_bound(
    program: &Program,
    cfg: &Cfg,
    solution: &Solution<RangeFact>,
) -> Option<u64> {
    let sccs = cfg.sccs();
    if sccs.is_empty() {
        return None;
    }
    let mut weight: Vec<u64> = Vec::with_capacity(sccs.len());
    for scc in &sccs {
        weight.push(scc_weight(program, cfg, solution, scc)?);
    }
    // Map block → component index.
    let mut comp_of = vec![usize::MAX; cfg.blocks().len()];
    for (i, scc) in sccs.iter().enumerate() {
        for &b in scc {
            comp_of[b] = i;
        }
    }
    // Tarjan emits components in reverse topological order; iterate them
    // reversed for a forward longest-path sweep from the entry component.
    let entry_comp = comp_of[0];
    let mut dist: Vec<Option<u64>> = vec![None; sccs.len()];
    dist[entry_comp] = Some(weight[entry_comp]);
    let mut best: u64 = weight[entry_comp];
    for i in (0..sccs.len()).rev() {
        let Some(d) = dist[i] else { continue };
        best = best.max(d);
        for &b in &sccs[i] {
            for &s in &cfg.blocks()[b].successors {
                let j = comp_of[s];
                if j == i || j == usize::MAX {
                    continue;
                }
                let cand = d.checked_add(weight[j])?;
                if dist[j].is_none_or(|cur| cand > cur) {
                    dist[j] = Some(cand);
                }
            }
        }
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn ranges(src: &str) -> (Program, Cfg, Ranges) {
        let p = assemble(src).unwrap();
        let cfg = Cfg::build(&p);
        let r = Ranges::analyze(&p, &cfg, RANGE_VISIT_BUDGET).expect("budget ample");
        (p, cfg, r)
    }

    #[test]
    fn constants_propagate_through_arithmetic() {
        let (p, cfg, r) = ranges(
            "push 6
             push 7
             mul
             push 2
             add
             halt",
        );
        // Before `halt` the stack top is the constant 44.
        let top = r.stack_top_before(&cfg, p.len() - 1).unwrap();
        assert_eq!(top.as_const(), Some(44));
    }

    #[test]
    fn clamping_bounds_an_argument() {
        let (p, cfg, r) = ranges(
            "arg 0
             push 0
             max
             push 100
             min
             halt",
        );
        let top = r.stack_top_before(&cfg, p.len() - 1).unwrap();
        assert_eq!((top.lo, top.hi), (0, 100));
    }

    #[test]
    fn wrapping_addition_falls_back_to_top() {
        let (p, cfg, r) = ranges(&format!(
            "push {}
             push 1
             add
             halt",
            i64::MAX
        ));
        let top = r.stack_top_before(&cfg, p.len() - 1).unwrap();
        assert_eq!(top, Interval::top());
    }

    #[test]
    fn branch_refinement_narrows_a_local() {
        // After `jz done` falls through, local 0 is nonzero; combined with
        // the clamp its interval is [1, 5].
        let (_p, cfg, r) = ranges(
            "arg 0
             push 0
             max
             push 5
             min
             store 0
             load 0
             jz done
             load 0
             halt
             done:
             push 0
             halt",
        );
        // pc 8 is the `load 0` on the nonzero arm; pc 9 its halt.
        let f = r.before(&cfg, 8);
        assert!(f.reachable);
        assert_eq!((f.locals[0].lo, f.locals[0].hi), (1, 5));
        // On the zero arm the local is exactly zero.
        let f = r.before(&cfg, 10);
        assert_eq!(f.locals[0].as_const(), Some(0));
    }

    #[test]
    fn counted_loop_gets_a_fuel_bound() {
        // Classic counted loop with a clamped trip count.
        let (_p, cfg, r) = ranges(
            "push 0
             store 0
             arg 0
             push 0
             max
             push 100
             min
             store 1
             loop:
             load 1
             jz out
             load 0
             load 1
             add
             store 0
             load 1
             push 1
             sub
             store 1
             jmp loop
             out:
             load 0
             halt",
        );
        let bound = r.loop_fuel_bound(&cfg).expect("counted loop is bounded");
        // 101 header visits × loop instructions, plus straight-line code:
        // generous but finite and sound.
        assert!(bound >= 100, "bound {bound} must cover all trips");
        assert!(bound < 10_000, "bound {bound} should be proportionate");
    }

    #[test]
    fn unclamped_counter_has_no_bound() {
        let (_p, cfg, r) = ranges(
            "push 0
             store 0
             arg 0
             store 1
             loop:
             load 1
             jz out
             load 1
             push 1
             sub
             store 1
             jmp loop
             out:
             load 0
             halt",
        );
        assert_eq!(r.loop_fuel_bound(&cfg), None, "arg is unbounded");
    }

    #[test]
    fn non_unit_stride_has_no_bound() {
        // Decrement by 2 can step over zero and wrap: refuse.
        let (_p, cfg, r) = ranges(
            "push 10
             store 1
             loop:
             load 1
             jz out
             load 1
             push 2
             sub
             store 1
             jmp loop
             out:
             push 0
             halt",
        );
        assert_eq!(r.loop_fuel_bound(&cfg), None);
    }

    #[test]
    fn growing_counter_widens_and_refuses() {
        // i += 1 forever (jnz back) — widening must terminate the
        // analysis, and no bound may be claimed.
        let (_p, cfg, r) = ranges(
            "push 1
             store 1
             loop:
             load 1
             jz out
             load 1
             push 1
             add
             store 1
             jmp loop
             out:
             push 0
             halt",
        );
        assert_eq!(r.loop_fuel_bound(&cfg), None);
    }

    #[test]
    fn jnz_form_of_counted_loop_is_bounded() {
        let (_p, cfg, r) = ranges(
            "push 7
             store 1
             loop:
             load 1
             jnz body
             jmp out
             body:
             load 1
             push 1
             sub
             store 1
             jmp loop
             out:
             push 0
             halt",
        );
        let bound = r.loop_fuel_bound(&cfg).expect("jnz counted loop bounded");
        assert!(bound >= 7);
    }

    #[test]
    fn infeasible_branch_is_unreachable() {
        // Local 0 is the constant 0, so the jnz fall-through is the only
        // feasible path; the taken arm's fact is unreachable.
        let (_p, cfg, r) = ranges(
            "push 0
             store 0
             load 0
             jnz taken
             push 1
             halt
             taken:
             push 2
             halt",
        );
        assert!(r.before(&cfg, 4).reachable, "fall-through feasible");
        assert!(!r.before(&cfg, 6).reachable, "taken arm infeasible");
    }
}
