//! The interpreter: fuel-metered, bounded, panic-free.

use crate::isa::{Op, MAX_LOCALS};
use crate::program::Program;

/// Default fuel budget (instructions) — generous for proxy-sized code.
pub const FUEL_DEFAULT: u64 = 100_000;

/// Hard operand-stack bound.
pub const STACK_MAX: usize = 256;

/// Execution failures. All are *results*, never panics: mobile code must
/// not be able to take the host down.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VmError {
    /// Instruction budget exhausted (runaway or hostile code).
    OutOfFuel,
    /// An op needed more stack entries than present.
    StackUnderflow {
        /// Program counter at the failure.
        at: usize,
    },
    /// The operand stack exceeded [`STACK_MAX`].
    StackOverflow {
        /// Program counter at the failure.
        at: usize,
    },
    /// Division or remainder by zero.
    DivByZero {
        /// Program counter at the failure.
        at: usize,
    },
    /// Execution ran off the end without `Halt`.
    NoHalt,
    /// `Halt` with an empty stack (no result value).
    NoResult,
    /// The host rejected a syscall.
    HostError {
        /// Syscall id.
        id: u8,
    },
}

/// Host interface: the device-side effects a proxy may invoke.
pub trait Host {
    /// Handle syscall `id` with `args`; `Err(())` aborts the program with
    /// [`VmError::HostError`].
    fn syscall(&mut self, id: u8, args: &[i64]) -> Result<i64, ()>;
}

/// A host offering no syscalls (pure computation only).
#[derive(Clone, Copy, Debug, Default)]
pub struct NullHost;

impl Host for NullHost {
    fn syscall(&mut self, _id: u8, _args: &[i64]) -> Result<i64, ()> {
        Err(())
    }
}

/// The virtual machine. Stateless between runs; create once, reuse freely.
#[derive(Clone, Copy, Debug, Default)]
pub struct Vm;

impl Vm {
    /// Execute `program` with `args` against `host` under a `fuel` budget.
    /// Returns the value on top of the stack at `Halt`.
    pub fn run(
        &self,
        program: &Program,
        args: &[i64],
        host: &mut dyn Host,
        fuel: u64,
    ) -> Result<i64, VmError> {
        let code = program.ops();
        let mut stack: Vec<i64> = Vec::with_capacity(16);
        let mut locals = [0i64; MAX_LOCALS as usize];
        let mut pc: usize = 0;
        let mut fuel = fuel;

        macro_rules! pop {
            () => {
                stack.pop().ok_or(VmError::StackUnderflow { at: pc })?
            };
        }
        macro_rules! push {
            ($v:expr) => {{
                if stack.len() >= STACK_MAX {
                    return Err(VmError::StackOverflow { at: pc });
                }
                stack.push($v);
            }};
        }
        macro_rules! binop {
            ($f:expr) => {{
                let b = pop!();
                let a = pop!();
                let f: fn(i64, i64) -> i64 = $f;
                push!(f(a, b));
            }};
        }

        while pc < code.len() {
            if fuel == 0 {
                return Err(VmError::OutOfFuel);
            }
            fuel -= 1;
            let op = code[pc];
            let mut next = pc + 1;
            match op {
                Op::PushI(v) => push!(v),
                Op::Dup => {
                    let v = *stack.last().ok_or(VmError::StackUnderflow { at: pc })?;
                    push!(v);
                }
                Op::Drop => {
                    pop!();
                }
                Op::Swap => {
                    let b = pop!();
                    let a = pop!();
                    push!(b);
                    push!(a);
                }
                Op::Over => {
                    if stack.len() < 2 {
                        return Err(VmError::StackUnderflow { at: pc });
                    }
                    let v = stack[stack.len() - 2];
                    push!(v);
                }
                Op::Add => binop!(|a: i64, b: i64| a.wrapping_add(b)),
                Op::Sub => binop!(|a: i64, b: i64| a.wrapping_sub(b)),
                Op::Mul => binop!(|a: i64, b: i64| a.wrapping_mul(b)),
                Op::Div => {
                    let b = pop!();
                    let a = pop!();
                    if b == 0 {
                        return Err(VmError::DivByZero { at: pc });
                    }
                    push!(a.wrapping_div(b));
                }
                Op::Rem => {
                    let b = pop!();
                    let a = pop!();
                    if b == 0 {
                        return Err(VmError::DivByZero { at: pc });
                    }
                    push!(a.wrapping_rem(b));
                }
                Op::Neg => {
                    let a = pop!();
                    push!(a.wrapping_neg());
                }
                Op::Min => binop!(|a: i64, b: i64| a.min(b)),
                Op::Max => binop!(|a: i64, b: i64| a.max(b)),
                Op::And => binop!(|a: i64, b: i64| a & b),
                Op::Or => binop!(|a: i64, b: i64| a | b),
                Op::Xor => binop!(|a: i64, b: i64| a ^ b),
                Op::Eq => binop!(|a: i64, b: i64| (a == b) as i64),
                Op::Lt => binop!(|a: i64, b: i64| (a < b) as i64),
                Op::Gt => binop!(|a: i64, b: i64| (a > b) as i64),
                Op::Jmp(t) => next = t as usize,
                Op::Jz(t) => {
                    if pop!() == 0 {
                        next = t as usize;
                    }
                }
                Op::Jnz(t) => {
                    if pop!() != 0 {
                        next = t as usize;
                    }
                }
                Op::Arg(n) => push!(args.get(n as usize).copied().unwrap_or(0)),
                Op::Store(n) => {
                    locals[n as usize] = pop!();
                }
                Op::Load(n) => push!(locals[n as usize]),
                Op::Syscall(id, argc) => {
                    let argc = argc as usize;
                    if stack.len() < argc {
                        return Err(VmError::StackUnderflow { at: pc });
                    }
                    let split = stack.len() - argc;
                    let call_args: Vec<i64> = stack.split_off(split);
                    let reply = host
                        .syscall(id, &call_args)
                        .map_err(|()| VmError::HostError { id })?;
                    push!(reply);
                }
                Op::Halt => return stack.last().copied().ok_or(VmError::NoResult),
            }
            pc = next;
        }
        Err(VmError::NoHalt)
    }

    /// Run with the default fuel budget.
    pub fn run_default(
        &self,
        program: &Program,
        args: &[i64],
        host: &mut dyn Host,
    ) -> Result<i64, VmError> {
        self.run(program, args, host, FUEL_DEFAULT)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(ops: Vec<Op>, args: &[i64]) -> Result<i64, VmError> {
        let p = Program::new(ops).unwrap();
        Vm.run(&p, args, &mut NullHost, 10_000)
    }

    #[test]
    fn arithmetic_works() {
        assert_eq!(run(vec![Op::PushI(2), Op::PushI(3), Op::Add, Op::Halt], &[]), Ok(5));
        assert_eq!(run(vec![Op::PushI(7), Op::PushI(3), Op::Sub, Op::Halt], &[]), Ok(4));
        assert_eq!(run(vec![Op::PushI(6), Op::PushI(7), Op::Mul, Op::Halt], &[]), Ok(42));
        assert_eq!(run(vec![Op::PushI(9), Op::PushI(2), Op::Div, Op::Halt], &[]), Ok(4));
        assert_eq!(run(vec![Op::PushI(9), Op::PushI(2), Op::Rem, Op::Halt], &[]), Ok(1));
        assert_eq!(run(vec![Op::PushI(5), Op::Neg, Op::Halt], &[]), Ok(-5));
        assert_eq!(run(vec![Op::PushI(3), Op::PushI(9), Op::Min, Op::Halt], &[]), Ok(3));
        assert_eq!(run(vec![Op::PushI(3), Op::PushI(9), Op::Max, Op::Halt], &[]), Ok(9));
    }

    #[test]
    fn comparisons_and_logic() {
        assert_eq!(run(vec![Op::PushI(3), Op::PushI(3), Op::Eq, Op::Halt], &[]), Ok(1));
        assert_eq!(run(vec![Op::PushI(2), Op::PushI(3), Op::Lt, Op::Halt], &[]), Ok(1));
        assert_eq!(run(vec![Op::PushI(2), Op::PushI(3), Op::Gt, Op::Halt], &[]), Ok(0));
        assert_eq!(run(vec![Op::PushI(0b1100), Op::PushI(0b1010), Op::And, Op::Halt], &[]), Ok(0b1000));
        assert_eq!(run(vec![Op::PushI(0b1100), Op::PushI(0b1010), Op::Or, Op::Halt], &[]), Ok(0b1110));
        assert_eq!(run(vec![Op::PushI(0b1100), Op::PushI(0b1010), Op::Xor, Op::Halt], &[]), Ok(0b0110));
    }

    #[test]
    fn stack_shuffles() {
        assert_eq!(run(vec![Op::PushI(1), Op::Dup, Op::Add, Op::Halt], &[]), Ok(2));
        assert_eq!(
            run(vec![Op::PushI(1), Op::PushI(2), Op::Swap, Op::Sub, Op::Halt], &[]),
            Ok(1)
        );
        assert_eq!(
            run(vec![Op::PushI(5), Op::PushI(9), Op::Over, Op::Add, Op::Add, Op::Halt], &[]),
            Ok(19)
        );
        assert_eq!(
            run(vec![Op::PushI(1), Op::PushI(2), Op::Drop, Op::Halt], &[]),
            Ok(1)
        );
    }

    #[test]
    fn args_and_locals() {
        // f(a, b) = a * 10 + b
        let r = run(
            vec![
                Op::Arg(0),
                Op::PushI(10),
                Op::Mul,
                Op::Arg(1),
                Op::Add,
                Op::Halt,
            ],
            &[7, 3],
        );
        assert_eq!(r, Ok(73));
        // Missing args read as zero.
        assert_eq!(run(vec![Op::Arg(5), Op::Halt], &[1]), Ok(0));
        // Locals default to zero; store/load round-trips.
        assert_eq!(
            run(vec![Op::PushI(9), Op::Store(3), Op::Load(3), Op::Halt], &[]),
            Ok(9)
        );
        assert_eq!(run(vec![Op::Load(7), Op::Halt], &[]), Ok(0));
    }

    #[test]
    fn loop_with_jumps_computes_sum() {
        // sum 1..=n via a loop: locals[0]=acc, locals[1]=i
        let p = vec![
            Op::Arg(0),      // 0: n
            Op::Store(1),    // 1: i = n
            Op::Load(1),     // 2: loop head
            Op::Jz(11),      // 3: while i != 0
            Op::Load(0),     // 4
            Op::Load(1),     // 5
            Op::Add,         // 6
            Op::Store(0),    // 7: acc += i
            Op::Load(1),     // 8
            Op::PushI(1),    // 9 ... i -= 1  (continued below)
            Op::Sub,         // 10
            // fallthrough fix below
            Op::Load(0),     // 11: result
            Op::Halt,        // 12
        ];
        // Need to store back and jump — rebuild properly:
        let p = {
            let mut v = p;
            v.truncate(11);
            v.push(Op::Store(1)); // 11
            v.push(Op::Jmp(2)); // 12
            v.push(Op::Load(0)); // 13
            v.push(Op::Halt); // 14
            // fix Jz target to 13
            v[3] = Op::Jz(13);
            v
        };
        assert_eq!(run(p, &[10]), Ok(55));
    }

    #[test]
    fn division_by_zero_is_an_error() {
        assert_eq!(
            run(vec![Op::PushI(1), Op::PushI(0), Op::Div, Op::Halt], &[]),
            Err(VmError::DivByZero { at: 2 })
        );
        assert_eq!(
            run(vec![Op::PushI(1), Op::PushI(0), Op::Rem, Op::Halt], &[]),
            Err(VmError::DivByZero { at: 2 })
        );
    }

    #[test]
    fn underflow_overflow_and_no_halt() {
        assert_eq!(run(vec![Op::Add, Op::Halt], &[]), Err(VmError::StackUnderflow { at: 0 }));
        assert_eq!(run(vec![Op::PushI(1)], &[]), Err(VmError::NoHalt));
        assert_eq!(run(vec![Op::Halt], &[]), Err(VmError::NoResult));
        // Overflow: a loop pushing forever trips the stack bound before fuel.
        let p = vec![Op::PushI(1), Op::Jmp(0)];
        let r = run(p, &[]);
        assert!(matches!(r, Err(VmError::StackOverflow { .. })), "{r:?}");
    }

    #[test]
    fn infinite_loop_runs_out_of_fuel() {
        let p = Program::new(vec![Op::Jmp(0)]).unwrap();
        assert_eq!(Vm.run(&p, &[], &mut NullHost, 1000), Err(VmError::OutOfFuel));
    }

    #[test]
    fn syscalls_reach_the_host() {
        struct Recorder {
            calls: Vec<(u8, Vec<i64>)>,
        }
        impl Host for Recorder {
            fn syscall(&mut self, id: u8, args: &[i64]) -> Result<i64, ()> {
                self.calls.push((id, args.to_vec()));
                Ok(args.iter().sum::<i64>() * 2)
            }
        }
        let p = Program::new(vec![
            Op::PushI(3),
            Op::PushI(4),
            Op::Syscall(9, 2),
            Op::Halt,
        ])
        .unwrap();
        let mut host = Recorder { calls: vec![] };
        assert_eq!(Vm.run(&p, &[], &mut host, 100), Ok(14));
        assert_eq!(host.calls, vec![(9, vec![3, 4])]);
    }

    #[test]
    fn host_rejection_aborts() {
        let p = Program::new(vec![Op::Syscall(1, 0), Op::Halt]).unwrap();
        assert_eq!(
            Vm.run(&p, &[], &mut NullHost, 100),
            Err(VmError::HostError { id: 1 })
        );
    }
}
