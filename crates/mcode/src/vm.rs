//! The interpreter: fuel-metered, bounded, panic-free.
//!
//! Two execution paths share the instruction semantics:
//!
//! - [`Vm::run`] — the *checked* path for any validated [`Program`]:
//!   every pop tests for underflow, every push tests the [`STACK_MAX`]
//!   bound, and every instruction is fuel-metered.
//! - [`Vm::run_verified`] — the *fast* path, only reachable with a
//!   [`VerifiedProgram`] certificate from the static verifier
//!   ([`crate::verify`]). The verifier has already proved no execution
//!   can underflow or overflow the stack, read an uninitialized local,
//!   or run off the end, so this path pre-sizes the stack to the proven
//!   maximum depth and drops the per-op checks; when the program is
//!   loop-free its static fuel bound fits the caller's budget and fuel
//!   metering is elided entirely. Both paths stay panic-free — the fast
//!   path substitutes defaults (`unwrap_or`) on conditions the
//!   certificate rules out rather than trusting it with a panic.

use crate::isa::{Op, MAX_LOCALS};
use crate::program::Program;
use crate::verify::VerifiedProgram;

/// Default fuel budget (instructions) — generous for proxy-sized code.
pub const FUEL_DEFAULT: u64 = 100_000;

/// Hard operand-stack bound.
pub const STACK_MAX: usize = 256;

/// Execution failures. All are *results*, never panics: mobile code must
/// not be able to take the host down.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VmError {
    /// Instruction budget exhausted (runaway or hostile code).
    OutOfFuel,
    /// An op needed more stack entries than present.
    StackUnderflow {
        /// Program counter at the failure.
        at: usize,
    },
    /// The operand stack exceeded [`STACK_MAX`].
    StackOverflow {
        /// Program counter at the failure.
        at: usize,
    },
    /// Division or remainder by zero.
    DivByZero {
        /// Program counter at the failure.
        at: usize,
    },
    /// Execution ran off the end without `Halt`.
    NoHalt,
    /// `Halt` with an empty stack (no result value).
    NoResult,
    /// The host rejected a syscall.
    HostError {
        /// Syscall id.
        id: u8,
    },
}

/// Host interface: the device-side effects a proxy may invoke.
pub trait Host {
    /// Handle syscall `id` with `args`; `Err(())` aborts the program with
    /// [`VmError::HostError`].
    // Err carries nothing by design: the VM maps any host refusal to
    // `HostError { id }` and mobile code learns no more than "denied".
    #[allow(clippy::result_unit_err)]
    fn syscall(&mut self, id: u8, args: &[i64]) -> Result<i64, ()>;
}

/// A host offering no syscalls (pure computation only).
#[derive(Clone, Copy, Debug, Default)]
pub struct NullHost;

impl Host for NullHost {
    fn syscall(&mut self, _id: u8, _args: &[i64]) -> Result<i64, ()> {
        Err(())
    }
}

/// The virtual machine. Stateless between runs; create once, reuse freely.
#[derive(Clone, Copy, Debug, Default)]
pub struct Vm;

impl Vm {
    /// Execute `program` with `args` against `host` under a `fuel` budget.
    /// Returns the value on top of the stack at `Halt`.
    pub fn run(
        &self,
        program: &Program,
        args: &[i64],
        host: &mut dyn Host,
        fuel: u64,
    ) -> Result<i64, VmError> {
        let code = program.ops();
        let mut stack: Vec<i64> = Vec::with_capacity(16);
        let mut locals = [0i64; MAX_LOCALS as usize];
        let mut pc: usize = 0;
        let mut fuel = fuel;

        macro_rules! pop {
            () => {
                stack.pop().ok_or(VmError::StackUnderflow { at: pc })?
            };
        }
        macro_rules! push {
            ($v:expr) => {{
                if stack.len() >= STACK_MAX {
                    return Err(VmError::StackOverflow { at: pc });
                }
                stack.push($v);
            }};
        }
        macro_rules! binop {
            ($f:expr) => {{
                let b = pop!();
                let a = pop!();
                let f: fn(i64, i64) -> i64 = $f;
                push!(f(a, b));
            }};
        }

        while pc < code.len() {
            if fuel == 0 {
                return Err(VmError::OutOfFuel);
            }
            fuel -= 1;
            let op = code[pc];
            let mut next = pc + 1;
            match op {
                Op::PushI(v) => push!(v),
                Op::Dup => {
                    let v = *stack.last().ok_or(VmError::StackUnderflow { at: pc })?;
                    push!(v);
                }
                Op::Drop => {
                    pop!();
                }
                Op::Swap => {
                    let b = pop!();
                    let a = pop!();
                    push!(b);
                    push!(a);
                }
                Op::Over => {
                    if stack.len() < 2 {
                        return Err(VmError::StackUnderflow { at: pc });
                    }
                    let v = stack[stack.len() - 2];
                    push!(v);
                }
                Op::Add => binop!(|a: i64, b: i64| a.wrapping_add(b)),
                Op::Sub => binop!(|a: i64, b: i64| a.wrapping_sub(b)),
                Op::Mul => binop!(|a: i64, b: i64| a.wrapping_mul(b)),
                Op::Div => {
                    let b = pop!();
                    let a = pop!();
                    if b == 0 {
                        return Err(VmError::DivByZero { at: pc });
                    }
                    push!(a.wrapping_div(b));
                }
                Op::Rem => {
                    let b = pop!();
                    let a = pop!();
                    if b == 0 {
                        return Err(VmError::DivByZero { at: pc });
                    }
                    push!(a.wrapping_rem(b));
                }
                Op::Neg => {
                    let a = pop!();
                    push!(a.wrapping_neg());
                }
                Op::Min => binop!(|a: i64, b: i64| a.min(b)),
                Op::Max => binop!(|a: i64, b: i64| a.max(b)),
                Op::And => binop!(|a: i64, b: i64| a & b),
                Op::Or => binop!(|a: i64, b: i64| a | b),
                Op::Xor => binop!(|a: i64, b: i64| a ^ b),
                Op::Eq => binop!(|a: i64, b: i64| (a == b) as i64),
                Op::Lt => binop!(|a: i64, b: i64| (a < b) as i64),
                Op::Gt => binop!(|a: i64, b: i64| (a > b) as i64),
                Op::Jmp(t) => next = t as usize,
                Op::Jz(t) => {
                    if pop!() == 0 {
                        next = t as usize;
                    }
                }
                Op::Jnz(t) => {
                    if pop!() != 0 {
                        next = t as usize;
                    }
                }
                Op::Arg(n) => push!(args.get(n as usize).copied().unwrap_or(0)),
                Op::Store(n) => {
                    locals[n as usize] = pop!();
                }
                Op::Load(n) => push!(locals[n as usize]),
                Op::Syscall(id, argc) => {
                    let argc = argc as usize;
                    if stack.len() < argc {
                        return Err(VmError::StackUnderflow { at: pc });
                    }
                    let split = stack.len() - argc;
                    let call_args: Vec<i64> = stack.split_off(split);
                    let reply = host
                        .syscall(id, &call_args)
                        .map_err(|()| VmError::HostError { id })?;
                    push!(reply);
                }
                Op::Halt => return stack.last().copied().ok_or(VmError::NoResult),
            }
            pc = next;
        }
        Err(VmError::NoHalt)
    }

    /// Run with the default fuel budget.
    pub fn run_default(
        &self,
        program: &Program,
        args: &[i64],
        host: &mut dyn Host,
    ) -> Result<i64, VmError> {
        self.run(program, args, host, FUEL_DEFAULT)
    }

    /// Execute a statically verified program on the fast path.
    ///
    /// Skips per-op stack-underflow and stack-overflow checks (proved
    /// impossible by the verifier) and, when the program has a static
    /// fuel bound within `fuel` — loop-free code, or counted loops proved
    /// bounded by the range analysis — skips fuel metering too.
    /// Programs whose proven stack depth fits [`SMALL_STACK`] — every
    /// realistic proxy — additionally run on a fixed array stack with no
    /// heap allocation at all. Division by zero and host rejections
    /// remain dynamic errors; `OutOfFuel` is still possible for looping
    /// programs.
    pub fn run_verified(
        &self,
        program: &VerifiedProgram,
        args: &[i64],
        host: &mut dyn Host,
        fuel: u64,
    ) -> Result<i64, VmError> {
        let unmetered = matches!(program.fuel_bound(), Some(bound) if bound <= fuel);
        if program.max_stack_depth() <= SMALL_STACK {
            let stack = FixedStack::<SMALL_STACK>::new();
            if unmetered {
                self.run_verified_inner::<false, _>(program, args, host, fuel, stack)
            } else {
                self.run_verified_inner::<true, _>(program, args, host, fuel, stack)
            }
        } else {
            let stack = VecStack(Vec::with_capacity(program.max_stack_depth()));
            if unmetered {
                self.run_verified_inner::<false, _>(program, args, host, fuel, stack)
            } else {
                self.run_verified_inner::<true, _>(program, args, host, fuel, stack)
            }
        }
    }

    /// Fast path with the default fuel budget.
    pub fn run_verified_default(
        &self,
        program: &VerifiedProgram,
        args: &[i64],
        host: &mut dyn Host,
    ) -> Result<i64, VmError> {
        self.run_verified(program, args, host, FUEL_DEFAULT)
    }

    /// The verified interpreter loop. `METERED` selects fuel accounting
    /// at monomorphisation time so the loop-free fast path carries no
    /// fuel branch at all; `S` selects the operand-stack storage.
    ///
    /// Panic-freedom without dynamic checks: conditions the certificate
    /// rules out (underflow, overflow past the proven depth, `Halt` on
    /// an empty stack) degrade to zero defaults instead of `unwrap` —
    /// unreachable in practice, total in principle.
    fn run_verified_inner<const METERED: bool, S: VStack>(
        &self,
        program: &VerifiedProgram,
        args: &[i64],
        host: &mut dyn Host,
        mut fuel: u64,
        mut stack: S,
    ) -> Result<i64, VmError> {
        let code = program.program().ops();
        let mut locals = [0i64; MAX_LOCALS as usize];
        let mut pc: usize = 0;

        macro_rules! binop {
            ($f:expr) => {{
                let b = stack.pop();
                let a = stack.pop();
                let f: fn(i64, i64) -> i64 = $f;
                stack.push(f(a, b));
            }};
        }

        while pc < code.len() {
            if METERED {
                if fuel == 0 {
                    return Err(VmError::OutOfFuel);
                }
                fuel -= 1;
            }
            let op = code[pc];
            let mut next = pc + 1;
            match op {
                Op::PushI(v) => stack.push(v),
                Op::Dup => {
                    let v = stack.peek(0);
                    stack.push(v);
                }
                Op::Drop => {
                    stack.pop();
                }
                Op::Swap => {
                    let b = stack.pop();
                    let a = stack.pop();
                    stack.push(b);
                    stack.push(a);
                }
                Op::Over => {
                    let v = stack.peek(1);
                    stack.push(v);
                }
                Op::Add => binop!(|a: i64, b: i64| a.wrapping_add(b)),
                Op::Sub => binop!(|a: i64, b: i64| a.wrapping_sub(b)),
                Op::Mul => binop!(|a: i64, b: i64| a.wrapping_mul(b)),
                Op::Div => {
                    let b = stack.pop();
                    let a = stack.pop();
                    if b == 0 {
                        return Err(VmError::DivByZero { at: pc });
                    }
                    stack.push(a.wrapping_div(b));
                }
                Op::Rem => {
                    let b = stack.pop();
                    let a = stack.pop();
                    if b == 0 {
                        return Err(VmError::DivByZero { at: pc });
                    }
                    stack.push(a.wrapping_rem(b));
                }
                Op::Neg => {
                    let a = stack.pop();
                    stack.push(a.wrapping_neg());
                }
                Op::Min => binop!(|a: i64, b: i64| a.min(b)),
                Op::Max => binop!(|a: i64, b: i64| a.max(b)),
                Op::And => binop!(|a: i64, b: i64| a & b),
                Op::Or => binop!(|a: i64, b: i64| a | b),
                Op::Xor => binop!(|a: i64, b: i64| a ^ b),
                Op::Eq => binop!(|a: i64, b: i64| (a == b) as i64),
                Op::Lt => binop!(|a: i64, b: i64| (a < b) as i64),
                Op::Gt => binop!(|a: i64, b: i64| (a > b) as i64),
                Op::Jmp(t) => next = t as usize,
                Op::Jz(t) => {
                    if stack.pop() == 0 {
                        next = t as usize;
                    }
                }
                Op::Jnz(t) => {
                    if stack.pop() != 0 {
                        next = t as usize;
                    }
                }
                Op::Arg(n) => stack.push(args.get(n as usize).copied().unwrap_or(0)),
                Op::Store(n) => {
                    locals[n as usize] = stack.pop();
                }
                Op::Load(n) => stack.push(locals[n as usize]),
                Op::Syscall(id, argc) => {
                    let reply = stack
                        .syscall(argc as usize, |call_args| host.syscall(id, call_args))
                        .map_err(|()| VmError::HostError { id })?;
                    stack.push(reply);
                }
                Op::Halt => return Ok(stack.peek(0)),
            }
            pc = next;
        }
        // Statically unreachable: the verifier rejects programs whose
        // control flow can run off the end.
        Err(VmError::NoHalt)
    }
}

/// Proven stack depth up to which the verified fast path uses a fixed,
/// heap-free operand stack. Covers every realistic proxy; deeper verified
/// programs fall back to a pre-sized `Vec`.
pub const SMALL_STACK: usize = 32;

/// Operand-stack storage for the verified interpreter. All operations are
/// total: on states the verifier has ruled out (popping empty, pushing
/// past the proven depth) they yield zeros or drop writes rather than
/// panicking — the certificate makes those paths unreachable, totality
/// keeps hostile input harmless even if it weren't.
trait VStack {
    fn push(&mut self, v: i64);
    fn pop(&mut self) -> i64;
    /// Value `depth` entries below the top (0 = top), without popping.
    fn peek(&self, depth: usize) -> i64;
    /// Pop the top `argc` values and hand them to `f` (oldest first),
    /// returning its reply.
    fn syscall<F>(&mut self, argc: usize, f: F) -> Result<i64, ()>
    where
        F: FnOnce(&[i64]) -> Result<i64, ()>;
}

/// Fixed-capacity stack: a zeroed array and a cursor, all index arithmetic
/// masked by `N - 1` (`N` must be a power of two) so no bounds check and
/// no panic is ever emitted.
struct FixedStack<const N: usize> {
    buf: [i64; N],
    sp: usize,
}

impl<const N: usize> FixedStack<N> {
    const MASK: usize = {
        assert!(N.is_power_of_two());
        N - 1
    };

    fn new() -> FixedStack<N> {
        FixedStack { buf: [0; N], sp: 0 }
    }
}

impl<const N: usize> VStack for FixedStack<N> {
    #[inline(always)]
    fn push(&mut self, v: i64) {
        self.buf[self.sp & Self::MASK] = v;
        self.sp += 1;
    }

    #[inline(always)]
    fn pop(&mut self) -> i64 {
        self.sp = self.sp.saturating_sub(1);
        self.buf[self.sp & Self::MASK]
    }

    #[inline(always)]
    fn peek(&self, depth: usize) -> i64 {
        let i = self.sp.wrapping_sub(depth + 1);
        if i < self.sp {
            self.buf[i & Self::MASK]
        } else {
            0
        }
    }

    fn syscall<F>(&mut self, argc: usize, f: F) -> Result<i64, ()>
    where
        F: FnOnce(&[i64]) -> Result<i64, ()>,
    {
        let split = self.sp.saturating_sub(argc);
        let reply = f(self.buf.get(split..self.sp).unwrap_or(&[]))?;
        self.sp = split;
        Ok(reply)
    }
}

/// Growable stack for verified programs deeper than [`SMALL_STACK`];
/// pre-sized to the proven maximum depth, so pushes never reallocate.
struct VecStack(Vec<i64>);

impl VStack for VecStack {
    #[inline(always)]
    fn push(&mut self, v: i64) {
        self.0.push(v);
    }

    #[inline(always)]
    fn pop(&mut self) -> i64 {
        self.0.pop().unwrap_or(0)
    }

    #[inline(always)]
    fn peek(&self, depth: usize) -> i64 {
        self.0
            .len()
            .checked_sub(depth + 1)
            .and_then(|i| self.0.get(i).copied())
            .unwrap_or(0)
    }

    fn syscall<F>(&mut self, argc: usize, f: F) -> Result<i64, ()>
    where
        F: FnOnce(&[i64]) -> Result<i64, ()>,
    {
        let split = self.0.len().saturating_sub(argc);
        let reply = f(self.0.get(split..).unwrap_or(&[]))?;
        self.0.truncate(split);
        Ok(reply)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(ops: Vec<Op>, args: &[i64]) -> Result<i64, VmError> {
        let p = Program::new(ops).unwrap();
        Vm.run(&p, args, &mut NullHost, 10_000)
    }

    #[test]
    fn arithmetic_works() {
        assert_eq!(
            run(vec![Op::PushI(2), Op::PushI(3), Op::Add, Op::Halt], &[]),
            Ok(5)
        );
        assert_eq!(
            run(vec![Op::PushI(7), Op::PushI(3), Op::Sub, Op::Halt], &[]),
            Ok(4)
        );
        assert_eq!(
            run(vec![Op::PushI(6), Op::PushI(7), Op::Mul, Op::Halt], &[]),
            Ok(42)
        );
        assert_eq!(
            run(vec![Op::PushI(9), Op::PushI(2), Op::Div, Op::Halt], &[]),
            Ok(4)
        );
        assert_eq!(
            run(vec![Op::PushI(9), Op::PushI(2), Op::Rem, Op::Halt], &[]),
            Ok(1)
        );
        assert_eq!(run(vec![Op::PushI(5), Op::Neg, Op::Halt], &[]), Ok(-5));
        assert_eq!(
            run(vec![Op::PushI(3), Op::PushI(9), Op::Min, Op::Halt], &[]),
            Ok(3)
        );
        assert_eq!(
            run(vec![Op::PushI(3), Op::PushI(9), Op::Max, Op::Halt], &[]),
            Ok(9)
        );
    }

    #[test]
    fn comparisons_and_logic() {
        assert_eq!(
            run(vec![Op::PushI(3), Op::PushI(3), Op::Eq, Op::Halt], &[]),
            Ok(1)
        );
        assert_eq!(
            run(vec![Op::PushI(2), Op::PushI(3), Op::Lt, Op::Halt], &[]),
            Ok(1)
        );
        assert_eq!(
            run(vec![Op::PushI(2), Op::PushI(3), Op::Gt, Op::Halt], &[]),
            Ok(0)
        );
        assert_eq!(
            run(
                vec![Op::PushI(0b1100), Op::PushI(0b1010), Op::And, Op::Halt],
                &[]
            ),
            Ok(0b1000)
        );
        assert_eq!(
            run(
                vec![Op::PushI(0b1100), Op::PushI(0b1010), Op::Or, Op::Halt],
                &[]
            ),
            Ok(0b1110)
        );
        assert_eq!(
            run(
                vec![Op::PushI(0b1100), Op::PushI(0b1010), Op::Xor, Op::Halt],
                &[]
            ),
            Ok(0b0110)
        );
    }

    #[test]
    fn stack_shuffles() {
        assert_eq!(
            run(vec![Op::PushI(1), Op::Dup, Op::Add, Op::Halt], &[]),
            Ok(2)
        );
        assert_eq!(
            run(
                vec![Op::PushI(1), Op::PushI(2), Op::Swap, Op::Sub, Op::Halt],
                &[]
            ),
            Ok(1)
        );
        assert_eq!(
            run(
                vec![
                    Op::PushI(5),
                    Op::PushI(9),
                    Op::Over,
                    Op::Add,
                    Op::Add,
                    Op::Halt
                ],
                &[]
            ),
            Ok(19)
        );
        assert_eq!(
            run(vec![Op::PushI(1), Op::PushI(2), Op::Drop, Op::Halt], &[]),
            Ok(1)
        );
    }

    #[test]
    fn args_and_locals() {
        // f(a, b) = a * 10 + b
        let r = run(
            vec![
                Op::Arg(0),
                Op::PushI(10),
                Op::Mul,
                Op::Arg(1),
                Op::Add,
                Op::Halt,
            ],
            &[7, 3],
        );
        assert_eq!(r, Ok(73));
        // Missing args read as zero.
        assert_eq!(run(vec![Op::Arg(5), Op::Halt], &[1]), Ok(0));
        // Locals default to zero; store/load round-trips.
        assert_eq!(
            run(vec![Op::PushI(9), Op::Store(3), Op::Load(3), Op::Halt], &[]),
            Ok(9)
        );
        assert_eq!(run(vec![Op::Load(7), Op::Halt], &[]), Ok(0));
    }

    #[test]
    fn loop_with_jumps_computes_sum() {
        // sum 1..=n via a loop: locals[0]=acc, locals[1]=i
        let p = vec![
            Op::Arg(0),   // 0: n
            Op::Store(1), // 1: i = n
            Op::Load(1),  // 2: loop head
            Op::Jz(11),   // 3: while i != 0
            Op::Load(0),  // 4
            Op::Load(1),  // 5
            Op::Add,      // 6
            Op::Store(0), // 7: acc += i
            Op::Load(1),  // 8
            Op::PushI(1), // 9 ... i -= 1  (continued below)
            Op::Sub,      // 10
            // fallthrough fix below
            Op::Load(0), // 11: result
            Op::Halt,    // 12
        ];
        // Need to store back and jump — rebuild properly:
        let p = {
            let mut v = p;
            v.truncate(11);
            v.push(Op::Store(1)); // 11
            v.push(Op::Jmp(2)); // 12
            v.push(Op::Load(0)); // 13
            v.push(Op::Halt); // 14
                              // fix Jz target to 13
            v[3] = Op::Jz(13);
            v
        };
        assert_eq!(run(p, &[10]), Ok(55));
    }

    #[test]
    fn division_by_zero_is_an_error() {
        assert_eq!(
            run(vec![Op::PushI(1), Op::PushI(0), Op::Div, Op::Halt], &[]),
            Err(VmError::DivByZero { at: 2 })
        );
        assert_eq!(
            run(vec![Op::PushI(1), Op::PushI(0), Op::Rem, Op::Halt], &[]),
            Err(VmError::DivByZero { at: 2 })
        );
    }

    #[test]
    fn underflow_overflow_and_no_halt() {
        assert_eq!(
            run(vec![Op::Add, Op::Halt], &[]),
            Err(VmError::StackUnderflow { at: 0 })
        );
        assert_eq!(run(vec![Op::PushI(1)], &[]), Err(VmError::NoHalt));
        assert_eq!(run(vec![Op::Halt], &[]), Err(VmError::NoResult));
        // Overflow: a loop pushing forever trips the stack bound before fuel.
        let p = vec![Op::PushI(1), Op::Jmp(0)];
        let r = run(p, &[]);
        assert!(matches!(r, Err(VmError::StackOverflow { .. })), "{r:?}");
    }

    #[test]
    fn infinite_loop_runs_out_of_fuel() {
        let p = Program::new(vec![Op::Jmp(0)]).unwrap();
        assert_eq!(
            Vm.run(&p, &[], &mut NullHost, 1000),
            Err(VmError::OutOfFuel)
        );
    }

    #[test]
    fn syscalls_reach_the_host() {
        struct Recorder {
            calls: Vec<(u8, Vec<i64>)>,
        }
        impl Host for Recorder {
            fn syscall(&mut self, id: u8, args: &[i64]) -> Result<i64, ()> {
                self.calls.push((id, args.to_vec()));
                Ok(args.iter().sum::<i64>() * 2)
            }
        }
        let p = Program::new(vec![
            Op::PushI(3),
            Op::PushI(4),
            Op::Syscall(9, 2),
            Op::Halt,
        ])
        .unwrap();
        let mut host = Recorder { calls: vec![] };
        assert_eq!(Vm.run(&p, &[], &mut host, 100), Ok(14));
        assert_eq!(host.calls, vec![(9, vec![3, 4])]);
    }

    #[test]
    fn host_rejection_aborts() {
        let p = Program::new(vec![Op::Syscall(1, 0), Op::Halt]).unwrap();
        assert_eq!(
            Vm.run(&p, &[], &mut NullHost, 100),
            Err(VmError::HostError { id: 1 })
        );
    }

    #[test]
    fn verified_fast_path_matches_checked_path() {
        use crate::asm::assemble;
        // Loop-free: clamp(arg0 * 3 - 4, 0, 255); exercises both branches.
        let p = assemble(
            "arg 0
             push 3
             mul
             push 4
             sub
             push 0
             max
             push 255
             min
             halt",
        )
        .unwrap();
        let vp = p.verify_default().unwrap();
        assert!(vp.fuel_bound().is_some());
        for a in [-5i64, 0, 1, 40, 1000] {
            assert_eq!(
                Vm.run(&p, &[a], &mut NullHost, FUEL_DEFAULT),
                Vm.run_verified(&vp, &[a], &mut NullHost, FUEL_DEFAULT),
            );
        }
        // Looping program (metered fast path): sum 1..=n with explicit
        // local initialisation so the verifier's definite-init holds.
        let p = assemble(
            "push 0
             store 0
             arg 0
             store 1
             loop:
             load 1
             jz out
             load 0
             load 1
             add
             store 0
             load 1
             push 1
             sub
             store 1
             jmp loop
             out:
             load 0
             halt",
        )
        .unwrap();
        let vp = p.verify_default().unwrap();
        assert_eq!(vp.fuel_bound(), None);
        for n in [0i64, 1, 10, 100] {
            assert_eq!(
                Vm.run(&p, &[n], &mut NullHost, FUEL_DEFAULT),
                Vm.run_verified(&vp, &[n], &mut NullHost, FUEL_DEFAULT),
            );
        }
        assert_eq!(Vm.run_verified_default(&vp, &[10], &mut NullHost), Ok(55));
        // Looping programs still meter fuel on the fast path.
        assert_eq!(
            Vm.run_verified(&vp, &[1000], &mut NullHost, 10),
            Err(VmError::OutOfFuel)
        );
        // Bounded counted loop: cyclic, but the range analysis proves a
        // static bound, so the fast path elides fuel metering entirely
        // while still matching the checked interpreter.
        let p = assemble(
            "push 0
             store 0
             arg 0
             push 0
             max
             push 200
             min
             store 1
             loop:
             load 1
             jz out
             load 0
             load 1
             add
             store 0
             load 1
             push 1
             sub
             store 1
             jmp loop
             out:
             load 0
             halt",
        )
        .unwrap();
        let vp = p.verify_default().unwrap();
        let bound = vp.fuel_bound().expect("counted loop bounded");
        for n in [0i64, 1, 37, 200, 100_000, -9] {
            assert_eq!(
                Vm.run(&p, &[n], &mut NullHost, FUEL_DEFAULT),
                Vm.run_verified(&vp, &[n], &mut NullHost, FUEL_DEFAULT),
            );
        }
        assert_eq!(Vm.run_verified(&vp, &[200], &mut NullHost, bound), Ok(20_100));
        // A budget below the proven bound falls back to metering.
        assert_eq!(
            Vm.run_verified(&vp, &[200], &mut NullHost, 10),
            Err(VmError::OutOfFuel)
        );
        // Dynamic errors stay dynamic.
        let p = Program::new(vec![Op::Arg(0), Op::PushI(1), Op::Swap, Op::Div, Op::Halt]).unwrap();
        let vp = p.verify_default().unwrap();
        assert_eq!(
            Vm.run_verified_default(&vp, &[0], &mut NullHost),
            Err(VmError::DivByZero { at: 3 })
        );
        assert_eq!(Vm.run_verified_default(&vp, &[2], &mut NullHost), Ok(0));
    }
}
