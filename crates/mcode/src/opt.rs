//! A proxy optimizer gated by translation validation.
//!
//! Downloaded proxies run hot (every brightness update, every sensor
//! poll), so shaving interpreted instructions pays directly. This module
//! rewrites verified programs with the classic menu — constant folding,
//! branch pruning from value ranges ([`crate::range`]), dead-store and
//! unreachable-code elimination, jump threading — but **trusts none of
//! it**: an optimized program is only ever installed after
//!
//! 1. it *re-verifies* under the same [`VerifyConfig`] as the original
//!    (the optimizer cannot launder a proxy past the verifier), and
//! 2. it is *differentially executed* against the original over boundary
//!    and pseudo-random inputs with a trace-recording host, and both the
//!    result and the full syscall trace match on every case.
//!
//! That is translation validation in the verified-compiler tradition:
//! instead of proving the optimizer correct once, check each output. Any
//! failure — an analysis budget, an invalid rewrite, a mismatch — falls
//! back to the original program, so [`optimize_verified`] cannot make a
//! proxy *wrong*, only faster. The property suite goes further and runs
//! the differential check over arbitrary generated programs.

use crate::cfg::Cfg;
use crate::dataflow::{self, LiveLocals};
use crate::isa::Op;
use crate::program::Program;
use crate::range::{Ranges, RANGE_VISIT_BUDGET};
use crate::verify::{VerifiedProgram, VerifyConfig};
use crate::vm::{Host, Vm, VmError, FUEL_DEFAULT};

/// Cap on fold/prune/eliminate rounds per [`optimize`] call; each round
/// rebuilds the CFG, so later rounds clean up what earlier ones exposed.
const MAX_ROUNDS: usize = 4;

/// What the optimizer did — observability for hosts and benches.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OptStats {
    /// Rewrite rounds that ran (including the final no-change round).
    pub rounds: usize,
    /// Constant-folding events (each removes or simplifies instructions).
    pub folded: usize,
    /// Conditional branches decided statically.
    pub branches_pruned: usize,
    /// `Store`s to provably dead locals rewritten to `Drop`.
    pub dead_stores: usize,
    /// Unreachable instructions removed.
    pub unreachable_removed: usize,
    /// Jumps retargeted through `Jmp` chains or dropped as fall-throughs.
    pub jumps_threaded: usize,
}

/// An optimization accepted by translation validation.
#[derive(Clone, Debug)]
pub struct Validated {
    /// The program to run: the re-verified optimized program, or the
    /// original certificate when optimization found nothing (or failed
    /// validation).
    pub program: VerifiedProgram,
    /// What the optimizer did.
    pub stats: OptStats,
    /// Whether `program` differs from the input.
    pub improved: bool,
}

/// One virtual-stack entry during a rebuild: the value if statically
/// known, and the position in the emitted stream of the `PushI` that
/// produced it — `Some` only while that push is part of the contiguous
/// emitted tail, which is what makes truncation-based folding sound.
#[derive(Clone, Copy, Debug)]
struct VEntry {
    val: Option<i64>,
    pos: Option<usize>,
}

impl VEntry {
    fn unknown() -> VEntry {
        VEntry {
            val: None,
            pos: None,
        }
    }
}

/// Optimize `program` (best effort, always sound to *attempt*: on any
/// internal failure the input is returned unchanged). Callers that intend
/// to run the result must still translation-validate — use
/// [`optimize_verified`].
pub fn optimize(program: &Program) -> (Program, OptStats) {
    let mut stats = OptStats::default();
    let mut current = program.clone();
    for _ in 0..MAX_ROUNDS {
        stats.rounds += 1;
        let Some(next) = round(&current, &mut stats) else {
            break;
        };
        if next == current {
            break;
        }
        current = next;
    }
    (current, stats)
}

/// One rewrite round; `None` means "keep the input" (analysis refused or
/// the rebuild produced something invalid).
fn round(program: &Program, stats: &mut OptStats) -> Option<Program> {
    let cfg = Cfg::build(program);
    let ranges = Ranges::analyze(program, &cfg, RANGE_VISIT_BUDGET);
    let rebuilt = rebuild(program, &cfg, ranges.as_ref(), stats)?;
    Some(eliminate_dead_stores(rebuilt, stats))
}

/// Follow `Jmp` chains from target `t` in the original code (bounded, so
/// a `Jmp` cycle cannot hang the optimizer).
fn resolve_target(code: &[Op], mut t: u16) -> u16 {
    for _ in 0..64 {
        match code[t as usize] {
            Op::Jmp(u) if u != t => t = u,
            _ => break,
        }
    }
    t
}

/// The fold/prune/thread rebuild: emit reachable blocks in order, folding
/// within each block over a virtual stack, deciding branches from known
/// values or intervals, and remapping jump targets block-to-block.
fn rebuild(
    program: &Program,
    cfg: &Cfg,
    ranges: Option<&Ranges>,
    stats: &mut OptStats,
) -> Option<Program> {
    let code = program.ops();
    let blocks = cfg.blocks();
    let emitted: Vec<usize> = (0..blocks.len()).filter(|&b| cfg.is_reachable(b)).collect();
    stats.unreachable_removed += code.len()
        - emitted
            .iter()
            .map(|&b| blocks[b].len())
            .sum::<usize>();

    let mut out: Vec<Op> = Vec::with_capacity(code.len());
    let mut new_start = vec![usize::MAX; blocks.len()];
    // (position in `out`, target in *old* instruction space) to patch.
    let mut fixups: Vec<(usize, u16)> = Vec::new();

    for (order, &b) in emitted.iter().enumerate() {
        new_start[b] = out.len();
        let next_emitted = emitted.get(order + 1).copied();
        let block = &blocks[b];
        let mut vstack: Vec<VEntry> = Vec::new();

        let pop = |v: &mut Vec<VEntry>| v.pop().unwrap_or_else(VEntry::unknown);

        for pc in block.start..block.end {
            let op = code[pc];
            match op {
                Op::PushI(v) => {
                    out.push(op);
                    vstack.push(VEntry {
                        val: Some(v),
                        pos: Some(out.len() - 1),
                    });
                }
                Op::Load(n) => {
                    // A local proven constant here becomes a literal push,
                    // seeding downstream folds.
                    let known = ranges.and_then(|r| {
                        let f = r.before(cfg, pc);
                        (f.reachable).then(|| f.locals[n as usize].as_const()).flatten()
                    });
                    match known {
                        Some(c) => {
                            stats.folded += 1;
                            out.push(Op::PushI(c));
                            vstack.push(VEntry {
                                val: Some(c),
                                pos: Some(out.len() - 1),
                            });
                        }
                        None => {
                            out.push(op);
                            invalidate(&mut vstack);
                            vstack.push(VEntry::unknown());
                        }
                    }
                }
                Op::Dup | Op::Over => {
                    let depth = if op == Op::Dup { 1 } else { 2 };
                    let copied = vstack
                        .len()
                        .checked_sub(depth)
                        .and_then(|i| vstack.get(i))
                        .copied()
                        .unwrap_or_else(VEntry::unknown);
                    match copied.val {
                        Some(v) => {
                            stats.folded += 1;
                            out.push(Op::PushI(v));
                            vstack.push(VEntry {
                                val: Some(v),
                                pos: Some(out.len() - 1),
                            });
                        }
                        None => {
                            out.push(op);
                            invalidate(&mut vstack);
                            vstack.push(VEntry::unknown());
                        }
                    }
                }
                Op::Drop => {
                    let e = pop(&mut vstack);
                    if e.pos == Some(out.len().wrapping_sub(1)) {
                        out.pop(); // the push and the drop annihilate
                        stats.folded += 1;
                    } else {
                        out.push(op);
                        invalidate(&mut vstack);
                    }
                }
                Op::Swap => {
                    let b2 = pop(&mut vstack);
                    let a2 = pop(&mut vstack);
                    let n = out.len();
                    if a2.pos == Some(n.wrapping_sub(2)) && b2.pos == Some(n.wrapping_sub(1)) {
                        out.swap(n - 2, n - 1);
                        stats.folded += 1;
                        vstack.push(VEntry {
                            val: b2.val,
                            pos: Some(n - 2),
                        });
                        vstack.push(VEntry {
                            val: a2.val,
                            pos: Some(n - 1),
                        });
                    } else {
                        out.push(op);
                        invalidate(&mut vstack);
                        vstack.push(VEntry {
                            val: b2.val,
                            pos: None,
                        });
                        vstack.push(VEntry {
                            val: a2.val,
                            pos: None,
                        });
                    }
                }
                Op::Neg => {
                    let a = pop(&mut vstack);
                    match a.val {
                        Some(v) if a.pos == Some(out.len().wrapping_sub(1)) => {
                            out.pop();
                            stats.folded += 1;
                            let r = v.wrapping_neg();
                            out.push(Op::PushI(r));
                            vstack.push(VEntry {
                                val: Some(r),
                                pos: Some(out.len() - 1),
                            });
                        }
                        known => {
                            out.push(op);
                            invalidate(&mut vstack);
                            vstack.push(VEntry {
                                val: known.map(i64::wrapping_neg),
                                pos: None,
                            });
                        }
                    }
                }
                Op::Add
                | Op::Sub
                | Op::Mul
                | Op::Div
                | Op::Rem
                | Op::Min
                | Op::Max
                | Op::And
                | Op::Or
                | Op::Xor
                | Op::Eq
                | Op::Lt
                | Op::Gt => {
                    let b2 = pop(&mut vstack);
                    let a2 = pop(&mut vstack);
                    let folded = match (a2.val, b2.val) {
                        (Some(x), Some(y)) => fold_binop(op, x, y),
                        _ => None,
                    };
                    match folded {
                        Some(r)
                            if a2.pos == Some(out.len().wrapping_sub(2))
                                && b2.pos == Some(out.len().wrapping_sub(1)) =>
                        {
                            out.truncate(out.len() - 2);
                            stats.folded += 2;
                            out.push(Op::PushI(r));
                            vstack.push(VEntry {
                                val: Some(r),
                                pos: Some(out.len() - 1),
                            });
                        }
                        known => {
                            out.push(op);
                            invalidate(&mut vstack);
                            vstack.push(VEntry {
                                val: known,
                                pos: None,
                            });
                        }
                    }
                }
                Op::Arg(_) | Op::Syscall(..) => {
                    if let Op::Syscall(_, argc) = op {
                        for _ in 0..argc {
                            pop(&mut vstack);
                        }
                    }
                    out.push(op);
                    invalidate(&mut vstack);
                    vstack.push(VEntry::unknown());
                }
                Op::Store(n) => {
                    let _ = n;
                    pop(&mut vstack);
                    out.push(op);
                    invalidate(&mut vstack);
                }
                Op::Halt => out.push(op),
                Op::Jmp(t) => {
                    let rt = resolve_target(code, t);
                    if rt != t {
                        stats.jumps_threaded += 1;
                    }
                    if Some(cfg.block_of(rt as usize)) == next_emitted {
                        stats.jumps_threaded += 1; // becomes a fall-through
                    } else {
                        fixups.push((out.len(), rt));
                        out.push(Op::Jmp(rt));
                    }
                }
                Op::Jz(t) | Op::Jnz(t) => {
                    let cond = pop(&mut vstack);
                    let known = cond.val.or_else(|| {
                        ranges.and_then(|r| {
                            let iv = r.stack_top_before(cfg, pc)?;
                            iv.as_const()
                                .or_else(|| (!iv.contains_zero()).then_some(1))
                        })
                    });
                    let taken = known.map(|v| match op {
                        Op::Jz(_) => v == 0,
                        _ => v != 0,
                    });
                    match taken {
                        Some(decision) => {
                            stats.branches_pruned += 1;
                            if cond.pos == Some(out.len().wrapping_sub(1)) {
                                out.pop(); // the condition push vanishes too
                                stats.folded += 1;
                            } else {
                                out.push(Op::Drop);
                                invalidate(&mut vstack);
                            }
                            if decision {
                                let rt = resolve_target(code, t);
                                if Some(cfg.block_of(rt as usize)) == next_emitted {
                                    stats.jumps_threaded += 1;
                                } else {
                                    fixups.push((out.len(), rt));
                                    out.push(Op::Jmp(rt));
                                }
                            }
                            // Not taken: plain fall-through, emit nothing.
                        }
                        None => {
                            let rt = resolve_target(code, t);
                            if rt != t {
                                stats.jumps_threaded += 1;
                            }
                            fixups.push((out.len(), rt));
                            out.push(match op {
                                Op::Jz(_) => Op::Jz(rt),
                                _ => Op::Jnz(rt),
                            });
                            invalidate(&mut vstack);
                        }
                    }
                }
            }
        }
    }

    // Patch jump targets into the new instruction space. Every referenced
    // target is a leader of a reachable block, so `new_start` is set; a
    // target past the end (a trailing block folded to nothing) makes the
    // program invalid and we bail to the original.
    for (at, old_t) in fixups {
        let nb = cfg.block_of(old_t as usize);
        let nt = new_start[nb];
        if nt >= out.len() || nt > u16::MAX as usize {
            return None;
        }
        out[at] = match out[at] {
            Op::Jmp(_) => Op::Jmp(nt as u16),
            Op::Jz(_) => Op::Jz(nt as u16),
            Op::Jnz(_) => Op::Jnz(nt as u16),
            other => other,
        };
    }

    Program::new(out).ok()
}

/// Clear every tracked emission position: the emitted tail is no longer a
/// contiguous run of pushes, so truncation-based folding must stop
/// reaching past this point.
fn invalidate(vstack: &mut [VEntry]) {
    for e in vstack {
        e.pos = None;
    }
}

/// Fold one binary op over constants, with exactly the VM's semantics.
/// Division and remainder refuse a zero divisor — the runtime error must
/// be preserved, not folded away.
fn fold_binop(op: Op, a: i64, b: i64) -> Option<i64> {
    Some(match op {
        Op::Add => a.wrapping_add(b),
        Op::Sub => a.wrapping_sub(b),
        Op::Mul => a.wrapping_mul(b),
        Op::Div if b != 0 => a.wrapping_div(b),
        Op::Rem if b != 0 => a.wrapping_rem(b),
        Op::Min => a.min(b),
        Op::Max => a.max(b),
        Op::And => a & b,
        Op::Or => a | b,
        Op::Xor => a ^ b,
        Op::Eq => (a == b) as i64,
        Op::Lt => (a < b) as i64,
        Op::Gt => (a > b) as i64,
        _ => return None,
    })
}

/// Rewrite `Store` to a provably dead local as `Drop` (same stack effect,
/// no memory traffic, and the push feeding it can fold away next round).
fn eliminate_dead_stores(program: Program, stats: &mut OptStats) -> Program {
    let cfg = Cfg::build(&program);
    let Some(sol) = dataflow::solve(&LiveLocals, &program, &cfg, RANGE_VISIT_BUDGET) else {
        return program;
    };
    let mut ops = program.ops().to_vec();
    let mut changed = false;
    for block in cfg.blocks() {
        for (pc, op) in ops
            .iter_mut()
            .enumerate()
            .take(block.end)
            .skip(block.start)
        {
            if let Op::Store(n) = *op {
                let live_after = sol.at_instruction(&LiveLocals, &program, &cfg, pc);
                if live_after & (1 << n) == 0 {
                    *op = Op::Drop;
                    stats.dead_stores += 1;
                    changed = true;
                }
            }
        }
    }
    if !changed {
        return program;
    }
    Program::new(ops).unwrap_or(program)
}

// ---------------------------------------------------------------------------
// Translation validation
// ---------------------------------------------------------------------------

/// A deterministic recording host for differential execution: replies are
/// a pure function of the call history, so two programs making identical
/// syscall sequences observe identical replies — and any divergence in
/// effects shows up as a trace mismatch.
struct DiffHost {
    calls: Vec<(u8, Vec<i64>)>,
    state: u64,
}

impl DiffHost {
    fn new(seed: u64) -> DiffHost {
        DiffHost {
            calls: Vec::new(),
            state: splitmix(seed),
        }
    }
}

impl Host for DiffHost {
    fn syscall(&mut self, id: u8, args: &[i64]) -> Result<i64, ()> {
        self.calls.push((id, args.to_vec()));
        let mut h = self.state ^ splitmix(id as u64);
        for &a in args {
            h = splitmix(h ^ a as u64);
        }
        self.state = h;
        Ok((h >> 1) as i64)
    }
}

/// SplitMix64 step — deterministic pseudo-randomness with no dependency.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Execution outcome with error *kinds* only: instruction addresses in
/// errors legitimately differ between a program and its optimization.
fn outcome(r: Result<i64, VmError>) -> Result<i64, u8> {
    r.map_err(|e| match e {
        VmError::OutOfFuel => 0,
        VmError::StackUnderflow { .. } => 1,
        VmError::StackOverflow { .. } => 2,
        VmError::DivByZero { .. } => 3,
        VmError::NoHalt => 4,
        VmError::NoResult => 5,
        VmError::HostError { .. } => 6,
    })
}

/// Differentially execute `a` and `b` over boundary and pseudo-random
/// argument vectors; `true` iff the observable outcome (result or error
/// kind, plus the complete syscall trace) matches on every case.
pub fn differentially_equal(a: &Program, b: &Program, max_arg: Option<u8>, seed: u64) -> bool {
    let nargs = max_arg.map_or(0, |m| (m as usize + 1).min(8));
    let boundary: [i64; 7] = [0, 1, -1, 7, 255, i64::MAX, i64::MIN];
    let mut cases: Vec<Vec<i64>> = boundary.iter().map(|&v| vec![v; nargs]).collect();
    let mut z = seed;
    for _ in 0..12 {
        let mut args = Vec::with_capacity(nargs);
        for _ in 0..nargs {
            z = splitmix(z);
            args.push(z as i64);
        }
        cases.push(args);
    }
    cases.iter().enumerate().all(|(i, args)| {
        let mut ha = DiffHost::new(seed ^ i as u64);
        let mut hb = DiffHost::new(seed ^ i as u64);
        let ra = outcome(Vm.run(a, args, &mut ha, FUEL_DEFAULT));
        let rb = outcome(Vm.run(b, args, &mut hb, FUEL_DEFAULT));
        ra == rb && ha.calls == hb.calls
    })
}

/// Optimize a verified program under translation validation.
///
/// The returned [`Validated::program`] is the optimized program **only
/// if** it re-verified under `config` and differentially matched the
/// original; otherwise it is the input certificate unchanged. This is the
/// only optimizer entry point hosts should call for untrusted proxies.
pub fn optimize_verified(vp: &VerifiedProgram, config: &VerifyConfig) -> Validated {
    let (optimized, stats) = optimize(vp.program());
    if optimized == *vp.program() {
        return Validated {
            program: vp.clone(),
            stats,
            improved: false,
        };
    }
    let Ok(ovp) = optimized.verify(config) else {
        return Validated {
            program: vp.clone(),
            stats,
            improved: false,
        };
    };
    if !differentially_equal(vp.program(), &optimized, vp.max_arg(), 0xA50A_F10A) {
        return Validated {
            program: vp.clone(),
            stats,
            improved: false,
        };
    }
    Validated {
        program: ovp,
        stats,
        improved: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::verify::{SyscallPolicy, VerifyConfig};
    use crate::vm::NullHost;

    fn opt(src: &str) -> (Program, Program, OptStats) {
        let p = assemble(src).unwrap();
        let (o, stats) = optimize(&p);
        (p, o, stats)
    }

    #[test]
    fn constant_expressions_fold_to_a_push() {
        let (p, o, stats) = opt(
            "push 2
             push 3
             add
             push 4
             mul
             neg
             halt",
        );
        assert_eq!(o.ops(), &[Op::PushI(-20), Op::Halt]);
        assert!(stats.folded > 0);
        assert!(differentially_equal(&p, &o, None, 1));
    }

    #[test]
    fn division_by_zero_is_never_folded_away() {
        let (p, o, _) = opt(
            "push 1
             push 0
             div
             halt",
        );
        assert!(o.ops().contains(&Op::Div), "runtime error preserved");
        assert!(differentially_equal(&p, &o, None, 2));
        assert_eq!(
            Vm.run(&o, &[], &mut NullHost, 100),
            Err(VmError::DivByZero { at: 2 })
        );
    }

    #[test]
    fn constant_branches_prune_and_dead_code_disappears() {
        // `push 1; jz dead` never jumps: both the condition and the dead
        // arm vanish.
        let (p, o, stats) = opt(
            "push 1
             jz dead
             push 42
             halt
             dead:
             push 7
             halt",
        );
        assert_eq!(o.ops(), &[Op::PushI(42), Op::Halt]);
        assert!(stats.branches_pruned >= 1);
        assert!(differentially_equal(&p, &o, None, 3));
    }

    #[test]
    fn range_information_prunes_impossible_branches() {
        // arg clamped to ≥ 0 can never equal -1: the comparison is the
        // constant 0 and the branch falls through.
        let (p, o, stats) = opt(
            "arg 0
             push 0
             max
             push -1
             eq
             jnz impossible
             push 1
             halt
             impossible:
             push 2
             halt",
        );
        assert!(stats.branches_pruned >= 1, "{stats:?}");
        assert!(!o.ops().contains(&Op::Jnz(8)));
        assert!(differentially_equal(&p, &o, Some(0), 4));
    }

    #[test]
    fn dead_stores_become_drops_and_then_fold() {
        let (p, o, stats) = opt(
            "push 1
             store 0
             push 2
             halt",
        );
        assert_eq!(o.ops(), &[Op::PushI(2), Op::Halt]);
        assert!(stats.dead_stores >= 1);
        assert!(differentially_equal(&p, &o, None, 5));
    }

    #[test]
    fn jumps_thread_through_chains() {
        let (p, o, stats) = opt(
            "arg 0
             jz a
             push 1
             halt
             a:
             jmp b
             b:
             push 2
             halt",
        );
        assert!(stats.jumps_threaded >= 1, "{stats:?}");
        assert!(differentially_equal(&p, &o, Some(0), 6));
        // The chain block is gone or bypassed: jz lands on the final arm.
        assert_eq!(Vm.run(&o, &[0], &mut NullHost, 100), Ok(2));
        assert_eq!(Vm.run(&o, &[5], &mut NullHost, 100), Ok(1));
    }

    #[test]
    fn loops_survive_optimization_untouched_semantically() {
        let (p, o, _) = opt(
            "push 0
             store 0
             arg 0
             push 0
             max
             push 50
             min
             store 1
             loop:
             load 1
             jz out
             load 0
             load 1
             add
             store 0
             load 1
             push 1
             sub
             store 1
             jmp loop
             out:
             load 0
             halt",
        );
        for n in [0i64, 1, 10, 50, 100, -3] {
            assert_eq!(
                Vm.run(&p, &[n], &mut NullHost, FUEL_DEFAULT),
                Vm.run(&o, &[n], &mut NullHost, FUEL_DEFAULT),
            );
        }
    }

    #[test]
    fn syscall_traces_are_preserved() {
        let src = "arg 0
             syscall 9 1
             push 3
             push 4
             add
             syscall 9 1
             add
             halt";
        let p = assemble(src).unwrap();
        let (o, _) = optimize(&p);
        assert!(differentially_equal(&p, &o, Some(0), 7));
        // The fold must not have removed or reordered the syscalls.
        let count = |p: &Program| {
            p.ops()
                .iter()
                .filter(|o| matches!(o, Op::Syscall(..)))
                .count()
        };
        assert_eq!(count(&p), count(&o));
    }

    #[test]
    fn optimize_verified_installs_only_validated_improvements() {
        let p = assemble(
            "arg 0
             push 10
             mul
             push 2
             push 3
             add
             add
             push 0
             max
             push 255
             min
             halt",
        )
        .unwrap();
        let config = VerifyConfig::default();
        let vp = p.verify(&config).unwrap();
        let v = optimize_verified(&vp, &config);
        assert!(v.improved);
        assert!(v.program.program().len() < p.len());
        for a in [-10i64, 0, 3, 26, 9999] {
            assert_eq!(
                Vm.run_verified_default(&vp, &[a], &mut NullHost),
                Vm.run_verified_default(&v.program, &[a], &mut NullHost),
            );
        }
    }

    #[test]
    fn optimize_verified_keeps_syscall_policy() {
        // The optimized program re-verifies under the *same* policy; a
        // policy that forbids its syscalls still fails afterwards.
        let p = assemble("push 1\nsyscall 9 1\nhalt").unwrap();
        let allow = VerifyConfig::with_syscalls(SyscallPolicy::Allow(
            crate::verify::SyscallSet::of(&[9]),
        ));
        let vp = p.verify(&allow).unwrap();
        let v = optimize_verified(&vp, &allow);
        assert!(v.program.syscalls().contains(9));
    }

    #[test]
    fn already_minimal_programs_are_left_alone() {
        let p = assemble("arg 0\nhalt").unwrap();
        let vp = p.verify_default().unwrap();
        let v = optimize_verified(&vp, &VerifyConfig::default());
        assert!(!v.improved);
        assert_eq!(v.program.program(), &p);
    }
}
