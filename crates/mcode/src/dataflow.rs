//! A generic worklist dataflow framework over the basic-block CFG.
//!
//! Every static analysis in this crate — value ranges ([`crate::range`]),
//! taint ([`crate::flow`]), liveness for the optimizer ([`crate::opt`]) —
//! is an instance of the same fixpoint computation: facts drawn from a
//! join-semilattice, transferred across instructions, merged at
//! control-flow joins, iterated to a fixpoint with a worklist. This module
//! factors that shape out once, in the Java-bytecode-verification lineage
//! where verification *is* dataflow analysis.
//!
//! An [`Analysis`] supplies the lattice (bottom element, [`Analysis::join`])
//! and the per-instruction transfer function; [`solve`] runs the block-level
//! worklist to the least fixpoint and returns per-block entry/exit facts in
//! a [`Solution`], which can replay a block prefix to recover the fact at
//! any instruction. Both [`Direction::Forward`] and [`Direction::Backward`]
//! problems are supported — backward analyses see each block's instructions
//! in reverse and flow facts from successors.
//!
//! The fixpoint is **iteration-order independent** for any monotone
//! transfer over a finite-height lattice (the classic Kildall result); the
//! [`solve_with_order`] entry point exists so tests can *demonstrate* that:
//! it permutes worklist extraction with a seeded shuffle and must reach the
//! identical solution.
//!
//! Analyses over hostile input take a visit budget: the solver counts
//! instruction transfers and gives up (returns `None`) past the budget, so
//! adversarial mobile code cannot turn *analysis* into a denial of service.

use crate::cfg::Cfg;
use crate::isa::Op;
use crate::program::Program;

/// Which way facts propagate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow from a block's predecessors to its successors.
    Forward,
    /// Facts flow from a block's successors to its predecessors; each
    /// block's instructions are transferred in reverse order.
    Backward,
}

/// Which out-edge of a conditional branch a fact is flowing along — the
/// hook that lets path-sensitive analyses (value ranges) learn from the
/// branch outcome ("the taken edge of `Jz` means the tested value was 0").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Edge {
    /// The branch's jump target.
    Taken,
    /// The fall-through to the next instruction.
    Fallthrough,
    /// No branch information (unconditional edges, or a conditional whose
    /// target coincides with its fall-through).
    Other,
}

/// One dataflow problem: a join-semilattice of facts plus a transfer
/// function. Implementations must be monotone in the lattice order implied
/// by `join` for the worklist fixpoint to be the (order-independent) least
/// solution.
pub trait Analysis {
    /// The lattice element attached to every program point.
    type Fact: Clone + PartialEq;

    /// Propagation direction.
    fn direction(&self) -> Direction;

    /// The fact holding at the boundary: program entry for forward
    /// problems, every exit block for backward ones.
    fn boundary(&self) -> Self::Fact;

    /// ⊥ — the neutral element of [`Analysis::join`], the initial value of
    /// every interior point.
    fn bottom(&self) -> Self::Fact;

    /// Least upper bound: merge `other` into `fact`, returning `true` when
    /// `fact` changed (i.e. `other` was not already subsumed).
    fn join(&self, fact: &mut Self::Fact, other: &Self::Fact) -> bool;

    /// Apply instruction `op` at `pc` to `fact` (in place). For backward
    /// problems the fact is the one holding *after* the instruction and is
    /// transformed into the one holding before it.
    fn transfer(&self, pc: usize, op: Op, fact: &mut Self::Fact);

    /// Refine the fact flowing along one out-edge of block terminator `op`
    /// at `pc` (forward problems only; called on a clone of the block-exit
    /// fact before it is joined into the successor). The default keeps the
    /// fact unchanged. Refinements must still over-approximate the
    /// concrete states reaching that edge.
    fn refine_edge(&self, _pc: usize, _op: Op, _edge: Edge, _fact: &mut Self::Fact) {}
}

/// The fixpoint of an [`Analysis`] over one program.
#[derive(Clone, Debug)]
pub struct Solution<F> {
    direction: Direction,
    /// Fact at block entry (forward: before the first instruction;
    /// backward: after it — entry in *iteration* order).
    entry: Vec<F>,
    /// Fact at block exit, after transferring the whole block.
    exit: Vec<F>,
    /// Instruction transfers performed to reach the fixpoint.
    visits: u64,
}

impl<F: Clone> Solution<F> {
    /// Fact at the start of block `b` in iteration order: before its first
    /// instruction (forward) or after its last (backward).
    pub fn block_entry(&self, b: usize) -> &F {
        &self.entry[b]
    }

    /// Fact after the whole block has been transferred.
    pub fn block_exit(&self, b: usize) -> &F {
        &self.exit[b]
    }

    /// Instruction transfers performed while solving.
    pub fn visits(&self) -> u64 {
        self.visits
    }

    /// Recover the fact holding *before* instruction `pc` executes
    /// (forward problems) or *after* it (backward problems) by replaying
    /// the containing block's prefix.
    pub fn at_instruction<A>(&self, analysis: &A, program: &Program, cfg: &Cfg, pc: usize) -> F
    where
        A: Analysis<Fact = F>,
    {
        let b = cfg.block_of(pc);
        let block = &cfg.blocks()[b];
        let mut fact = self.entry[b].clone();
        match self.direction {
            Direction::Forward => {
                for i in block.start..pc {
                    analysis.transfer(i, program.ops()[i], &mut fact);
                }
            }
            Direction::Backward => {
                for i in (pc + 1..block.end).rev() {
                    analysis.transfer(i, program.ops()[i], &mut fact);
                }
            }
        }
        fact
    }
}

/// Solve `analysis` over `program`'s CFG with a deterministic (LIFO)
/// worklist. Returns `None` when more than `max_visits` instruction
/// transfers were needed — the caller treats that as "analysis refused",
/// never as a soundness claim.
pub fn solve<A: Analysis>(
    analysis: &A,
    program: &Program,
    cfg: &Cfg,
    max_visits: u64,
) -> Option<Solution<A::Fact>> {
    solve_with_order(analysis, program, cfg, max_visits, None)
}

/// As [`solve`], but when `shuffle_seed` is `Some`, worklist extraction is
/// pseudo-randomly permuted. Any monotone analysis must produce the same
/// fixpoint for every seed; the property suite pins that.
pub fn solve_with_order<A: Analysis>(
    analysis: &A,
    program: &Program,
    cfg: &Cfg,
    max_visits: u64,
    shuffle_seed: Option<u64>,
) -> Option<Solution<A::Fact>> {
    let blocks = cfg.blocks();
    let nb = blocks.len();
    let code = program.ops();
    let dir = analysis.direction();

    // Edges in propagation direction: forward uses successors as-is,
    // backward flips them.
    let mut out_edges: Vec<Vec<usize>> = vec![Vec::new(); nb];
    match dir {
        Direction::Forward => {
            for (b, block) in blocks.iter().enumerate() {
                out_edges[b] = block.successors.clone();
            }
        }
        Direction::Backward => {
            for (b, block) in blocks.iter().enumerate() {
                for &s in &block.successors {
                    out_edges[s].push(b);
                }
            }
        }
    }

    let mut entry: Vec<A::Fact> = (0..nb).map(|_| analysis.bottom()).collect();
    let mut exit: Vec<A::Fact> = (0..nb).map(|_| analysis.bottom()).collect();

    // Boundary blocks: the entry block (forward) or every block without a
    // successor (backward — `Halt` blocks and the verifier-rejected
    // fall-off-the-end shape).
    let mut worklist: Vec<usize> = Vec::new();
    let mut on_list = vec![false; nb];
    match dir {
        Direction::Forward => {
            entry[0] = analysis.boundary();
            worklist.push(0);
            on_list[0] = true;
        }
        Direction::Backward => {
            for (b, block) in blocks.iter().enumerate() {
                if block.successors.is_empty() {
                    entry[b] = analysis.boundary();
                }
                // Every block seeds the backward worklist: exit blocks
                // carry the boundary, the rest start at ⊥ and settle as
                // facts arrive. (Unreachable-from-exit blocks, e.g.
                // infinite loops, keep ⊥ — conservative for consumers.)
                worklist.push(b);
                on_list[b] = true;
            }
        }
    }

    let mut rng = shuffle_seed.unwrap_or(0);
    let mut visits: u64 = 0;
    while let Some(b) = pop(&mut worklist, shuffle_seed.is_some(), &mut rng) {
        on_list[b] = false;
        let block = &blocks[b];
        let mut fact = entry[b].clone();
        match dir {
            Direction::Forward => {
                for (pc, &op) in code.iter().enumerate().take(block.end).skip(block.start) {
                    analysis.transfer(pc, op, &mut fact);
                }
            }
            Direction::Backward => {
                for (pc, &op) in code
                    .iter()
                    .enumerate()
                    .take(block.end)
                    .skip(block.start)
                    .rev()
                {
                    analysis.transfer(pc, op, &mut fact);
                }
            }
        }
        visits += block.len() as u64;
        if visits > max_visits {
            return None;
        }
        exit[b] = fact;
        for &t in &out_edges[b] {
            let changed = match dir {
                Direction::Forward => {
                    let last = blocks[b].end - 1;
                    let op = code[last];
                    let edge = edge_kind(cfg, code.len(), op, last, t);
                    if edge == Edge::Other {
                        analysis.join(&mut entry[t], &exit[b])
                    } else {
                        let mut refined = exit[b].clone();
                        analysis.refine_edge(last, op, edge, &mut refined);
                        analysis.join(&mut entry[t], &refined)
                    }
                }
                Direction::Backward => analysis.join(&mut entry[t], &exit[b]),
            };
            if changed && !on_list[t] {
                worklist.push(t);
                on_list[t] = true;
            }
        }
    }

    Some(Solution {
        direction: dir,
        entry,
        exit,
        visits,
    })
}

/// Classify the edge from the block ending in `op` at `last` to successor
/// block `t`: which arm of a conditional it is, if unambiguous.
fn edge_kind(cfg: &Cfg, n: usize, op: Op, last: usize, t: usize) -> Edge {
    match op {
        Op::Jz(target) | Op::Jnz(target) => {
            let taken = cfg.block_of(target as usize);
            let fall = (last + 1 < n).then(|| cfg.block_of(last + 1));
            if fall == Some(taken) {
                Edge::Other
            } else if t == taken {
                Edge::Taken
            } else if fall == Some(t) {
                Edge::Fallthrough
            } else {
                Edge::Other
            }
        }
        _ => Edge::Other,
    }
}

/// Pop the next worklist entry: LIFO normally, a seeded pseudo-random
/// position when shuffling (xorshift — determinism per seed, no external
/// RNG dependency in this crate).
fn pop(worklist: &mut Vec<usize>, shuffle: bool, rng: &mut u64) -> Option<usize> {
    if worklist.is_empty() {
        return None;
    }
    if !shuffle {
        return worklist.pop();
    }
    *rng ^= *rng << 13;
    *rng ^= *rng >> 7;
    *rng ^= *rng << 17;
    *rng = rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let i = (*rng as usize) % worklist.len();
    Some(worklist.swap_remove(i))
}

// ---------------------------------------------------------------------------
// Stock instances
// ---------------------------------------------------------------------------

/// Backward liveness of local slots: a `u16` bitmask, bit `n` set when
/// local `n` may be read before its next write. `Store` to a dead local is
/// a dead store — the optimizer rewrites it to `Drop`.
#[derive(Clone, Copy, Debug, Default)]
pub struct LiveLocals;

impl Analysis for LiveLocals {
    type Fact = u16;

    fn direction(&self) -> Direction {
        Direction::Backward
    }

    fn boundary(&self) -> u16 {
        0
    }

    fn bottom(&self) -> u16 {
        0
    }

    fn join(&self, fact: &mut u16, other: &u16) -> bool {
        let merged = *fact | *other;
        let changed = merged != *fact;
        *fact = merged;
        changed
    }

    fn transfer(&self, _pc: usize, op: Op, fact: &mut u16) {
        match op {
            Op::Store(n) => *fact &= !(1 << n),
            Op::Load(n) => *fact |= 1 << n,
            _ => {}
        }
    }
}

/// Forward reaching definitions: which `Store` sites may have produced the
/// current value of each local. The fact is a sorted set of
/// `(slot, def_pc)` pairs; `u16::MAX` as `def_pc` denotes the implicit
/// "locals are zero at entry" definition.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReachingDefs;

/// Definition site marker for the implicit all-zeros entry state.
pub const DEF_ENTRY: u16 = u16::MAX;

impl Analysis for ReachingDefs {
    type Fact = Vec<(u8, u16)>;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn boundary(&self) -> Vec<(u8, u16)> {
        (0..crate::isa::MAX_LOCALS).map(|s| (s, DEF_ENTRY)).collect()
    }

    fn bottom(&self) -> Vec<(u8, u16)> {
        Vec::new()
    }

    fn join(&self, fact: &mut Vec<(u8, u16)>, other: &Vec<(u8, u16)>) -> bool {
        let mut changed = false;
        for &d in other {
            if let Err(i) = fact.binary_search(&d) {
                fact.insert(i, d);
                changed = true;
            }
        }
        changed
    }

    fn transfer(&self, pc: usize, op: Op, fact: &mut Vec<(u8, u16)>) {
        if let Op::Store(n) = op {
            fact.retain(|&(slot, _)| slot != n);
            let d = (n, pc as u16);
            if let Err(i) = fact.binary_search(&d) {
                fact.insert(i, d);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn solved<A: Analysis>(a: &A, src: &str) -> (Program, Cfg, Solution<A::Fact>) {
        let p = assemble(src).unwrap();
        let cfg = Cfg::build(&p);
        let sol = solve(a, &p, &cfg, 1 << 20).expect("budget ample");
        (p, cfg, sol)
    }

    #[test]
    fn liveness_straight_line() {
        // store 0 is read afterwards; store 1 never is.
        let (p, cfg, sol) = solved(
            &LiveLocals,
            "push 1
             store 0
             push 2
             store 1
             load 0
             halt",
        );
        // Before the program: nothing live at exit, load 0 keeps slot 0
        // live backwards past store 1.
        let before_store1 = sol.at_instruction(&LiveLocals, &p, &cfg, 3);
        assert_eq!(before_store1 & 1, 1, "slot 0 live across store 1");
        let after_store0 = sol.at_instruction(&LiveLocals, &p, &cfg, 1);
        assert_eq!(after_store0 & 0b10, 0, "slot 1 dead at its store");
    }

    #[test]
    fn liveness_across_branches_joins_with_union() {
        // slot 0 read on one arm only → live at the branch.
        let (p, cfg, sol) = solved(
            &LiveLocals,
            "push 7
             store 0
             arg 0
             jz other
             load 0
             halt
             other:
             push 1
             halt",
        );
        let at_branch = sol.at_instruction(&LiveLocals, &p, &cfg, 3);
        assert_eq!(at_branch & 1, 1);
    }

    #[test]
    fn reaching_defs_pinned_fixpoint_on_diamond() {
        // Two stores of slot 0 on the two arms both reach the join.
        //  0 arg 0 ; 1 jz 5 ; 2 push 1 ; 3 store 0 ; 4 jmp 7
        //  5 push 2 ; 6 store 0 ; 7 load 0 ; 8 halt
        let (p, cfg, sol) = solved(
            &ReachingDefs,
            "arg 0
             jz else
             push 1
             store 0
             jmp join
             else:
             push 2
             store 0
             join:
             load 0
             halt",
        );
        let at_join = sol.at_instruction(&ReachingDefs, &p, &cfg, 7);
        let defs0: Vec<u16> = at_join
            .iter()
            .filter(|&&(s, _)| s == 0)
            .map(|&(_, pc)| pc)
            .collect();
        assert_eq!(defs0, vec![3, 6], "exactly the two arm stores reach");
        // Slot 1 still carries only the entry definition.
        assert!(at_join.contains(&(1, DEF_ENTRY)));
    }

    #[test]
    fn reaching_defs_loop_reaches_back_to_header() {
        let (p, cfg, sol) = solved(
            &ReachingDefs,
            "push 3
             store 0
             loop:
             load 0
             jz out
             load 0
             push 1
             sub
             store 0
             jmp loop
             out:
             load 0
             halt",
        );
        // At the loop-header load (pc 2) both the init store (1) and the
        // back-edge store (7) reach.
        let at_head = sol.at_instruction(&ReachingDefs, &p, &cfg, 2);
        let defs0: Vec<u16> = at_head
            .iter()
            .filter(|&&(s, _)| s == 0)
            .map(|&(_, pc)| pc)
            .collect();
        assert_eq!(defs0, vec![1, 7]);
    }

    #[test]
    fn budget_exhaustion_returns_none() {
        let p = assemble("push 1\nstore 0\nload 0\nhalt").unwrap();
        let cfg = Cfg::build(&p);
        assert!(solve(&ReachingDefs, &p, &cfg, 2).is_none());
    }

    #[test]
    fn shuffled_order_reaches_same_fixpoint() {
        let p = assemble(
            "arg 0
             store 0
             loop:
             load 0
             jz out
             load 0
             push 1
             sub
             store 0
             jmp loop
             out:
             load 0
             halt",
        )
        .unwrap();
        let cfg = Cfg::build(&p);
        let base = solve(&ReachingDefs, &p, &cfg, 1 << 20).unwrap();
        for seed in [1u64, 7, 42, 0xDEAD] {
            let shuffled =
                solve_with_order(&ReachingDefs, &p, &cfg, 1 << 20, Some(seed)).unwrap();
            for b in 0..cfg.blocks().len() {
                assert_eq!(base.block_entry(b), shuffled.block_entry(b), "seed {seed}");
                assert_eq!(base.block_exit(b), shuffled.block_exit(b), "seed {seed}");
            }
        }
    }
}
