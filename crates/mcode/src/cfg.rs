//! Control-flow graphs over mcode programs.
//!
//! The verifier ([`crate::verify`]) works per instruction, but several of
//! its facts are block-level: which instructions can execute at all
//! (reachability → dead-code detection) and whether control flow can
//! revisit an instruction (cyclicity → a static fuel bound exists only
//! for loop-free code). This module builds the classic basic-block CFG:
//! leaders are the entry, every jump target, and every instruction after
//! a branch; blocks run from a leader to the next terminator.
//!
//! All algorithms are iterative (no recursion): programs can hold up to
//! 65 535 instructions and hostile code must not be able to overflow the
//! host's call stack during *analysis* any more than during execution.

use crate::isa::Op;
use crate::program::Program;

/// A maximal straight-line run of instructions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BasicBlock {
    /// Index of the first instruction.
    pub start: usize,
    /// One past the last instruction.
    pub end: usize,
    /// Blocks control may transfer to after this block's terminator.
    /// Empty for blocks ending in `Halt` (and for a block that would fall
    /// off the end of the program — the verifier rejects those).
    pub successors: Vec<usize>,
}

impl BasicBlock {
    /// Number of instructions in the block.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Always false: blocks contain at least one instruction.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// The control-flow graph of a validated [`Program`].
#[derive(Clone, Debug)]
pub struct Cfg {
    blocks: Vec<BasicBlock>,
    /// Instruction index → id of its containing block.
    block_of: Vec<usize>,
    /// Per-block: reachable from the entry block?
    reachable: Vec<bool>,
    /// Whether any reachable block can re-enter an already-visited block.
    cyclic: bool,
    /// Longest entry-to-exit path in executed instructions, when acyclic.
    longest_path: Option<u64>,
}

impl Cfg {
    /// Build the CFG of `program`.
    pub fn build(program: &Program) -> Cfg {
        let code = program.ops();
        let n = code.len();

        // Pass 1: mark leaders.
        let mut leader = vec![false; n];
        leader[0] = true;
        for (pc, op) in code.iter().enumerate() {
            match *op {
                Op::Jmp(t) => {
                    leader[t as usize] = true;
                    if pc + 1 < n {
                        leader[pc + 1] = true;
                    }
                }
                Op::Jz(t) | Op::Jnz(t) => {
                    leader[t as usize] = true;
                    if pc + 1 < n {
                        leader[pc + 1] = true;
                    }
                }
                Op::Halt if pc + 1 < n => leader[pc + 1] = true,
                _ => {}
            }
        }

        // Pass 2: cut blocks at leaders and map instructions to blocks.
        let mut blocks: Vec<BasicBlock> = Vec::new();
        let mut block_of = vec![0usize; n];
        for pc in 0..n {
            if leader[pc] {
                blocks.push(BasicBlock {
                    start: pc,
                    end: pc, // patched below
                    successors: Vec::new(),
                });
            }
            block_of[pc] = blocks.len() - 1;
        }
        let block_count = blocks.len();
        for (id, block) in blocks.iter_mut().enumerate() {
            block.end = if id + 1 < block_count {
                // The next block's leader; recover it from block_of.
                let mut e = block.start + 1;
                while e < n && block_of[e] == id {
                    e += 1;
                }
                e
            } else {
                n
            };
        }

        // Pass 3: successor edges from each block's terminator.
        for block in blocks.iter_mut() {
            let last = block.end - 1;
            let succ: Vec<usize> = match code[last] {
                Op::Jmp(t) => vec![block_of[t as usize]],
                Op::Jz(t) | Op::Jnz(t) => {
                    let mut s = vec![block_of[t as usize]];
                    if last + 1 < n {
                        let fall = block_of[last + 1];
                        if fall != s[0] {
                            s.push(fall);
                        }
                    }
                    s
                }
                Op::Halt => Vec::new(),
                // Straight-line fall-through into the next leader; a block
                // whose last instruction is also the program's last falls
                // off the end (no successor — the verifier rejects it).
                _ if last + 1 < n => vec![block_of[last + 1]],
                _ => Vec::new(),
            };
            block.successors = succ;
        }

        // Pass 4: reachability (iterative DFS from the entry block).
        let mut reachable = vec![false; block_count];
        let mut stack = vec![0usize];
        reachable[0] = true;
        while let Some(b) = stack.pop() {
            for &s in &blocks[b].successors {
                if !reachable[s] {
                    reachable[s] = true;
                    stack.push(s);
                }
            }
        }

        // Pass 5: cycle detection over the reachable subgraph (iterative
        // three-colour DFS), and — when acyclic — the longest path in
        // executed instructions via a topological sweep.
        let (cyclic, longest_path) = analyse_flow(&blocks, &reachable);

        Cfg {
            blocks,
            block_of,
            reachable,
            cyclic,
            longest_path,
        }
    }

    /// The basic blocks, in instruction order.
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// Id of the block containing instruction `pc`.
    pub fn block_of(&self, pc: usize) -> usize {
        self.block_of[pc]
    }

    /// Whether block `id` is reachable from the entry.
    pub fn is_reachable(&self, id: usize) -> bool {
        self.reachable[id]
    }

    /// Instruction indices that can never execute, in ascending order.
    pub fn dead_instructions(&self) -> Vec<usize> {
        let mut dead = Vec::new();
        for (id, block) in self.blocks.iter().enumerate() {
            if !self.reachable[id] {
                dead.extend(block.start..block.end);
            }
        }
        dead
    }

    /// True when reachable control flow contains a cycle (a loop).
    pub fn is_cyclic(&self) -> bool {
        self.cyclic
    }

    /// For loop-free programs: the most instructions any execution can
    /// retire, i.e. a static fuel bound. `None` when the program loops.
    pub fn max_executed_instructions(&self) -> Option<u64> {
        self.longest_path
    }

    /// Per-block predecessor lists (deduplicated, ascending).
    pub fn predecessors(&self) -> Vec<Vec<usize>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for (b, block) in self.blocks.iter().enumerate() {
            for &s in &block.successors {
                preds[s].push(b);
            }
        }
        for p in &mut preds {
            p.sort_unstable();
            p.dedup();
        }
        preds
    }

    /// Strongly connected components of the **reachable** subgraph, each a
    /// sorted list of block ids, in reverse topological order of the
    /// condensation (callees/loop bodies before the components that reach
    /// them). Iterative Tarjan — hostile code must not overflow the host
    /// stack during analysis.
    pub fn sccs(&self) -> Vec<Vec<usize>> {
        let n = self.blocks.len();
        let mut index = vec![usize::MAX; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut sccs: Vec<Vec<usize>> = Vec::new();
        let mut next_index = 0usize;
        // Explicit DFS frames: (node, next-successor-position).
        let mut frames: Vec<(usize, usize)> = Vec::new();

        for root in 0..n {
            if !self.reachable[root] || index[root] != usize::MAX {
                continue;
            }
            frames.push((root, 0));
            index[root] = next_index;
            low[root] = next_index;
            next_index += 1;
            stack.push(root);
            on_stack[root] = true;
            while let Some(&mut (v, ref mut pos)) = frames.last_mut() {
                if *pos < self.blocks[v].successors.len() {
                    let w = self.blocks[v].successors[*pos];
                    *pos += 1;
                    if index[w] == usize::MAX {
                        index[w] = next_index;
                        low[w] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack[w] = true;
                        frames.push((w, 0));
                    } else if on_stack[w] {
                        low[v] = low[v].min(index[w]);
                    }
                } else {
                    frames.pop();
                    if let Some(&(parent, _)) = frames.last() {
                        low[parent] = low[parent].min(low[v]);
                    }
                    if low[v] == index[v] {
                        let mut comp = Vec::new();
                        loop {
                            let w = stack.pop().expect("Tarjan stack underflow");
                            on_stack[w] = false;
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        comp.sort_unstable();
                        sccs.push(comp);
                    }
                }
            }
        }
        sccs
    }

    /// Whether block `b` has an edge to itself.
    pub fn has_self_loop(&self, b: usize) -> bool {
        self.blocks[b].successors.contains(&b)
    }
}

/// Cycle detection + longest path (in instructions) over reachable blocks.
fn analyse_flow(blocks: &[BasicBlock], reachable: &[bool]) -> (bool, Option<u64>) {
    const WHITE: u8 = 0;
    const GREY: u8 = 1;
    const BLACK: u8 = 2;
    let mut colour = vec![WHITE; blocks.len()];
    // Post-order of the reachable subgraph, for the longest-path sweep.
    let mut post_order: Vec<usize> = Vec::new();
    // Explicit DFS stack: (block, next-successor-to-visit).
    let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
    colour[0] = GREY;
    let mut cyclic = false;
    while let Some(&mut (b, ref mut next)) = stack.last_mut() {
        if *next < blocks[b].successors.len() {
            let s = blocks[b].successors[*next];
            *next += 1;
            match colour[s] {
                GREY => cyclic = true, // back edge
                WHITE => {
                    colour[s] = GREY;
                    stack.push((s, 0));
                }
                _ => {}
            }
        } else {
            colour[b] = BLACK;
            post_order.push(b);
            stack.pop();
        }
    }
    if cyclic {
        return (true, None);
    }
    // Reverse post-order is a topological order; longest path from entry.
    let mut dist: Vec<Option<u64>> = vec![None; blocks.len()];
    dist[0] = Some(blocks[0].len() as u64);
    let mut best = dist[0].unwrap_or(0);
    for &b in post_order.iter().rev() {
        let Some(d) = dist[b] else { continue };
        best = best.max(d);
        for &s in &blocks[b].successors {
            if reachable[s] {
                let cand = d + blocks[s].len() as u64;
                if dist[s].is_none_or(|cur| cand > cur) {
                    dist[s] = Some(cand);
                }
            }
        }
    }
    (false, Some(best))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prog(ops: Vec<Op>) -> Program {
        Program::new(ops).unwrap()
    }

    #[test]
    fn straight_line_is_one_block() {
        let cfg = Cfg::build(&prog(vec![Op::PushI(1), Op::PushI(2), Op::Add, Op::Halt]));
        assert_eq!(cfg.blocks().len(), 1);
        assert_eq!(cfg.blocks()[0].len(), 4);
        assert!(cfg.blocks()[0].successors.is_empty());
        assert!(!cfg.is_cyclic());
        assert_eq!(cfg.max_executed_instructions(), Some(4));
        assert!(cfg.dead_instructions().is_empty());
    }

    #[test]
    fn branch_splits_blocks_and_bounds_longest_path() {
        // 0: arg 0 ; 1: jz 4 ; 2: push 1 ; 3: halt ; 4: push 2 ; 5: halt
        let cfg = Cfg::build(&prog(vec![
            Op::Arg(0),
            Op::Jz(4),
            Op::PushI(1),
            Op::Halt,
            Op::PushI(2),
            Op::Halt,
        ]));
        assert_eq!(cfg.blocks().len(), 3);
        assert_eq!(cfg.blocks()[0].successors.len(), 2);
        assert!(!cfg.is_cyclic());
        // Either arm retires 4 instructions.
        assert_eq!(cfg.max_executed_instructions(), Some(4));
    }

    #[test]
    fn loops_are_cyclic_with_no_static_bound() {
        // 0: push 1 ; 1: jnz 0 ; 2: halt — wait, jnz pops; use jmp loop.
        let cfg = Cfg::build(&prog(vec![Op::PushI(1), Op::Jmp(0)]));
        assert!(cfg.is_cyclic());
        assert_eq!(cfg.max_executed_instructions(), None);
    }

    #[test]
    fn self_loop_on_conditional_detected() {
        let cfg = Cfg::build(&prog(vec![Op::Arg(0), Op::Jnz(0), Op::PushI(0), Op::Halt]));
        assert!(cfg.is_cyclic());
    }

    #[test]
    fn unreachable_tail_reported_dead() {
        // 0: push 1 ; 1: halt ; 2: push 2 ; 3: halt
        let cfg = Cfg::build(&prog(vec![Op::PushI(1), Op::Halt, Op::PushI(2), Op::Halt]));
        assert_eq!(cfg.dead_instructions(), vec![2, 3]);
    }

    #[test]
    fn jump_over_dead_code_keeps_target_reachable() {
        // 0: jmp 3 ; 1: push 9 ; 2: halt ; 3: push 1 ; 4: halt
        let cfg = Cfg::build(&prog(vec![
            Op::Jmp(3),
            Op::PushI(9),
            Op::Halt,
            Op::PushI(1),
            Op::Halt,
        ]));
        assert_eq!(cfg.dead_instructions(), vec![1, 2]);
        assert!(!cfg.is_cyclic());
        assert_eq!(cfg.max_executed_instructions(), Some(3));
    }

    #[test]
    fn sccs_and_predecessors_identify_the_loop() {
        // 0: push ; 1: store ; 2: load ; 3: jz out ; 4: load ; 5: push ;
        // 6: sub ; 7: store ; 8: jmp 2 ; 9: push ; 10: halt
        let cfg = Cfg::build(&prog(vec![
            Op::PushI(3),
            Op::Store(0),
            Op::Load(0),
            Op::Jz(9),
            Op::Load(0),
            Op::PushI(1),
            Op::Sub,
            Op::Store(0),
            Op::Jmp(2),
            Op::PushI(0),
            Op::Halt,
        ]));
        let sccs = cfg.sccs();
        // One multi-block SCC: the header (load/jz) plus the body.
        let looped: Vec<&Vec<usize>> = sccs.iter().filter(|c| c.len() > 1).collect();
        assert_eq!(looped.len(), 1);
        let header = cfg.block_of(2);
        let body = cfg.block_of(4);
        assert_eq!(looped[0], &vec![header, body]);
        // The header's predecessors are the init block and the body.
        let preds = cfg.predecessors();
        assert_eq!(preds[header], vec![cfg.block_of(0), body]);
        assert!(!cfg.has_self_loop(header));
    }

    #[test]
    fn diamond_longest_path_takes_heavier_arm() {
        // 0: arg0 ; 1: jz 5 ; 2: push ; 3: push ; 4: jmp 6 ; 5: push ; 6: halt
        let cfg = Cfg::build(&prog(vec![
            Op::Arg(0),
            Op::Jz(5),
            Op::PushI(1),
            Op::PushI(2),
            Op::Jmp(6),
            Op::PushI(3),
            Op::Halt,
        ]));
        assert!(!cfg.is_cyclic());
        // Heavy arm: 0,1 + 2,3,4 + 6 = 6 instructions.
        assert_eq!(cfg.max_executed_instructions(), Some(6));
    }
}
