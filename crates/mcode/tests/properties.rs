//! Property-based tests: the VM must be total (no panics) and deterministic
//! for arbitrary — including hostile — mobile code.

use aroma_mcode::isa::{Op, MAX_LOCALS};
use aroma_mcode::{Host, NullHost, Program, SyscallPolicy, VerifyConfig, Vm, VmError};
use bytes::Bytes;
use proptest::prelude::*;

fn arb_op(code_len: u16) -> impl Strategy<Value = Op> {
    prop_oneof![
        any::<i64>().prop_map(Op::PushI),
        Just(Op::Dup),
        Just(Op::Drop),
        Just(Op::Swap),
        Just(Op::Over),
        Just(Op::Add),
        Just(Op::Sub),
        Just(Op::Mul),
        Just(Op::Div),
        Just(Op::Rem),
        Just(Op::Neg),
        Just(Op::Min),
        Just(Op::Max),
        Just(Op::And),
        Just(Op::Or),
        Just(Op::Xor),
        Just(Op::Eq),
        Just(Op::Lt),
        Just(Op::Gt),
        (0..code_len).prop_map(Op::Jmp),
        (0..code_len).prop_map(Op::Jz),
        (0..code_len).prop_map(Op::Jnz),
        (0u8..8).prop_map(Op::Arg),
        (0..MAX_LOCALS).prop_map(Op::Store),
        (0..MAX_LOCALS).prop_map(Op::Load),
        (any::<u8>(), 0u8..4).prop_map(|(id, argc)| Op::Syscall(id, argc)),
        Just(Op::Halt),
    ]
}

fn arb_program() -> impl Strategy<Value = Program> {
    (1u16..40).prop_flat_map(|len| {
        prop::collection::vec(arb_op(len), len as usize)
            .prop_map(|ops| Program::new(ops).expect("targets within range by construction"))
    })
}

/// A host that answers every syscall with a function of its inputs.
struct EchoHost;
impl Host for EchoHost {
    fn syscall(&mut self, id: u8, args: &[i64]) -> Result<i64, ()> {
        Ok(id as i64 + args.iter().sum::<i64>())
    }
}

proptest! {
    /// Arbitrary validated programs never panic the interpreter: every run
    /// returns Ok or a typed error within the fuel budget.
    #[test]
    fn vm_is_total(p in arb_program(), args in prop::collection::vec(any::<i64>(), 0..4)) {
        let _ = Vm.run(&p, &args, &mut EchoHost, 5_000);
    }

    /// Execution is deterministic: same program, args and host → same result.
    #[test]
    fn vm_is_deterministic(p in arb_program(), args in prop::collection::vec(any::<i64>(), 0..4)) {
        let a = Vm.run(&p, &args, &mut EchoHost, 5_000);
        let b = Vm.run(&p, &args, &mut EchoHost, 5_000);
        prop_assert_eq!(a, b);
    }

    /// Fuel monotonicity: if a run finishes (Ok or a non-fuel error) under
    /// budget f, the identical run under any larger budget gives the same
    /// outcome.
    #[test]
    fn fuel_monotone(p in arb_program(), args in prop::collection::vec(any::<i64>(), 0..4), extra in 1u64..1000) {
        let small = Vm.run(&p, &args, &mut EchoHost, 2_000);
        if small != Err(aroma_mcode::VmError::OutOfFuel) {
            let big = Vm.run(&p, &args, &mut EchoHost, 2_000 + extra);
            prop_assert_eq!(small, big);
        }
    }

    /// Program wire format round-trips.
    #[test]
    fn program_round_trip(p in arb_program()) {
        let decoded = Program::decode(p.encode()).unwrap();
        prop_assert_eq!(decoded, p);
    }

    /// Decoding arbitrary bytes never panics; success implies a validated
    /// program whose execution is also panic-free.
    #[test]
    fn decode_arbitrary_bytes_total(bytes in prop::collection::vec(any::<u8>(), 0..128)) {
        if let Ok(p) = Program::decode(Bytes::from(bytes)) {
            let _ = Vm.run(&p, &[1, 2, 3], &mut NullHost, 2_000);
        }
    }

    /// Verifier soundness: a program the static verifier accepts can never
    /// hit the errors it claims to rule out — stack underflow/overflow,
    /// running off the end, or halting without a result — under ample fuel.
    /// (Uninitialized-local reads cannot surface as a `VmError` at all:
    /// the verifier rejects them statically, and the dynamic VM papers
    /// over them with default-zero locals.)
    #[test]
    fn verified_programs_never_hit_verified_errors(
        p in arb_program(),
        args in prop::collection::vec(any::<i64>(), 0..4),
    ) {
        let cfg = VerifyConfig::with_syscalls(SyscallPolicy::AllowAll);
        if let Ok(vp) = p.verify(&cfg) {
            let r = Vm.run(&p, &args, &mut EchoHost, 200_000);
            prop_assert!(
                !matches!(
                    r,
                    Err(VmError::StackUnderflow { .. })
                        | Err(VmError::StackOverflow { .. })
                        | Err(VmError::NoHalt)
                        | Err(VmError::NoResult)
                ),
                "verifier accepted a program the checked VM faulted: {:?}",
                r
            );
            // And the fast path agrees with the checked path exactly.
            let fast = Vm.run_verified(&vp, &args, &mut EchoHost, 200_000);
            prop_assert_eq!(r, fast);
        }
    }

    /// The static fuel bound of a loop-free verified program really bounds
    /// execution: running with exactly that budget never runs out of fuel.
    #[test]
    fn fuel_bound_is_sound(
        p in arb_program(),
        args in prop::collection::vec(any::<i64>(), 0..4),
    ) {
        let cfg = VerifyConfig::with_syscalls(SyscallPolicy::AllowAll);
        if let Ok(vp) = p.verify(&cfg) {
            if let Some(bound) = vp.fuel_bound() {
                let r = Vm.run(&p, &args, &mut EchoHost, bound);
                prop_assert!(r != Err(VmError::OutOfFuel), "bound {} too small", bound);
            }
        }
    }

    /// The assembler and disassembler are inverses over the whole ISA:
    /// for any program, `assemble(disassemble(p)) == p`, including through
    /// the wire format. (Boundary immediates get a dedicated unit test in
    /// `asm`; this pins the identity for arbitrary shapes.)
    #[test]
    fn asm_round_trip_is_identity(p in arb_program()) {
        use aroma_mcode::asm::{assemble, disassemble};
        let src = disassemble(&p);
        prop_assert_eq!(assemble(&src).unwrap(), p.clone());
        let decoded = Program::decode(p.encode()).unwrap();
        prop_assert_eq!(disassemble(&decoded), src);
    }

    /// Translation-validated optimization is semantics-preserving: for any
    /// verifiable program, the optimized certificate re-verifies under the
    /// same config (by construction of `Validated`) and the optimized
    /// program is observationally equal to the original — same result, same
    /// syscall trace — on arbitrary arguments under a recording host.
    #[test]
    fn optimizer_preserves_observable_behaviour(
        p in arb_program(),
        args in prop::collection::vec(any::<i64>(), 0..4),
    ) {
        struct Recording(Vec<(u8, Vec<i64>)>);
        impl Host for Recording {
            fn syscall(&mut self, id: u8, args: &[i64]) -> Result<i64, ()> {
                self.0.push((id, args.to_vec()));
                Ok(id as i64 ^ args.iter().sum::<i64>() ^ self.0.len() as i64)
            }
        }
        let cfg = VerifyConfig::with_syscalls(SyscallPolicy::AllowAll);
        if let Ok(vp) = p.verify(&cfg) {
            let validated = aroma_mcode::opt::optimize_verified(&vp, &cfg);
            // The optimized program carries a fresh certificate under the
            // same config; run both ends on the same inputs.
            let mut ha = Recording(Vec::new());
            let mut hb = Recording(Vec::new());
            let a = Vm.run(&p, &args, &mut ha, 50_000);
            let b = Vm.run(validated.program.program(), &args, &mut hb, 50_000);
            // Fuel is the one observable the optimizer may improve: a run
            // that dies of fuel exhaustion may complete after shrinking.
            if a != Err(VmError::OutOfFuel) && b != Err(VmError::OutOfFuel) {
                match (&a, &b) {
                    (Ok(x), Ok(y)) => prop_assert_eq!(x, y),
                    (Err(x), Err(y)) => {
                        prop_assert_eq!(std::mem::discriminant(x), std::mem::discriminant(y))
                    }
                    _ => prop_assert!(false, "divergence: {:?} vs {:?}", a, b),
                }
                prop_assert_eq!(ha.0, hb.0, "syscall traces diverged");
            }
        }
    }

    /// Worklist fixpoints are iteration-order independent: solving the same
    /// monotone analysis under pseudo-random worklist permutations yields
    /// the same solution as the deterministic order, for both a forward
    /// (reaching definitions) and a backward (live locals) analysis.
    #[test]
    fn dataflow_fixpoint_is_order_independent(p in arb_program(), seed in any::<u64>()) {
        use aroma_mcode::cfg::Cfg;
        use aroma_mcode::dataflow::{solve, solve_with_order, LiveLocals, ReachingDefs};
        let cfg = Cfg::build(&p);
        let budget = 1 << 20;
        let base_rd = solve(&ReachingDefs, &p, &cfg, budget).unwrap();
        let perm_rd = solve_with_order(&ReachingDefs, &p, &cfg, budget, Some(seed)).unwrap();
        let base_ll = solve(&LiveLocals, &p, &cfg, budget).unwrap();
        let perm_ll = solve_with_order(&LiveLocals, &p, &cfg, budget, Some(seed)).unwrap();
        for b in 0..cfg.blocks().len() {
            prop_assert_eq!(base_rd.block_entry(b), perm_rd.block_entry(b));
            prop_assert_eq!(base_rd.block_exit(b), perm_rd.block_exit(b));
            prop_assert_eq!(base_ll.block_entry(b), perm_ll.block_entry(b));
            prop_assert_eq!(base_ll.block_exit(b), perm_ll.block_exit(b));
        }
    }

    /// The capability summary is complete: under a policy allowing every
    /// syscall, a verified program can only ever invoke ids the summary
    /// lists (observed by a recording host).
    #[test]
    fn syscall_summary_is_complete(
        p in arb_program(),
        args in prop::collection::vec(any::<i64>(), 0..4),
    ) {
        struct Recording(Vec<u8>);
        impl Host for Recording {
            fn syscall(&mut self, id: u8, args: &[i64]) -> Result<i64, ()> {
                self.0.push(id);
                Ok(args.iter().sum())
            }
        }
        let cfg = VerifyConfig::with_syscalls(SyscallPolicy::AllowAll);
        if let Ok(vp) = p.verify(&cfg) {
            let mut host = Recording(Vec::new());
            let _ = Vm.run_verified(&vp, &args, &mut host, 50_000);
            for id in host.0 {
                prop_assert!(vp.syscalls().contains(id), "unsummarised syscall {}", id);
            }
        }
    }
}
