//! Property-based tests: the VM must be total (no panics) and deterministic
//! for arbitrary — including hostile — mobile code.

use aroma_mcode::isa::{Op, MAX_LOCALS};
use aroma_mcode::{Host, NullHost, Program, SyscallPolicy, VerifyConfig, Vm, VmError};
use bytes::Bytes;
use proptest::prelude::*;

fn arb_op(code_len: u16) -> impl Strategy<Value = Op> {
    prop_oneof![
        any::<i64>().prop_map(Op::PushI),
        Just(Op::Dup),
        Just(Op::Drop),
        Just(Op::Swap),
        Just(Op::Over),
        Just(Op::Add),
        Just(Op::Sub),
        Just(Op::Mul),
        Just(Op::Div),
        Just(Op::Rem),
        Just(Op::Neg),
        Just(Op::Min),
        Just(Op::Max),
        Just(Op::And),
        Just(Op::Or),
        Just(Op::Xor),
        Just(Op::Eq),
        Just(Op::Lt),
        Just(Op::Gt),
        (0..code_len).prop_map(Op::Jmp),
        (0..code_len).prop_map(Op::Jz),
        (0..code_len).prop_map(Op::Jnz),
        (0u8..8).prop_map(Op::Arg),
        (0..MAX_LOCALS).prop_map(Op::Store),
        (0..MAX_LOCALS).prop_map(Op::Load),
        (any::<u8>(), 0u8..4).prop_map(|(id, argc)| Op::Syscall(id, argc)),
        Just(Op::Halt),
    ]
}

fn arb_program() -> impl Strategy<Value = Program> {
    (1u16..40).prop_flat_map(|len| {
        prop::collection::vec(arb_op(len), len as usize)
            .prop_map(|ops| Program::new(ops).expect("targets within range by construction"))
    })
}

/// A host that answers every syscall with a function of its inputs.
struct EchoHost;
impl Host for EchoHost {
    fn syscall(&mut self, id: u8, args: &[i64]) -> Result<i64, ()> {
        Ok(id as i64 + args.iter().sum::<i64>())
    }
}

proptest! {
    /// Arbitrary validated programs never panic the interpreter: every run
    /// returns Ok or a typed error within the fuel budget.
    #[test]
    fn vm_is_total(p in arb_program(), args in prop::collection::vec(any::<i64>(), 0..4)) {
        let _ = Vm.run(&p, &args, &mut EchoHost, 5_000);
    }

    /// Execution is deterministic: same program, args and host → same result.
    #[test]
    fn vm_is_deterministic(p in arb_program(), args in prop::collection::vec(any::<i64>(), 0..4)) {
        let a = Vm.run(&p, &args, &mut EchoHost, 5_000);
        let b = Vm.run(&p, &args, &mut EchoHost, 5_000);
        prop_assert_eq!(a, b);
    }

    /// Fuel monotonicity: if a run finishes (Ok or a non-fuel error) under
    /// budget f, the identical run under any larger budget gives the same
    /// outcome.
    #[test]
    fn fuel_monotone(p in arb_program(), args in prop::collection::vec(any::<i64>(), 0..4), extra in 1u64..1000) {
        let small = Vm.run(&p, &args, &mut EchoHost, 2_000);
        if small != Err(aroma_mcode::VmError::OutOfFuel) {
            let big = Vm.run(&p, &args, &mut EchoHost, 2_000 + extra);
            prop_assert_eq!(small, big);
        }
    }

    /// Program wire format round-trips.
    #[test]
    fn program_round_trip(p in arb_program()) {
        let decoded = Program::decode(p.encode()).unwrap();
        prop_assert_eq!(decoded, p);
    }

    /// Decoding arbitrary bytes never panics; success implies a validated
    /// program whose execution is also panic-free.
    #[test]
    fn decode_arbitrary_bytes_total(bytes in prop::collection::vec(any::<u8>(), 0..128)) {
        if let Ok(p) = Program::decode(Bytes::from(bytes)) {
            let _ = Vm.run(&p, &[1, 2, 3], &mut NullHost, 2_000);
        }
    }

    /// Verifier soundness: a program the static verifier accepts can never
    /// hit the errors it claims to rule out — stack underflow/overflow,
    /// running off the end, or halting without a result — under ample fuel.
    /// (Uninitialized-local reads cannot surface as a `VmError` at all:
    /// the verifier rejects them statically, and the dynamic VM papers
    /// over them with default-zero locals.)
    #[test]
    fn verified_programs_never_hit_verified_errors(
        p in arb_program(),
        args in prop::collection::vec(any::<i64>(), 0..4),
    ) {
        let cfg = VerifyConfig::with_syscalls(SyscallPolicy::AllowAll);
        if let Ok(vp) = p.verify(&cfg) {
            let r = Vm.run(&p, &args, &mut EchoHost, 200_000);
            prop_assert!(
                !matches!(
                    r,
                    Err(VmError::StackUnderflow { .. })
                        | Err(VmError::StackOverflow { .. })
                        | Err(VmError::NoHalt)
                        | Err(VmError::NoResult)
                ),
                "verifier accepted a program the checked VM faulted: {:?}",
                r
            );
            // And the fast path agrees with the checked path exactly.
            let fast = Vm.run_verified(&vp, &args, &mut EchoHost, 200_000);
            prop_assert_eq!(r, fast);
        }
    }

    /// The static fuel bound of a loop-free verified program really bounds
    /// execution: running with exactly that budget never runs out of fuel.
    #[test]
    fn fuel_bound_is_sound(
        p in arb_program(),
        args in prop::collection::vec(any::<i64>(), 0..4),
    ) {
        let cfg = VerifyConfig::with_syscalls(SyscallPolicy::AllowAll);
        if let Ok(vp) = p.verify(&cfg) {
            if let Some(bound) = vp.fuel_bound() {
                let r = Vm.run(&p, &args, &mut EchoHost, bound);
                prop_assert!(r != Err(VmError::OutOfFuel), "bound {} too small", bound);
            }
        }
    }

    /// The capability summary is complete: under a policy allowing every
    /// syscall, a verified program can only ever invoke ids the summary
    /// lists (observed by a recording host).
    #[test]
    fn syscall_summary_is_complete(
        p in arb_program(),
        args in prop::collection::vec(any::<i64>(), 0..4),
    ) {
        struct Recording(Vec<u8>);
        impl Host for Recording {
            fn syscall(&mut self, id: u8, args: &[i64]) -> Result<i64, ()> {
                self.0.push(id);
                Ok(args.iter().sum())
            }
        }
        let cfg = VerifyConfig::with_syscalls(SyscallPolicy::AllowAll);
        if let Ok(vp) = p.verify(&cfg) {
            let mut host = Recording(Vec::new());
            let _ = Vm.run_verified(&vp, &args, &mut host, 50_000);
            for id in host.0 {
                prop_assert!(vp.syscalls().contains(id), "unsummarised syscall {}", id);
            }
        }
    }
}
