//! A small free-list buffer pool for the server's encode path.
//!
//! Every framebuffer update used to allocate a fresh pixel scratch, tile
//! vector, stream buffer and chunk list; under broadcast fan-out those
//! allocations are pure churn, because the buffers' lifetimes are one
//! `serve` call. The pool keeps a bounded free list per buffer shape and
//! hands the same allocations back update after update. Hit/miss counters
//! feed `BENCH_fanout.json`'s allocations-per-update figure.
//!
//! Returned buffers are cleared on `take`, so recycled capacity can never
//! leak stale content between updates.

use bytes::Bytes;

/// Free-list cap per buffer shape: the encode path holds at most a couple
/// of each shape at once, so a handful of slots gives a ~100% steady-state
/// hit rate while bounding idle memory.
const POOL_CAP: usize = 8;

/// Free lists for the buffer shapes the encode path cycles through.
#[derive(Debug, Default)]
pub struct BufPool {
    pixels: Vec<Vec<u16>>,
    bytes: Vec<Vec<u8>>,
    hashes: Vec<Vec<u64>>,
    indices: Vec<Vec<usize>>,
    frames: Vec<Vec<Bytes>>,
    /// `take_*` calls served from a free list.
    pub hits: u64,
    /// `take_*` calls that had to allocate.
    pub misses: u64,
}

macro_rules! pool_pair {
    ($take:ident, $put:ident, $field:ident, $elem:ty, $doc:literal) => {
        #[doc = concat!("Take a cleared ", $doc, " buffer (recycled when possible).")]
        pub fn $take(&mut self) -> Vec<$elem> {
            match self.$field.pop() {
                Some(mut b) => {
                    self.hits += 1;
                    b.clear();
                    b
                }
                None => {
                    self.misses += 1;
                    Vec::new()
                }
            }
        }

        #[doc = concat!("Return a ", $doc, " buffer to the free list.")]
        pub fn $put(&mut self, buf: Vec<$elem>) {
            if self.$field.len() < POOL_CAP {
                self.$field.push(buf);
            }
        }
    };
}

impl BufPool {
    /// An empty pool: every first `take_*` is a miss, everything after
    /// steady state is a hit.
    pub fn new() -> Self {
        BufPool::default()
    }

    pool_pair!(take_pixels, put_pixels, pixels, u16, "pixel scratch");
    pool_pair!(take_bytes, put_bytes, bytes, u8, "byte stream");
    pool_pair!(take_hashes, put_hashes, hashes, u64, "tile-hash");
    pool_pair!(take_indices, put_indices, indices, usize, "tile-index");
    pool_pair!(take_frames, put_frames, frames, Bytes, "chunk-frame");

    /// Drop all pooled buffers (crash recovery), keeping the counters.
    pub fn clear(&mut self) {
        self.pixels.clear();
        self.bytes.clear();
        self.hashes.clear();
        self.indices.clear();
        self.frames.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recycles_capacity_and_counts_hits() {
        let mut p = BufPool::new();
        let mut b = p.take_bytes();
        assert_eq!(p.misses, 1);
        b.extend_from_slice(&[1, 2, 3]);
        let cap = b.capacity();
        p.put_bytes(b);
        let b2 = p.take_bytes();
        assert_eq!(p.hits, 1);
        assert!(b2.is_empty(), "recycled buffer must come back cleared");
        assert_eq!(b2.capacity(), cap, "capacity was not recycled");
    }

    #[test]
    fn free_list_is_bounded() {
        let mut p = BufPool::new();
        let bufs: Vec<Vec<u64>> = (0..POOL_CAP + 5).map(|_| p.take_hashes()).collect();
        for b in bufs {
            p.put_hashes(b);
        }
        assert_eq!(p.hashes.len(), POOL_CAP);
    }

    #[test]
    fn every_shape_round_trips() {
        let mut p = BufPool::new();
        let b = p.take_pixels();
        p.put_pixels(b);
        let b = p.take_bytes();
        p.put_bytes(b);
        let b = p.take_hashes();
        p.put_hashes(b);
        let b = p.take_indices();
        p.put_indices(b);
        let b = p.take_frames();
        p.put_frames(b);
        assert_eq!(p.misses, 5);
        p.clear();
        let _ = p.take_frames();
        assert_eq!(p.misses, 6, "clear() must empty the free lists");
    }
}
