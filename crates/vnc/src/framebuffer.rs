//! RGB565 framebuffer with tile-level change tracking.

use aroma_sim::rng::fnv1a;

/// Tile edge length in pixels (16×16, as in VNC's hextile encoding).
pub const TILE: usize = 16;

/// A 16-bit RGB565 framebuffer.
#[derive(Clone, Debug, PartialEq)]
pub struct Framebuffer {
    width: usize,
    height: usize,
    pixels: Vec<u16>,
}

impl Framebuffer {
    /// Black framebuffer of the given dimensions (must be multiples of
    /// [`TILE`], which every real mode of the era was).
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "degenerate framebuffer");
        assert!(
            width.is_multiple_of(TILE) && height.is_multiple_of(TILE),
            "dimensions must be multiples of the {TILE}px tile"
        );
        Framebuffer {
            width,
            height,
            pixels: vec![0; width * height],
        }
    }

    /// Width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Tile columns.
    pub fn tiles_x(&self) -> usize {
        self.width / TILE
    }

    /// Tile rows.
    pub fn tiles_y(&self) -> usize {
        self.height / TILE
    }

    /// Total tile count.
    pub fn tile_count(&self) -> usize {
        self.tiles_x() * self.tiles_y()
    }

    /// Read one pixel.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> u16 {
        self.pixels[y * self.width + x]
    }

    /// Write one pixel.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, v: u16) {
        self.pixels[y * self.width + x] = v;
    }

    /// Fill an axis-aligned rectangle (clipped to the framebuffer).
    pub fn fill_rect(&mut self, x: usize, y: usize, w: usize, h: usize, v: u16) {
        let x1 = (x + w).min(self.width);
        let y1 = (y + h).min(self.height);
        for yy in y.min(self.height)..y1 {
            let row = yy * self.width;
            self.pixels[row + x.min(self.width)..row + x1].fill(v);
        }
    }

    /// Fill the whole screen.
    pub fn clear(&mut self, v: u16) {
        self.pixels.fill(v);
    }

    /// Copy the pixels of tile `(tx, ty)` into `out` (row-major,
    /// `TILE*TILE` entries).
    pub fn read_tile(&self, tx: usize, ty: usize, out: &mut [u16]) {
        debug_assert_eq!(out.len(), TILE * TILE);
        let x0 = tx * TILE;
        let y0 = ty * TILE;
        for row in 0..TILE {
            let src = (y0 + row) * self.width + x0;
            out[row * TILE..(row + 1) * TILE].copy_from_slice(&self.pixels[src..src + TILE]);
        }
    }

    /// Write `data` (row-major `TILE*TILE` pixels) into tile `(tx, ty)`.
    pub fn write_tile(&mut self, tx: usize, ty: usize, data: &[u16]) {
        debug_assert_eq!(data.len(), TILE * TILE);
        let x0 = tx * TILE;
        let y0 = ty * TILE;
        for row in 0..TILE {
            let dst = (y0 + row) * self.width + x0;
            self.pixels[dst..dst + TILE].copy_from_slice(&data[row * TILE..(row + 1) * TILE]);
        }
    }

    /// Content hash of tile `(tx, ty)` (FNV-1a over its pixel bytes).
    pub fn tile_hash(&self, tx: usize, ty: usize) -> u64 {
        let x0 = tx * TILE;
        let y0 = ty * TILE;
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for row in 0..TILE {
            let src = (y0 + row) * self.width + x0;
            for &px in &self.pixels[src..src + TILE] {
                // Inline FNV over the two bytes of each pixel.
                for b in px.to_le_bytes() {
                    h ^= b as u64;
                    h = h.wrapping_mul(0x100_0000_01B3);
                }
            }
        }
        h
    }

    /// Hashes of every tile, row-major.
    pub fn tile_hashes(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.tile_count());
        self.tile_hashes_into(&mut out);
        out
    }

    /// [`Framebuffer::tile_hashes`] into a caller-owned vector (cleared
    /// first), so a hot render loop can recycle the allocation.
    pub fn tile_hashes_into(&self, out: &mut Vec<u64>) {
        out.clear();
        out.reserve(self.tile_count());
        for ty in 0..self.tiles_y() {
            for tx in 0..self.tiles_x() {
                out.push(self.tile_hash(tx, ty));
            }
        }
    }

    /// Indices (row-major) of tiles whose hash differs from `prev`
    /// (`prev.len()` must equal [`Framebuffer::tile_count`]).
    pub fn dirty_tiles(&self, prev: &[u64]) -> Vec<usize> {
        assert_eq!(prev.len(), self.tile_count(), "hash vector shape mismatch");
        self.tile_hashes()
            .iter()
            .enumerate()
            .filter(|(i, h)| prev[*i] != **h)
            .map(|(i, _)| i)
            .collect()
    }

    /// Whole-screen content digest.
    pub fn digest(&self) -> u64 {
        let mut bytes = Vec::with_capacity(self.pixels.len() * 2);
        for &px in &self.pixels {
            bytes.extend_from_slice(&px.to_le_bytes());
        }
        fnv1a(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_geometry() {
        let fb = Framebuffer::new(640, 480);
        assert_eq!(fb.width(), 640);
        assert_eq!(fb.height(), 480);
        assert_eq!(fb.tiles_x(), 40);
        assert_eq!(fb.tiles_y(), 30);
        assert_eq!(fb.tile_count(), 1200);
    }

    #[test]
    #[should_panic(expected = "multiples")]
    fn non_tile_multiple_rejected() {
        Framebuffer::new(641, 480);
    }

    #[test]
    fn pixel_round_trip() {
        let mut fb = Framebuffer::new(64, 32);
        fb.set(63, 31, 0xF800);
        assert_eq!(fb.get(63, 31), 0xF800);
        assert_eq!(fb.get(0, 0), 0);
    }

    #[test]
    fn fill_rect_clips() {
        let mut fb = Framebuffer::new(32, 32);
        fb.fill_rect(24, 24, 100, 100, 7);
        assert_eq!(fb.get(31, 31), 7);
        assert_eq!(fb.get(23, 23), 0);
    }

    #[test]
    fn tile_read_write_round_trip() {
        let mut fb = Framebuffer::new(64, 64);
        let data: Vec<u16> = (0..TILE * TILE).map(|i| i as u16).collect();
        fb.write_tile(2, 3, &data);
        let mut out = vec![0u16; TILE * TILE];
        fb.read_tile(2, 3, &mut out);
        assert_eq!(out, data);
        // Neighbouring tile untouched.
        fb.read_tile(1, 3, &mut out);
        assert!(out.iter().all(|&v| v == 0));
    }

    #[test]
    fn tile_hash_detects_single_pixel_change() {
        let mut fb = Framebuffer::new(64, 64);
        let before = fb.tile_hash(1, 1);
        fb.set(TILE + 5, TILE + 9, 1);
        assert_ne!(fb.tile_hash(1, 1), before);
        // Other tiles unaffected.
        assert_eq!(fb.tile_hash(0, 0), Framebuffer::new(64, 64).tile_hash(0, 0));
    }

    #[test]
    fn dirty_tiles_exactly_the_changed_ones() {
        let mut fb = Framebuffer::new(64, 64);
        let prev = fb.tile_hashes();
        fb.set(0, 0, 9); // tile 0
        fb.set(40, 40, 9); // tile (2,2) = index 2*4+2 = 10
        let dirty = fb.dirty_tiles(&prev);
        assert_eq!(dirty, vec![0, 10]);
    }

    #[test]
    fn clear_dirties_everything_once() {
        let mut fb = Framebuffer::new(64, 64);
        let prev = fb.tile_hashes();
        fb.clear(0xFFFF);
        assert_eq!(fb.dirty_tiles(&prev).len(), fb.tile_count());
        let now = fb.tile_hashes();
        assert!(fb.dirty_tiles(&now).is_empty());
    }

    #[test]
    fn digest_reflects_content() {
        let mut a = Framebuffer::new(32, 32);
        let b = Framebuffer::new(32, 32);
        assert_eq!(a.digest(), b.digest());
        a.set(5, 5, 1);
        assert_ne!(a.digest(), b.digest());
    }
}
