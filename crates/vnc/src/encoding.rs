//! Per-tile pixel encodings.
//!
//! Two encodings, as in VNC's simplest profile: `Raw` (pixels verbatim) and
//! `Rle` (run-length over RGB565 values). The encoder picks whichever is
//! smaller per tile — slides compress enormously, noise video does not,
//! which is precisely the content-dependence E1 measures.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Encoding identifier on the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Encoding {
    /// Pixels verbatim, row-major, little-endian u16.
    Raw,
    /// (run_len u8, value u16) pairs; runs of at most 255.
    Rle,
}

/// An encoded tile with its grid position.
#[derive(Clone, Debug, PartialEq)]
pub struct EncodedTile {
    /// Tile column.
    pub tx: u16,
    /// Tile row.
    pub ty: u16,
    /// Which encoding `data` uses.
    pub encoding: Encoding,
    /// Encoded payload.
    pub data: Bytes,
}

/// Decode errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Payload length is wrong for the encoding.
    BadLength,
    /// RLE runs do not sum to a full tile.
    BadRunTotal,
    /// Unknown encoding id.
    BadEncoding(u8),
    /// Buffer ended mid-structure.
    Truncated,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadLength => write!(f, "payload length invalid for encoding"),
            DecodeError::BadRunTotal => write!(f, "RLE runs do not cover the tile"),
            DecodeError::BadEncoding(e) => write!(f, "unknown encoding {e}"),
            DecodeError::Truncated => write!(f, "tile stream truncated"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// RLE-encode `pixels` (any length > 0).
pub fn rle_encode(pixels: &[u16]) -> Bytes {
    let mut out = BytesMut::with_capacity(pixels.len());
    let mut i = 0;
    while i < pixels.len() {
        let v = pixels[i];
        let mut run = 1usize;
        while i + run < pixels.len() && pixels[i + run] == v && run < 255 {
            run += 1;
        }
        out.put_u8(run as u8);
        out.put_u16_le(v);
        i += run;
    }
    out.freeze()
}

/// Decode an RLE stream into exactly `expected` pixels.
pub fn rle_decode(mut data: Bytes, expected: usize) -> Result<Vec<u16>, DecodeError> {
    let mut out = Vec::with_capacity(expected);
    while data.remaining() > 0 {
        if data.remaining() < 3 {
            return Err(DecodeError::Truncated);
        }
        let run = data.get_u8() as usize;
        let v = data.get_u16_le();
        if run == 0 || out.len() + run > expected {
            return Err(DecodeError::BadRunTotal);
        }
        out.extend(std::iter::repeat_n(v, run));
    }
    if out.len() != expected {
        return Err(DecodeError::BadRunTotal);
    }
    Ok(out)
}

/// Degraded-mode colour mask: keep the top 3 bits of red and green and the
/// top 2 of blue (RGB565), zeroing the rest. Flattening the low bits makes
/// runs longer, so RLE compresses gradients and photographic content far
/// better — the bandwidth/fidelity trade a viewer takes while the link is
/// bad.
pub const COARSE_MASK: u16 = 0xE718;

/// Quantise pixels in place to the degraded colour depth.
pub fn coarsen_pixels(pixels: &mut [u16]) {
    for p in pixels {
        *p &= COARSE_MASK;
    }
}

/// Encode a tile's pixels, choosing the smaller of Raw and RLE.
pub fn encode_tile(tx: u16, ty: u16, pixels: &[u16]) -> EncodedTile {
    let rle = rle_encode(pixels);
    if rle.len() < pixels.len() * 2 {
        EncodedTile {
            tx,
            ty,
            encoding: Encoding::Rle,
            data: rle,
        }
    } else {
        let mut raw = BytesMut::with_capacity(pixels.len() * 2);
        for &p in pixels {
            raw.put_u16_le(p);
        }
        EncodedTile {
            tx,
            ty,
            encoding: Encoding::Raw,
            data: raw.freeze(),
        }
    }
}

/// RLE-encode `pixels`, appending to `out` (the allocation-free twin of
/// [`rle_encode`], byte-identical output).
pub fn rle_encode_into(pixels: &[u16], out: &mut Vec<u8>) {
    let mut i = 0;
    while i < pixels.len() {
        let v = pixels[i];
        let mut run = 1usize;
        while i + run < pixels.len() && pixels[i + run] == v && run < 255 {
            run += 1;
        }
        out.push(run as u8);
        out.extend_from_slice(&v.to_le_bytes());
        i += run;
    }
}

/// Start a tile stream in a caller-owned buffer: the byte-identical twin
/// of [`write_tile_stream`]'s header. Follow with one
/// [`append_tile_record`] per tile (`count` of them).
pub fn begin_tile_stream(out: &mut Vec<u8>, count: u16) {
    out.extend_from_slice(&count.to_be_bytes());
}

/// Append one tile's record — position, chosen encoding, length, data — to
/// a stream started by [`begin_tile_stream`]. Picks the smaller of Raw and
/// RLE exactly like [`encode_tile`], producing byte-identical stream
/// output, but writes straight into `out` with `rle_scratch` as the only
/// working memory (cleared here; recycle it across calls).
pub fn append_tile_record(out: &mut Vec<u8>, tx: u16, ty: u16, pixels: &[u16], rle_scratch: &mut Vec<u8>) {
    rle_scratch.clear();
    rle_encode_into(pixels, rle_scratch);
    let rle_wins = rle_scratch.len() < pixels.len() * 2;
    out.extend_from_slice(&tx.to_be_bytes());
    out.extend_from_slice(&ty.to_be_bytes());
    if rle_wins {
        out.push(1); // Encoding::Rle
        out.extend_from_slice(&(rle_scratch.len() as u32).to_be_bytes());
        out.extend_from_slice(rle_scratch);
    } else {
        out.push(0); // Encoding::Raw
        out.extend_from_slice(&((pixels.len() * 2) as u32).to_be_bytes());
        for &p in pixels {
            out.extend_from_slice(&p.to_le_bytes());
        }
    }
}

/// Decode a tile back to `expected` pixels.
pub fn decode_tile(tile: &EncodedTile, expected: usize) -> Result<Vec<u16>, DecodeError> {
    match tile.encoding {
        Encoding::Raw => {
            if tile.data.len() != expected * 2 {
                return Err(DecodeError::BadLength);
            }
            let mut data = tile.data.clone();
            Ok((0..expected).map(|_| data.get_u16_le()).collect())
        }
        Encoding::Rle => rle_decode(tile.data.clone(), expected),
    }
}

/// Serialise a sequence of encoded tiles into one byte stream.
pub fn write_tile_stream(tiles: &[EncodedTile]) -> Bytes {
    let mut out = BytesMut::new();
    out.put_u16(tiles.len() as u16);
    for t in tiles {
        out.put_u16(t.tx);
        out.put_u16(t.ty);
        out.put_u8(match t.encoding {
            Encoding::Raw => 0,
            Encoding::Rle => 1,
        });
        out.put_u32(t.data.len() as u32);
        out.put_slice(&t.data);
    }
    out.freeze()
}

/// Parse a tile stream produced by [`write_tile_stream`].
pub fn read_tile_stream(mut data: Bytes) -> Result<Vec<EncodedTile>, DecodeError> {
    if data.remaining() < 2 {
        return Err(DecodeError::Truncated);
    }
    let n = data.get_u16() as usize;
    let mut out = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        if data.remaining() < 9 {
            return Err(DecodeError::Truncated);
        }
        let tx = data.get_u16();
        let ty = data.get_u16();
        let encoding = match data.get_u8() {
            0 => Encoding::Raw,
            1 => Encoding::Rle,
            e => return Err(DecodeError::BadEncoding(e)),
        };
        let len = data.get_u32() as usize;
        if data.remaining() < len {
            return Err(DecodeError::Truncated);
        }
        let payload = data.split_to(len);
        out.push(EncodedTile {
            tx,
            ty,
            encoding,
            data: payload,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framebuffer::TILE;

    const N: usize = TILE * TILE;

    #[test]
    fn rle_round_trip_uniform() {
        let pixels = vec![0xABCD; N];
        let enc = rle_encode(&pixels);
        // 256 pixels = 255-run + 1-run = 6 bytes.
        assert_eq!(enc.len(), 6);
        assert_eq!(rle_decode(enc, N).unwrap(), pixels);
    }

    #[test]
    fn rle_round_trip_alternating() {
        let pixels: Vec<u16> = (0..N).map(|i| (i % 2) as u16).collect();
        let enc = rle_encode(&pixels);
        assert_eq!(enc.len(), N * 3); // worst case: every run is 1
        assert_eq!(rle_decode(enc, N).unwrap(), pixels);
    }

    #[test]
    fn rle_rejects_wrong_totals() {
        let pixels = vec![7u16; N];
        let enc = rle_encode(&pixels);
        assert_eq!(rle_decode(enc.clone(), N - 1), Err(DecodeError::BadRunTotal));
        assert_eq!(rle_decode(enc.slice(0..3), N), Err(DecodeError::BadRunTotal));
    }

    #[test]
    fn rle_rejects_truncation_mid_run() {
        let pixels = vec![7u16; N];
        let enc = rle_encode(&pixels);
        assert_eq!(rle_decode(enc.slice(0..enc.len() - 1), N), Err(DecodeError::Truncated));
    }

    #[test]
    fn encoder_picks_rle_for_flat_content() {
        let t = encode_tile(0, 0, &vec![42u16; N]);
        assert_eq!(t.encoding, Encoding::Rle);
        assert!(t.data.len() < 10);
    }

    #[test]
    fn encoder_picks_raw_for_noise() {
        // A permutation-ish pattern with no runs.
        let pixels: Vec<u16> = (0..N).map(|i| (i * 2654435761usize % 65536) as u16).collect();
        let t = encode_tile(0, 0, &pixels);
        assert_eq!(t.encoding, Encoding::Raw);
        assert_eq!(t.data.len(), N * 2);
        assert_eq!(decode_tile(&t, N).unwrap(), pixels);
    }

    #[test]
    fn tile_decode_validates_raw_length() {
        let t = EncodedTile {
            tx: 0,
            ty: 0,
            encoding: Encoding::Raw,
            data: Bytes::from_static(&[1, 2, 3]),
        };
        assert_eq!(decode_tile(&t, N), Err(DecodeError::BadLength));
    }

    #[test]
    fn tile_stream_round_trip() {
        let tiles = vec![
            encode_tile(0, 0, &vec![1u16; N]),
            encode_tile(3, 7, &(0..N).map(|i| i as u16).collect::<Vec<_>>()),
        ];
        let stream = write_tile_stream(&tiles);
        let parsed = read_tile_stream(stream).unwrap();
        assert_eq!(parsed, tiles);
    }

    #[test]
    fn tile_stream_rejects_truncation() {
        let tiles = vec![encode_tile(0, 0, &vec![1u16; N])];
        let stream = write_tile_stream(&tiles);
        for cut in 0..stream.len() {
            assert!(
                read_tile_stream(stream.slice(0..cut)).is_err(),
                "prefix {cut} parsed"
            );
        }
    }

    #[test]
    fn coarse_encoding_never_grows_a_tile() {
        // A smooth gradient: full fidelity has no runs, the quantised
        // version collapses into long ones.
        let pixels: Vec<u16> = (0..N).map(|i| (i / 2) as u16).collect();
        let full = encode_tile(0, 0, &pixels);
        let mut coarse = pixels.clone();
        coarsen_pixels(&mut coarse);
        let enc = encode_tile(0, 0, &coarse);
        assert!(enc.data.len() <= full.data.len());
        // Quantisation is idempotent: decoded pixels are already coarse.
        let decoded = decode_tile(&enc, N).unwrap();
        assert!(decoded.iter().all(|p| p & !COARSE_MASK == 0));
    }

    #[test]
    fn empty_tile_stream_is_valid() {
        let stream = write_tile_stream(&[]);
        assert_eq!(read_tile_stream(stream).unwrap(), vec![]);
    }

    #[test]
    fn appending_stream_path_is_byte_identical() {
        // The pool-backed encoder (begin_tile_stream + append_tile_record)
        // must produce exactly the bytes of the allocating path, for every
        // encoding choice: flat (RLE), noisy (Raw), and gradient tiles.
        let flat = vec![42u16; N];
        let noise: Vec<u16> = (0..N).map(|i| (i * 2654435761usize % 65536) as u16).collect();
        let grad: Vec<u16> = (0..N).map(|i| (i / 2) as u16).collect();
        let tiles = vec![
            encode_tile(0, 0, &flat),
            encode_tile(3, 7, &noise),
            encode_tile(1, 2, &grad),
        ];
        let reference = write_tile_stream(&tiles);

        let mut out = Vec::new();
        let mut scratch = vec![0xAAu8; 17]; // dirty scratch must not leak in
        begin_tile_stream(&mut out, 3);
        append_tile_record(&mut out, 0, 0, &flat, &mut scratch);
        append_tile_record(&mut out, 3, 7, &noise, &mut scratch);
        append_tile_record(&mut out, 1, 2, &grad, &mut scratch);
        assert_eq!(&out[..], &reference[..]);
    }

    #[test]
    fn rle_encode_into_matches_rle_encode() {
        let pixels: Vec<u16> = (0..N).map(|i| ((i / 7) % 300) as u16).collect();
        let mut out = Vec::new();
        rle_encode_into(&pixels, &mut out);
        assert_eq!(&out[..], &rle_encode(&pixels)[..]);
    }
}
