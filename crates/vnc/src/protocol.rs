//! VNC-style wire protocol: client-pull update requests and MTU-sized
//! update chunks.

use aroma_net::MTU_BYTES;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Protocol discriminator: first byte of every VNC message, so apps
/// multiplexing several protocols on one node can route unambiguously.
pub const PROTO_VNC: u8 = 0xF8;

const TAG_UPDATE_REQUEST: u8 = 1;
const TAG_UPDATE_CHUNK: u8 = 2;
/// A degraded-mode request (quantised tiles). A separate tag rather than a
/// flag byte so full-quality requests stay byte-identical to the original
/// two-tag protocol.
const TAG_UPDATE_REQUEST_COARSE: u8 = 3;

/// Chunk header: proto(1) + tag(1) + update_id(4) + seq(2) + last(1) + len(4).
const CHUNK_HEADER: usize = 13;

/// Maximum payload carried per chunk frame.
pub const CHUNK_PAYLOAD: usize = MTU_BYTES - CHUNK_HEADER;

/// A VNC protocol message.
#[derive(Clone, Debug, PartialEq)]
pub enum VncMsg {
    /// Viewer asks for a screen update.
    UpdateRequest {
        /// True: only what changed since the last update. False: the full
        /// screen (initial connect or loss recovery).
        incremental: bool,
        /// True: the viewer is in degraded mode and accepts quantised
        /// (coarser-colour) tiles in exchange for a smaller stream.
        coarse: bool,
    },
    /// One fragment of a screen update.
    UpdateChunk {
        /// Update this chunk belongs to.
        update_id: u32,
        /// Position within the update (0-based, contiguous).
        seq: u16,
        /// True on the final chunk.
        last: bool,
        /// Slice of the update's tile stream.
        payload: Bytes,
    },
}

/// Protocol decode errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VncCodecError {
    /// Buffer too short.
    Truncated,
    /// Unknown tag byte.
    BadTag(u8),
    /// Bytes remained after a well-formed message — a framing bug or a
    /// smuggled payload; wire messages must parse exactly.
    TrailingBytes {
        /// How many bytes were left over.
        remaining: usize,
    },
}

impl VncMsg {
    /// Encode to wire bytes.
    pub fn encode(&self) -> Bytes {
        match self {
            VncMsg::UpdateRequest {
                incremental,
                coarse,
            } => {
                let mut b = BytesMut::with_capacity(3);
                b.put_u8(PROTO_VNC);
                b.put_u8(if *coarse {
                    TAG_UPDATE_REQUEST_COARSE
                } else {
                    TAG_UPDATE_REQUEST
                });
                b.put_u8(*incremental as u8);
                b.freeze()
            }
            VncMsg::UpdateChunk {
                update_id,
                seq,
                last,
                payload,
            } => {
                let mut b = BytesMut::with_capacity(CHUNK_HEADER + payload.len());
                b.put_u8(PROTO_VNC);
                b.put_u8(TAG_UPDATE_CHUNK);
                b.put_u32(*update_id);
                b.put_u16(*seq);
                b.put_u8(*last as u8);
                b.put_u32(payload.len() as u32);
                b.put_slice(payload);
                b.freeze()
            }
        }
    }

    /// Decode from wire bytes (expects the [`PROTO_VNC`] prefix).
    pub fn decode(mut buf: Bytes) -> Result<VncMsg, VncCodecError> {
        if buf.remaining() < 2 {
            return Err(VncCodecError::Truncated);
        }
        let proto = buf.get_u8();
        if proto != PROTO_VNC {
            return Err(VncCodecError::BadTag(proto));
        }
        let msg = match buf.get_u8() {
            tag @ (TAG_UPDATE_REQUEST | TAG_UPDATE_REQUEST_COARSE) => {
                if buf.remaining() < 1 {
                    return Err(VncCodecError::Truncated);
                }
                VncMsg::UpdateRequest {
                    incremental: buf.get_u8() != 0,
                    coarse: tag == TAG_UPDATE_REQUEST_COARSE,
                }
            }
            TAG_UPDATE_CHUNK => {
                if buf.remaining() < 11 {
                    return Err(VncCodecError::Truncated);
                }
                let update_id = buf.get_u32();
                let seq = buf.get_u16();
                let last = buf.get_u8() != 0;
                let len = buf.get_u32() as usize;
                if buf.remaining() < len {
                    return Err(VncCodecError::Truncated);
                }
                let payload = buf.split_to(len);
                VncMsg::UpdateChunk {
                    update_id,
                    seq,
                    last,
                    payload,
                }
            }
            t => return Err(VncCodecError::BadTag(t)),
        };
        // Wire messages must parse exactly; leftover bytes mean a framing
        // bug or a smuggled payload riding behind the message.
        if buf.remaining() > 0 {
            return Err(VncCodecError::TrailingBytes {
                remaining: buf.remaining(),
            });
        }
        Ok(msg)
    }
}

/// Split an update's tile stream into MTU-sized chunks. Always yields at
/// least one chunk (an empty update still answers the request).
pub fn chunk_update(update_id: u32, stream: Bytes) -> Vec<VncMsg> {
    let mut chunks = Vec::with_capacity(stream.len() / CHUNK_PAYLOAD + 1);
    let total = stream.len();
    let mut offset = 0usize;
    let mut seq: u16 = 0;
    loop {
        let end = (offset + CHUNK_PAYLOAD).min(total);
        let last = end == total;
        chunks.push(VncMsg::UpdateChunk {
            update_id,
            seq,
            last,
            payload: stream.slice(offset..end),
        });
        if last {
            break;
        }
        offset = end;
        seq = seq.checked_add(1).expect("update too large for u16 chunks");
    }
    chunks
}

/// Encode an update's full chunk sequence as ready-to-send wire frames in
/// **one allocation**: every returned `Bytes` is a refcounted view into a
/// single buffer, byte-identical to encoding each [`chunk_update`] message
/// with [`VncMsg::encode`]. This is the broadcast fan-out's hot path — the
/// frames are encoded once, then cloned (a refcount bump) into every
/// viewer's queue. Frames are appended to `out` (recycle the `Vec` across
/// updates); always at least one frame, like [`chunk_update`].
pub fn encode_chunk_frames_into(update_id: u32, stream: &[u8], out: &mut Vec<Bytes>) {
    let total = stream.len();
    let n_frames = if total == 0 { 1 } else { total.div_ceil(CHUNK_PAYLOAD) };
    assert!(n_frames - 1 <= u16::MAX as usize, "update too large for u16 chunks");
    let mut buf = BytesMut::with_capacity(n_frames * CHUNK_HEADER + total);
    let mut offset = 0usize;
    let mut seq: u16 = 0;
    loop {
        let end = (offset + CHUNK_PAYLOAD).min(total);
        let last = end == total;
        buf.put_u8(PROTO_VNC);
        buf.put_u8(TAG_UPDATE_CHUNK);
        buf.put_u32(update_id);
        buf.put_u16(seq);
        buf.put_u8(last as u8);
        buf.put_u32((end - offset) as u32);
        buf.put_slice(&stream[offset..end]);
        if last {
            break;
        }
        offset = end;
        seq += 1;
    }
    let frozen = buf.freeze();
    out.reserve(n_frames);
    let mut at = 0usize;
    offset = 0;
    loop {
        let end = (offset + CHUNK_PAYLOAD).min(total);
        let frame_len = CHUNK_HEADER + (end - offset);
        out.push(frozen.slice(at..at + frame_len));
        at += frame_len;
        if end == total {
            break;
        }
        offset = end;
    }
}

/// [`encode_chunk_frames_into`] returning a fresh `Vec`.
pub fn encode_chunk_frames(update_id: u32, stream: &[u8]) -> Vec<Bytes> {
    let mut out = Vec::new();
    encode_chunk_frames_into(update_id, stream, &mut out);
    out
}

/// Reassembles chunk payloads back into the update's tile stream.
#[derive(Debug, Default)]
pub struct Reassembler {
    current: Option<(u32, u16, BytesMut)>,
}

/// What [`Reassembler::push`] concluded.
#[derive(Debug, PartialEq)]
pub enum PushResult {
    /// Chunk accepted, update incomplete.
    Incomplete,
    /// Update complete: here is its tile stream.
    Complete(Bytes),
    /// Chunk did not fit the expected sequence; state reset. The caller
    /// should re-request a full update.
    Gap,
}

impl Reassembler {
    /// Fresh reassembler.
    pub fn new() -> Self {
        Reassembler::default()
    }

    /// Feed one chunk.
    pub fn push(&mut self, update_id: u32, seq: u16, last: bool, payload: &Bytes) -> PushResult {
        if let Some((id, next_seq, buf)) = &mut self.current {
            if *id == update_id && seq == *next_seq {
                buf.extend_from_slice(payload);
                *next_seq += 1;
                return if last {
                    let (_, _, buf) = self.current.take().unwrap();
                    PushResult::Complete(buf.freeze())
                } else {
                    PushResult::Incomplete
                };
            }
            // The pending partial is stale. A seq-0 chunk of a *different*
            // update is the clean start of the next update — restart with
            // it below rather than discarding it, which would cost the
            // viewer a full re-request round-trip after every mid-update
            // loss. Anything else is an unrecoverable gap.
            let fresh_start = *id != update_id && seq == 0;
            self.current = None;
            if !fresh_start {
                return PushResult::Gap;
            }
        } else if seq != 0 {
            return PushResult::Gap; // joined mid-update
        }
        if last {
            return PushResult::Complete(payload.clone());
        }
        let mut buf = BytesMut::with_capacity(payload.len() * 4);
        buf.extend_from_slice(payload);
        self.current = Some((update_id, 1, buf));
        PushResult::Incomplete
    }

    /// Drop any partial update (loss recovery).
    pub fn reset(&mut self) {
        self.current = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trip() {
        for inc in [true, false] {
            for coarse in [true, false] {
                let m = VncMsg::UpdateRequest {
                    incremental: inc,
                    coarse,
                };
                assert_eq!(VncMsg::decode(m.encode()).unwrap(), m);
            }
        }
    }

    #[test]
    fn full_quality_request_wire_bytes_are_unchanged() {
        // The coarse flag must not perturb the original two-tag protocol:
        // a full-quality request still encodes to the exact pre-degradation
        // bytes (proto, tag 1, incremental).
        let m = VncMsg::UpdateRequest {
            incremental: true,
            coarse: false,
        };
        assert_eq!(&m.encode()[..], &[PROTO_VNC, 1, 1]);
    }

    #[test]
    fn chunk_round_trip() {
        let m = VncMsg::UpdateChunk {
            update_id: 77,
            seq: 3,
            last: true,
            payload: Bytes::from_static(b"pixels"),
        };
        assert_eq!(VncMsg::decode(m.encode()).unwrap(), m);
    }

    #[test]
    fn chunks_respect_mtu() {
        let stream = Bytes::from(vec![9u8; CHUNK_PAYLOAD * 3 + 100]);
        let chunks = chunk_update(1, stream.clone());
        assert_eq!(chunks.len(), 4);
        let mut total = 0usize;
        for (i, c) in chunks.iter().enumerate() {
            let encoded = c.encode();
            assert!(encoded.len() <= MTU_BYTES, "chunk {i} too big");
            if let VncMsg::UpdateChunk { seq, payload, last, .. } = c {
                assert_eq!(*seq as usize, i);
                assert_eq!(*last, i == 3);
                total += payload.len();
            }
        }
        assert_eq!(total, stream.len());
    }

    #[test]
    fn empty_update_is_one_last_chunk() {
        let chunks = chunk_update(5, Bytes::new());
        assert_eq!(chunks.len(), 1);
        assert!(matches!(
            &chunks[0],
            VncMsg::UpdateChunk { last: true, payload, .. } if payload.is_empty()
        ));
    }

    #[test]
    fn reassembly_round_trip() {
        let stream = Bytes::from((0..10_000u32).map(|i| i as u8).collect::<Vec<_>>());
        let chunks = chunk_update(9, stream.clone());
        let mut r = Reassembler::new();
        let mut out = None;
        for c in &chunks {
            if let VncMsg::UpdateChunk {
                update_id,
                seq,
                last,
                payload,
            } = c
            {
                match r.push(*update_id, *seq, *last, payload) {
                    PushResult::Complete(b) => out = Some(b),
                    PushResult::Incomplete => {}
                    PushResult::Gap => panic!("unexpected gap"),
                }
            }
        }
        assert_eq!(out.unwrap(), stream);
    }

    #[test]
    fn reassembly_detects_gap_and_resets() {
        let stream = Bytes::from(vec![1u8; CHUNK_PAYLOAD * 3]);
        let chunks = chunk_update(4, stream);
        let mut r = Reassembler::new();
        // Push chunk 0 then skip to chunk 2.
        let (c0, c2) = (&chunks[0], &chunks[2]);
        if let VncMsg::UpdateChunk {
            update_id,
            seq,
            last,
            payload,
        } = c0
        {
            assert_eq!(r.push(*update_id, *seq, *last, payload), PushResult::Incomplete);
        }
        if let VncMsg::UpdateChunk {
            update_id,
            seq,
            last,
            payload,
        } = c2
        {
            assert_eq!(r.push(*update_id, *seq, *last, payload), PushResult::Gap);
        }
        // After a gap the reassembler accepts a fresh update from seq 0.
        if let VncMsg::UpdateChunk {
            update_id,
            seq,
            last,
            payload,
        } = c0
        {
            assert_eq!(r.push(*update_id, *seq, *last, payload), PushResult::Incomplete);
        }
    }

    #[test]
    fn loss_then_new_update_restarts_reassembly() {
        // Mid-update loss: chunks 1.. of update 7 never arrive, then the
        // server moves on to update 8. Its seq-0 chunk must restart
        // reassembly (not be discarded as a Gap) so update 8 completes
        // without an extra full-update round-trip.
        let stream7 = Bytes::from(vec![7u8; CHUNK_PAYLOAD * 3]);
        let stream8 = Bytes::from(vec![8u8; CHUNK_PAYLOAD + 10]);
        let chunks7 = chunk_update(7, stream7);
        let chunks8 = chunk_update(8, stream8.clone());
        let mut r = Reassembler::new();
        if let VncMsg::UpdateChunk {
            update_id,
            seq,
            last,
            payload,
        } = &chunks7[0]
        {
            assert_eq!(r.push(*update_id, *seq, *last, payload), PushResult::Incomplete);
        }
        // chunks7[1..] lost; update 8 starts.
        let mut out = None;
        for c in &chunks8 {
            if let VncMsg::UpdateChunk {
                update_id,
                seq,
                last,
                payload,
            } = c
            {
                match r.push(*update_id, *seq, *last, payload) {
                    PushResult::Complete(b) => out = Some(b),
                    PushResult::Incomplete => {}
                    PushResult::Gap => panic!("fresh seq-0 chunk must not be a gap"),
                }
            }
        }
        assert_eq!(out.unwrap(), stream8);
    }

    #[test]
    fn single_chunk_new_update_completes_over_stale_partial() {
        let mut r = Reassembler::new();
        assert_eq!(
            r.push(1, 0, false, &Bytes::from_static(b"old")),
            PushResult::Incomplete
        );
        assert_eq!(
            r.push(2, 0, true, &Bytes::from_static(b"new")),
            PushResult::Complete(Bytes::from_static(b"new"))
        );
    }

    #[test]
    fn joining_mid_update_is_a_gap() {
        let mut r = Reassembler::new();
        assert_eq!(
            r.push(1, 5, false, &Bytes::from_static(b"x")),
            PushResult::Gap
        );
    }

    #[test]
    fn encoded_chunk_frames_match_the_per_chunk_path() {
        // The one-allocation frame encoder must be byte-identical to
        // chunk_update + per-message encode, across the size edge cases:
        // empty, sub-chunk, exact multiple, and multi-chunk with remainder.
        for len in [
            0usize,
            1,
            CHUNK_PAYLOAD - 1,
            CHUNK_PAYLOAD,
            CHUNK_PAYLOAD * 2,
            CHUNK_PAYLOAD * 3 + 100,
        ] {
            let stream = Bytes::from((0..len).map(|i| i as u8).collect::<Vec<_>>());
            let reference: Vec<Bytes> = chunk_update(77, stream.clone())
                .iter()
                .map(|m| m.encode())
                .collect();
            let frames = encode_chunk_frames(77, &stream);
            assert_eq!(frames, reference, "len {len} diverged");
            // All frames view one shared buffer: zero-copy fan-out works
            // because cloning any of them is a refcount bump, not a copy.
            for f in &frames {
                assert!(f.len() <= MTU_BYTES);
            }
        }
    }

    #[test]
    fn encode_chunk_frames_into_appends_and_recycles() {
        let mut out = Vec::new();
        encode_chunk_frames_into(1, b"abc", &mut out);
        assert_eq!(out.len(), 1);
        out.clear();
        encode_chunk_frames_into(2, &vec![9u8; CHUNK_PAYLOAD + 1], &mut out);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn reassembler_survives_update_id_wraparound() {
        // Satellite: next_update_id wraps u32::MAX → 0. The reassembler
        // must treat the wrapped id as a fresh update, not a stale one —
        // it compares ids only for equality, never for order, and this
        // test pins that property at the boundary.
        let stream_max = Bytes::from(vec![1u8; CHUNK_PAYLOAD + 7]);
        let stream_zero = Bytes::from(vec![2u8; CHUNK_PAYLOAD + 9]);
        let mut r = Reassembler::new();
        // Complete an update with the largest possible id…
        let mut done = None;
        for c in chunk_update(u32::MAX, stream_max.clone()) {
            if let VncMsg::UpdateChunk { update_id, seq, last, payload } = c {
                if let PushResult::Complete(b) = r.push(update_id, seq, last, &payload) {
                    done = Some(b);
                }
            }
        }
        assert_eq!(done.unwrap(), stream_max);
        // …then the wrapped id 0 must assemble cleanly from seq 0.
        let mut done = None;
        for c in chunk_update(0, stream_zero.clone()) {
            if let VncMsg::UpdateChunk { update_id, seq, last, payload } = c {
                match r.push(update_id, seq, last, &payload) {
                    PushResult::Complete(b) => done = Some(b),
                    PushResult::Incomplete => {}
                    PushResult::Gap => panic!("wrapped update id treated as stale"),
                }
            }
        }
        assert_eq!(done.unwrap(), stream_zero);
    }

    #[test]
    fn wrapped_id_restarts_reassembly_over_a_stale_partial() {
        // Mid-update loss right at the wrap: a partial of update u32::MAX
        // is pending when the wrapped update 0 starts. Its seq-0 chunk
        // must restart reassembly (the fresh-start rule is id-inequality,
        // so it survives the wrap).
        let mut r = Reassembler::new();
        assert_eq!(
            r.push(u32::MAX, 0, false, &Bytes::from_static(b"stale")),
            PushResult::Incomplete
        );
        assert_eq!(
            r.push(0, 0, true, &Bytes::from_static(b"wrapped")),
            PushResult::Complete(Bytes::from_static(b"wrapped"))
        );
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(
            VncMsg::decode(Bytes::from_static(&[99, 0])),
            Err(VncCodecError::BadTag(99))
        );
        assert_eq!(
            VncMsg::decode(Bytes::from_static(&[PROTO_VNC, 99])),
            Err(VncCodecError::BadTag(99))
        );
        assert_eq!(
            VncMsg::decode(Bytes::new()),
            Err(VncCodecError::Truncated)
        );
        // Truncated chunk length.
        let full = VncMsg::UpdateChunk {
            update_id: 1,
            seq: 0,
            last: true,
            payload: Bytes::from_static(b"abcdef"),
        }
        .encode();
        assert!(VncMsg::decode(full.slice(0..full.len() - 2)).is_err());
    }

    #[test]
    fn decode_rejects_trailing_bytes() {
        for m in [
            VncMsg::UpdateRequest {
                incremental: true,
                coarse: false,
            },
            VncMsg::UpdateRequest {
                incremental: false,
                coarse: true,
            },
            VncMsg::UpdateChunk {
                update_id: 3,
                seq: 1,
                last: false,
                payload: Bytes::from_static(b"tiles"),
            },
        ] {
            let mut b = BytesMut::new();
            b.put_slice(&m.encode());
            b.put_u8(0xAB);
            assert_eq!(
                VncMsg::decode(b.freeze()),
                Err(VncCodecError::TrailingBytes { remaining: 1 })
            );
        }
    }
}
