//! # aroma-vnc — remote framebuffer over the simulated WLAN
//!
//! The Smart Projector projects "a remote laptop display" using "AT&T's
//! Virtual Network Computer (VNC)", and the paper's physical-layer analysis
//! hangs on exactly this pipeline: *"the relatively low bandwidth of current
//! wireless networking adapters … prevents us from displaying rapid
//! animation"* (experiment E1). This crate substitutes a faithful-in-shape
//! remote-framebuffer protocol:
//!
//! * [`framebuffer`] — an RGB565 framebuffer with a 16×16 tile grid and
//!   per-tile content hashing for change detection,
//! * [`encoding`] — per-tile Raw/RLE encodings (whichever is smaller, as
//!   VNC's encoders choose per rectangle) with exact round-trip decode,
//! * [`protocol`] — client-pull updates (the viewer requests, the server
//!   responds with only the changed tiles), fragmented into MTU-sized
//!   chunks with windowed sending so the MAC queue is never flooded,
//! * [`workloads`] — the three screen contents the experiment sweeps:
//!   static slides, moving-box animation, and noise video (incompressible),
//! * [`apps`] — [`apps::VncServerApp`] (the laptop) and
//!   [`apps::VncViewerApp`] (the Aroma Adapter driving the projector),
//!   measuring achieved frame rate, per-frame latency and bytes on the air.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apps;
pub mod encoding;
pub mod framebuffer;
pub mod pool;
pub mod protocol;
pub mod workloads;

pub use apps::{VncServerApp, VncViewerApp};
pub use framebuffer::{Framebuffer, TILE};
pub use workloads::{BouncingBox, NoiseVideo, ScreenSource, SlideDeck};
