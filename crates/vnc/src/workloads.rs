//! Screen-content generators for the E1 experiment.
//!
//! Three contents, matching the paper's usage spectrum: a presenter's
//! *slide deck* (changes rarely, compresses perfectly), *rapid animation*
//! (the case the paper says the wireless link cannot sustain), and *noise
//! video* (incompressible worst case).

use crate::framebuffer::Framebuffer;
use aroma_sim::{SimRng, SimTime};

/// Something that can draw the screen contents at a given instant.
pub trait ScreenSource {
    /// Render the screen as of time `t` into `fb`.
    fn render(&mut self, t: SimTime, fb: &mut Framebuffer);
    /// Short name for reports.
    fn name(&self) -> &'static str;
}

/// A slide deck: a full-screen colour + title bar that changes every
/// `period_s` seconds.
pub struct SlideDeck {
    /// Seconds per slide.
    pub period_s: f64,
}

impl SlideDeck {
    /// A deck advancing every `period_s` seconds.
    pub fn new(period_s: f64) -> Self {
        assert!(period_s > 0.0);
        SlideDeck { period_s }
    }
}

impl ScreenSource for SlideDeck {
    fn render(&mut self, t: SimTime, fb: &mut Framebuffer) {
        let slide = (t.as_secs_f64() / self.period_s) as usize;
        // Background hue varies per slide; bullet blocks vary in count.
        let bg = 0x2104u16.wrapping_add((slide as u16).wrapping_mul(0x1111));
        fb.clear(bg);
        fb.fill_rect(32, 16, fb.width() - 64, 48, 0xFFFF); // title bar
        for bullet in 0..(slide % 5 + 1) {
            fb.fill_rect(48, 96 + bullet * 48, fb.width() / 2, 24, 0xC618);
        }
    }
    fn name(&self) -> &'static str {
        "slides"
    }
}

/// A box bouncing around the screen, re-rendered continuously — the
/// "rapid animation" of the paper's physical-layer analysis.
pub struct BouncingBox {
    /// Box edge, pixels.
    pub size: usize,
    /// Horizontal speed, pixels/second.
    pub vx: f64,
    /// Vertical speed, pixels/second.
    pub vy: f64,
}

impl BouncingBox {
    /// A default 64 px box moving briskly.
    pub fn new() -> Self {
        BouncingBox {
            size: 64,
            vx: 350.0,
            vy: 220.0,
        }
    }
}

impl Default for BouncingBox {
    fn default() -> Self {
        Self::new()
    }
}

impl ScreenSource for BouncingBox {
    fn render(&mut self, t: SimTime, fb: &mut Framebuffer) {
        let (w, h) = (fb.width(), fb.height());
        let span_x = (w - self.size) as f64;
        let span_y = (h - self.size) as f64;
        // Triangle-wave position: |((vt) mod 2s) - s| for bounce.
        let tri = |v: f64, span: f64| -> f64 {
            let x = (v * t.as_secs_f64()) % (2.0 * span);
            (x - span).abs()
        };
        let x = span_x - tri(self.vx, span_x);
        let y = span_y - tri(self.vy, span_y);
        fb.clear(0x0000);
        fb.fill_rect(x as usize, y as usize, self.size, self.size, 0xF800);
    }
    fn name(&self) -> &'static str {
        "animation"
    }
}

/// Full-screen incompressible noise, re-randomised per distinct frame time
/// (quantised to `fps`).
pub struct NoiseVideo {
    /// Frames per second of fresh noise.
    pub fps: f64,
    rng: SimRng,
}

impl NoiseVideo {
    /// Noise at `fps` frames per second, deterministic per `seed`.
    pub fn new(fps: f64, seed: u64) -> Self {
        assert!(fps > 0.0);
        NoiseVideo {
            fps,
            rng: SimRng::new(seed),
        }
    }
}

impl ScreenSource for NoiseVideo {
    fn render(&mut self, t: SimTime, fb: &mut Framebuffer) {
        // Deterministic per frame index: re-fork so replays and repeated
        // renders of the same instant produce identical screens.
        let frame = (t.as_secs_f64() * self.fps) as u64;
        let mut rng = self.rng.fork(frame);
        for y in 0..fb.height() {
            for x in 0..fb.width() {
                fb.set(x, y, rng.next_u64_raw() as u16);
            }
        }
    }
    fn name(&self) -> &'static str {
        "noise-video"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aroma_sim::SimDuration;

    fn fb() -> Framebuffer {
        Framebuffer::new(320, 240)
    }

    fn at(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn slides_static_within_a_slide() {
        let mut s = SlideDeck::new(10.0);
        let mut a = fb();
        let mut b = fb();
        s.render(at(1_000), &mut a);
        s.render(at(5_000), &mut b);
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn slides_change_between_slides() {
        let mut s = SlideDeck::new(1.0);
        let mut a = fb();
        let mut b = fb();
        s.render(at(500), &mut a);
        s.render(at(1_500), &mut b);
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn animation_moves_continuously() {
        let mut s = BouncingBox::new();
        let mut a = fb();
        let mut b = fb();
        s.render(at(100), &mut a);
        s.render(at(200), &mut b);
        assert_ne!(a.digest(), b.digest());
        // But only a minority of tiles change between close frames.
        let dirty = b.dirty_tiles(&a.tile_hashes());
        assert!(!dirty.is_empty());
        assert!(
            dirty.len() < a.tile_count() / 2,
            "animation should be localised: {}/{} tiles dirty",
            dirty.len(),
            a.tile_count()
        );
    }

    #[test]
    fn animation_stays_on_screen() {
        let mut s = BouncingBox::new();
        for ms in (0..20_000).step_by(333) {
            let mut f = fb();
            s.render(at(ms as u64), &mut f);
            // The red box must be fully visible: count red pixels.
            let mut red = 0usize;
            for y in 0..f.height() {
                for x in 0..f.width() {
                    if f.get(x, y) == 0xF800 {
                        red += 1;
                    }
                }
            }
            assert_eq!(red, 64 * 64, "box clipped at t={ms}ms");
        }
    }

    #[test]
    fn noise_changes_every_frame_and_is_deterministic() {
        let mut s = NoiseVideo::new(10.0, 7);
        let mut a = fb();
        let mut b = fb();
        s.render(at(0), &mut a);
        s.render(at(100), &mut b);
        assert_ne!(a.digest(), b.digest());
        // Same instant twice → same screen.
        let mut s2 = NoiseVideo::new(10.0, 7);
        let mut c = fb();
        s2.render(at(0), &mut c);
        assert_eq!(a.digest(), c.digest());
    }

    #[test]
    fn noise_is_static_within_a_frame_interval() {
        let mut s = NoiseVideo::new(10.0, 7);
        let mut a = fb();
        let mut b = fb();
        s.render(at(10), &mut a);
        s.render(at(60), &mut b); // same 100 ms frame window
        assert_eq!(a.digest(), b.digest());
    }
}
