//! The VNC roles as network applications.
//!
//! [`VncServerApp`] plays the presenter's laptop: it renders the current
//! screen on demand, diffs it against each viewer's last-applied
//! generation, and streams the changed tiles — to *every* registered
//! viewer, not just the most recent requester. The broadcast path is
//! zero-copy: each update's chunk sequence is encoded once into one shared
//! buffer and fanned out as refcounted [`Bytes`] clones, with per-viewer
//! send windows drained in deterministic round-robin order.
//! [`VncViewerApp`] plays the Aroma Adapter driving the projector: it
//! pulls updates as fast as it can (optionally capped to a target frame
//! rate), reassembles them, and applies them to its local framebuffer.
//! Achieved frame rate, frame latency and bytes on the air are the E1
//! observables.

use crate::encoding::{append_tile_record, begin_tile_stream, coarsen_pixels, decode_tile, read_tile_stream};
use crate::framebuffer::{Framebuffer, TILE};
use crate::pool::BufPool;
use crate::protocol::{encode_chunk_frames_into, PushResult, Reassembler, VncMsg};
use crate::workloads::ScreenSource;
use aroma_net::{Address, NetApp, NetCtx, NodeId};
use aroma_sim::stats::Summary;
use aroma_sim::telemetry::{Layer, Recorder};
use aroma_sim::{SimDuration, SimTime};
use bytes::Bytes;
use std::collections::{BTreeMap, VecDeque};
use std::time::Instant;

/// Per-viewer cap on chunks handed to the MAC but not yet completed.
const SEND_WINDOW: usize = 8;

/// Previous screen generations kept for incremental diffs. A viewer whose
/// last-applied generation has aged out of this window simply gets a full
/// update; in the steady lockstep case every viewer sits one generation
/// behind, so even depth 1 would hit.
const HISTORY_DEPTH: usize = 8;

const T_STALL: u64 = 1;
const T_NEXT_REQUEST: u64 = 2;
const T_RECONNECT: u64 = 3;

/// Viewer-side stall timeout before re-requesting a full update.
pub const STALL_TIMEOUT: SimDuration = SimDuration::from_secs(2);
/// Consecutive loss recoveries that flip the viewer into degraded mode
/// (halved target fps, coarse tiles). Consecutive — a single gap on a
/// lossy-but-live link never degrades, because completions reset the count.
pub const DEGRADE_AFTER: u32 = 3;
/// Consecutive clean updates that restore full quality.
pub const RECOVER_AFTER: u32 = 5;
/// Base pause before a repeated reconnect attempt (doubles per failure).
pub const RECONNECT_BASE: SimDuration = SimDuration::from_millis(500);
/// Reconnect backoff cap: pauses never exceed `RECONNECT_BASE << 3` = 4 s.
pub const MAX_RECONNECT_SHIFT: u32 = 3;

/// One registered viewer's send state. Viewers join in request-arrival
/// order and are never evicted (a silent viewer just has an empty queue);
/// the registry order is the pump's round-robin order, so the whole fan-out
/// is a pure function of the event sequence.
struct ViewerState {
    node: NodeId,
    /// Pre-encoded chunk frames queued for this viewer — refcounted views
    /// into encodings shared across the registry, never per-viewer copies.
    outgoing: VecDeque<Bytes>,
    /// Chunks handed to the MAC and not yet completed either way.
    in_flight: usize,
    /// Screen generation of the last update queued to this viewer.
    sent_gen: Option<u64>,
    /// That update was coarse. A fidelity switch in either direction
    /// forces a full update, so a viewer leaving degraded mode gets every
    /// tile back at full colour depth.
    sent_coarse: bool,
    /// Currently a member of the pump's ready ring.
    in_ready: bool,
}

/// One encoding of the *current* screen generation, shared by every viewer
/// that needs the same `(diff base, fidelity)` answer. Invalidated when a
/// render changes the screen.
struct CachedEncoding {
    /// Diff base generation; `None` is a full update. `Some(cur_gen)` is
    /// the empty "nothing changed" update.
    base_gen: Option<u64>,
    coarse: bool,
    /// The fully encoded wire frames (one shared allocation, see
    /// [`encode_chunk_frames_into`]).
    chunks: Vec<Bytes>,
    stream_len: usize,
    tiles: usize,
}

/// The screen server (the presenter's laptop).
pub struct VncServerApp {
    fb: Framebuffer,
    source: Box<dyn ScreenSource>,
    /// Screen generation: bumped whenever a render changes any tile hash.
    generation: u64,
    /// Tile hashes of the current generation.
    cur_hashes: Vec<u64>,
    /// `(generation, hashes)` of recent previous generations, oldest
    /// first, for incremental diffs against lagging viewers.
    history: VecDeque<(u64, Vec<u64>)>,
    /// Instant of the last render. Renders are idempotent per simulated
    /// instant, so a burst of requests at one time renders (and hashes)
    /// once.
    last_render_at: Option<SimTime>,
    /// Encodings already built against the current generation.
    encodings: Vec<CachedEncoding>,
    next_update_id: u32,
    viewers: Vec<ViewerState>,
    /// Viewer index by node id (keyed lookups only; `viewers` order is the
    /// deterministic iteration order).
    viewer_index: BTreeMap<u32, usize>,
    /// Round-robin ring of viewers with queued chunks and window space.
    ready: VecDeque<usize>,
    /// Free-list pool for the encode path's scratch buffers.
    pool: BufPool,
    /// Updates served (one per answered request, across all viewers).
    pub updates_sent: u64,
    /// Tiles sent across all updates (per serve, shared encodings counted
    /// once per receiving viewer).
    pub tiles_sent: u64,
    /// Tile-stream bytes sent (before MAC overhead), per serve.
    pub stream_bytes_sent: u64,
    /// Chunks that failed at the MAC (retry exhaustion / dead cable).
    pub chunk_failures: u64,
    /// Updates served in degraded (coarse) mode.
    pub coarse_updates_sent: u64,
    /// Tile-stream encodings actually performed. The encode-once claim in
    /// `BENCH_fanout.json` is `encodes` staying O(1) per screen change
    /// while `updates_sent` grows O(viewers).
    pub encodes: u64,
    /// Serves answered entirely from a cached encoding.
    pub encode_cache_hits: u64,
    /// Sends the MAC rejected synchronously despite the pump's queue-space
    /// budget (another protocol sharing this node's queue). The chunk
    /// stays queued — never dropped — and retries on the next completion.
    pub sync_send_rejections: u64,
}

impl VncServerApp {
    /// Server for a `width`×`height` screen rendered by `source`.
    pub fn new(width: usize, height: usize, source: Box<dyn ScreenSource>) -> Self {
        let fb = Framebuffer::new(width, height);
        let cur_hashes = fb.tile_hashes();
        VncServerApp {
            fb,
            source,
            generation: 0,
            cur_hashes,
            history: VecDeque::new(),
            last_render_at: None,
            encodings: Vec::new(),
            next_update_id: 0,
            viewers: Vec::new(),
            viewer_index: BTreeMap::new(),
            ready: VecDeque::new(),
            pool: BufPool::new(),
            updates_sent: 0,
            tiles_sent: 0,
            stream_bytes_sent: 0,
            chunk_failures: 0,
            coarse_updates_sent: 0,
            encodes: 0,
            encode_cache_hits: 0,
            sync_send_rejections: 0,
        }
    }

    /// Start the update-id counter at `id` (test/bench hook for pinning
    /// behaviour at the u32 wraparound boundary).
    pub fn with_first_update_id(mut self, id: u32) -> Self {
        self.next_update_id = id;
        self
    }

    /// The server's current screen digest (tests compare with the viewer).
    pub fn screen_digest(&self) -> u64 {
        self.fb.digest()
    }

    /// Registered viewers (they join on first request, never leave).
    pub fn viewer_count(&self) -> usize {
        self.viewers.len()
    }

    /// Chunks handed to the MAC and awaiting completion, all viewers.
    pub fn in_flight_total(&self) -> usize {
        self.viewers.iter().map(|v| v.in_flight).sum()
    }

    /// Chunks queued and not yet offered to the MAC, all viewers.
    pub fn queued_total(&self) -> usize {
        self.viewers.iter().map(|v| v.outgoing.len()).sum()
    }

    /// Buffer-pool `(hits, misses)` — the allocations-per-update signal.
    pub fn pool_stats(&self) -> (u64, u64) {
        (self.pool.hits, self.pool.misses)
    }

    /// Look up (or register) the viewer slot for `node`.
    fn viewer_slot(&mut self, node: NodeId) -> usize {
        if let Some(&i) = self.viewer_index.get(&node.0) {
            return i;
        }
        let i = self.viewers.len();
        self.viewers.push(ViewerState {
            node,
            outgoing: VecDeque::new(),
            in_flight: 0,
            sent_gen: None,
            sent_coarse: false,
            in_ready: false,
        });
        self.viewer_index.insert(node.0, i);
        i
    }

    /// Render the screen for this instant (idempotent: one render and one
    /// hash pass per simulated time, no matter how many viewers ask), and
    /// bump the generation if the content changed.
    fn render_current(&mut self, ctx: &mut NetCtx<'_>) {
        if self.last_render_at == Some(ctx.now()) {
            return;
        }
        // Pipeline stage timing is wall clock: in a discrete-event world
        // the compute stages (render/encode/chunk) occupy zero simulated
        // time, so their cost only shows up in the self-profiling section.
        let profiling = ctx.telemetry().enabled();
        // lint:allow(sim-wall-clock): render-stage profile timing feeds only Snapshot's profile section, which deterministic_eq excludes (pinned by traced_profile_never_reaches_deterministic_sections)
        let t0 = profiling.then(Instant::now);
        self.source.render(ctx.now(), &mut self.fb);
        let mut hashes = self.pool.take_hashes();
        self.fb.tile_hashes_into(&mut hashes);
        if hashes != self.cur_hashes {
            // New generation: retire the old hashes into the diff history
            // and invalidate every encoding of the old content.
            let old = std::mem::replace(&mut self.cur_hashes, hashes);
            self.history.push_back((self.generation, old));
            if self.history.len() > HISTORY_DEPTH {
                if let Some((_, h)) = self.history.pop_front() {
                    self.pool.put_hashes(h);
                }
            }
            self.generation += 1;
            for enc in self.encodings.drain(..) {
                let mut frames = enc.chunks;
                frames.clear();
                self.pool.put_frames(frames);
            }
        } else {
            self.pool.put_hashes(hashes);
        }
        self.last_render_at = Some(ctx.now());
        if let Some(t) = t0 {
            ctx.telemetry()
                .profile("vnc.render", t.elapsed().as_nanos() as u64);
        }
    }

    /// Find or build the encoding answering `(base, coarse)` against the
    /// current generation. Returns its index in `self.encodings`.
    fn encoding_for(&mut self, ctx: &mut NetCtx<'_>, base: Option<u64>, coarse: bool) -> usize {
        if let Some(i) = self
            .encodings
            .iter()
            .position(|e| e.base_gen == base && e.coarse == coarse)
        {
            self.encode_cache_hits += 1;
            return i;
        }
        let profiling = ctx.telemetry().enabled();
        // lint:allow(sim-wall-clock): encode-stage profile timing, same profile-only path as render_current's
        let t0 = profiling.then(Instant::now);
        let mut dirty = self.pool.take_indices();
        match base {
            // Diff against the current generation: nothing changed.
            Some(g) if g == self.generation => {}
            Some(g) => {
                let prev = self
                    .history
                    .iter()
                    .find(|(hg, _)| *hg == g)
                    .map(|(_, h)| h)
                    .expect("diff base vetted against history");
                dirty.extend(
                    prev.iter()
                        .zip(self.cur_hashes.iter())
                        .enumerate()
                        .filter(|(_, (a, b))| a != b)
                        .map(|(i, _)| i),
                );
            }
            None => dirty.extend(0..self.fb.tile_count()),
        }
        let mut stream = self.pool.take_bytes();
        let mut pixels = self.pool.take_pixels();
        pixels.resize(TILE * TILE, 0);
        let mut rle = self.pool.take_bytes();
        begin_tile_stream(&mut stream, dirty.len() as u16);
        let tx_count = self.fb.tiles_x();
        for &idx in &dirty {
            let (tx, ty) = (idx % tx_count, idx / tx_count);
            self.fb.read_tile(tx, ty, &mut pixels);
            if coarse {
                coarsen_pixels(&mut pixels);
            }
            append_tile_record(&mut stream, tx as u16, ty as u16, &pixels, &mut rle);
        }
        if let Some(t) = t0 {
            ctx.telemetry()
                .profile("vnc.encode", t.elapsed().as_nanos() as u64);
        }

        // lint:allow(sim-wall-clock): chunk-stage profile timing, same profile-only path as above
        let t0 = profiling.then(Instant::now);
        let id = self.next_update_id;
        self.next_update_id = self.next_update_id.wrapping_add(1);
        let mut chunks = self.pool.take_frames();
        encode_chunk_frames_into(id, &stream, &mut chunks);
        if let Some(t) = t0 {
            ctx.telemetry()
                .profile("vnc.chunk", t.elapsed().as_nanos() as u64);
        }
        self.encodes += 1;
        let entry = CachedEncoding {
            base_gen: base,
            coarse,
            chunks,
            stream_len: stream.len(),
            tiles: dirty.len(),
        };
        self.pool.put_bytes(stream);
        self.pool.put_bytes(rle);
        self.pool.put_pixels(pixels);
        self.pool.put_indices(dirty);
        self.encodings.push(entry);
        self.encodings.len() - 1
    }

    fn serve_update(&mut self, ctx: &mut NetCtx<'_>, slot: usize, incremental: bool, coarse: bool) {
        self.render_current(ctx);
        // An incremental diff is only valid against content of the *same*
        // fidelity, a generation still in the history window (or current).
        let base = if incremental && self.viewers[slot].sent_coarse == coarse {
            match self.viewers[slot].sent_gen {
                Some(g) if g == self.generation => Some(g),
                Some(g) if self.history.iter().any(|(hg, _)| *hg == g) => Some(g),
                _ => None,
            }
        } else {
            None
        };
        let enc_idx = self.encoding_for(ctx, base, coarse);
        let (stream_len, tiles, chunk_count) = {
            let e = &self.encodings[enc_idx];
            (e.stream_len, e.tiles, e.chunks.len())
        };
        let v = &mut self.viewers[slot];
        if !incremental {
            // A full re-request means the viewer reset its reassembler:
            // chunks still queued here are dead weight, so drop them.
            // (In-flight MAC frames can't be recalled; the reassembler's
            // fresh-start rule absorbs those stragglers.)
            v.outgoing.clear();
        }
        v.sent_gen = Some(self.generation);
        v.sent_coarse = coarse;
        self.updates_sent += 1;
        if coarse {
            self.coarse_updates_sent += 1;
        }
        self.tiles_sent += tiles as u64;
        self.stream_bytes_sent += stream_len as u64;
        // Fan-out: refcount bumps into the per-viewer queue, no copies.
        let (enc, v) = {
            // Split-borrow dance: clone out of the cache into the queue.
            let chunks = &self.encodings[enc_idx].chunks;
            (chunks.clone(), &mut self.viewers[slot])
        };
        v.outgoing.extend(enc);
        let now_ns = ctx.now().as_nanos();
        let rec = ctx.telemetry();
        rec.count("vnc.updates_served", 1);
        rec.observe("vnc.update_bytes", stream_len as f64);
        rec.event(
            now_ns,
            Layer::Resource,
            "vnc.update.serve",
            0,
            tiles as i64,
            chunk_count as i64,
        );
        self.mark_ready(slot);
        self.pump(ctx);
    }

    /// Put a viewer on the pump's ready ring if it can make progress.
    fn mark_ready(&mut self, slot: usize) {
        let v = &mut self.viewers[slot];
        if !v.in_ready && v.in_flight < SEND_WINDOW && !v.outgoing.is_empty() {
            v.in_ready = true;
            self.ready.push_back(slot);
        }
    }

    /// Drain queued chunks to the MAC: deterministic round-robin over the
    /// ready ring, one chunk per viewer per turn, bounded by each viewer's
    /// send window and this dispatch's free MAC-queue slots. A sync send
    /// rejection keeps the chunk queued — the old single-viewer pump
    /// dropped the entire backlog on a full queue.
    fn pump(&mut self, ctx: &mut NetCtx<'_>) {
        let mut radio_budget = ctx.mac_queue_space();
        while let Some(&slot) = self.ready.front() {
            let (node, open, has_chunks) = {
                let v = &self.viewers[slot];
                (v.node, v.in_flight < SEND_WINDOW, !v.outgoing.is_empty())
            };
            if !open || !has_chunks {
                self.viewers[slot].in_ready = false;
                self.ready.pop_front();
                continue;
            }
            let wired = ctx.unicast_is_wired(node);
            if !wired && radio_budget == 0 {
                break; // MAC queue full: resume on the next completion edge
            }
            let chunk = self.viewers[slot]
                .outgoing
                .front()
                .expect("checked non-empty")
                .clone();
            if ctx.send(Address::Node(node), chunk) {
                let v = &mut self.viewers[slot];
                v.outgoing.pop_front();
                v.in_flight += 1;
                if !wired {
                    radio_budget -= 1;
                }
                // Rotate to the tail: every ready viewer advances one
                // chunk per turn.
                self.ready.pop_front();
                let v = &mut self.viewers[slot];
                if v.in_flight < SEND_WINDOW && !v.outgoing.is_empty() {
                    self.ready.push_back(slot);
                } else {
                    v.in_ready = false;
                }
            } else {
                self.sync_send_rejections += 1;
                break;
            }
        }
    }
}

impl NetApp for VncServerApp {
    fn on_packet(&mut self, ctx: &mut NetCtx<'_>, from: NodeId, payload: &Bytes) {
        let Ok(VncMsg::UpdateRequest {
            incremental,
            coarse,
        }) = VncMsg::decode(payload.clone())
        else {
            return;
        };
        let slot = self.viewer_slot(from);
        self.serve_update(ctx, slot, incremental, coarse);
    }

    fn on_sent(&mut self, ctx: &mut NetCtx<'_>, to: Address) {
        if let Address::Node(n) = to {
            if let Some(&slot) = self.viewer_index.get(&n.0) {
                let v = &mut self.viewers[slot];
                // Saturating: a host app multiplexing other protocols on
                // this node (the presenter laptop) forwards completions
                // for its own frames too; those must not underflow the
                // window.
                v.in_flight = v.in_flight.saturating_sub(1);
                self.mark_ready(slot);
            }
        }
        self.pump(ctx);
    }

    fn on_send_failed(&mut self, ctx: &mut NetCtx<'_>, to: NodeId, _payload: &Bytes) {
        if let Some(&slot) = self.viewer_index.get(&to.0) {
            self.chunk_failures += 1;
            let v = &mut self.viewers[slot];
            v.in_flight = v.in_flight.saturating_sub(1);
            self.mark_ready(slot);
        }
        self.pump(ctx);
    }

    /// A crash drops the whole broadcast pipeline — viewer registry, send
    /// queues, encoding caches, diff history: the restarted server serves
    /// a full update to whoever asks next.
    fn on_crash(&mut self, _ctx: &mut NetCtx<'_>) {
        self.viewers.clear();
        self.viewer_index.clear();
        self.ready.clear();
        self.encodings.clear();
        self.history.clear();
        self.last_render_at = None;
        self.pool.clear();
    }
}

/// The screen viewer (the Aroma Adapter + projector).
pub struct VncViewerApp {
    /// The server to pull from.
    pub server: NodeId,
    fb: Framebuffer,
    reassembler: Reassembler,
    request_sent_at: Option<SimTime>,
    /// Last instant a chunk of the pending update arrived (stall detection
    /// must not kill a transfer that is merely *slow*).
    last_progress_at: Option<SimTime>,
    /// An update request is outstanding (gates the stall watchdog).
    awaiting_update: bool,
    /// Cap on request rate (None = pull as fast as updates complete).
    pub target_fps: Option<f64>,
    /// Completed updates (including empty ones).
    pub updates_completed: u64,
    /// Completed updates that contained at least one tile.
    pub frames_with_content: u64,
    /// Tile-stream bytes received.
    pub stream_bytes_received: u64,
    /// Per-update latency (request → fully applied), seconds.
    pub update_latency: Summary,
    /// Full (non-incremental) re-requests triggered by loss/stall.
    pub recoveries: u64,
    /// Degraded mode active: requests are coarse and the fps cap is halved.
    pub degraded: bool,
    /// Times the viewer entered degraded mode.
    pub degradations: u64,
    /// Times it climbed back to full quality.
    pub quality_recoveries: u64,
    /// Loss recoveries since the last completed update (drives both the
    /// degrade decision and the reconnect backoff).
    consecutive_recoveries: u32,
    /// Clean completions since entering degraded mode.
    clean_completes: u32,
    /// The incremental flag to use when the reconnect pause elapses.
    pending_incremental: bool,
    first_update_done: bool,
}

impl VncViewerApp {
    /// Viewer pulling a `width`×`height` screen from `server`.
    pub fn new(server: NodeId, width: usize, height: usize) -> Self {
        VncViewerApp {
            server,
            fb: Framebuffer::new(width, height),
            reassembler: Reassembler::new(),
            request_sent_at: None,
            last_progress_at: None,
            awaiting_update: false,
            target_fps: None,
            updates_completed: 0,
            frames_with_content: 0,
            stream_bytes_received: 0,
            update_latency: Summary::new(),
            recoveries: 0,
            degraded: false,
            degradations: 0,
            quality_recoveries: 0,
            consecutive_recoveries: 0,
            clean_completes: 0,
            pending_incremental: false,
            first_update_done: false,
        }
    }

    /// Cap the pull rate at `fps` updates per second.
    pub fn with_target_fps(mut self, fps: f64) -> Self {
        assert!(fps > 0.0);
        self.target_fps = Some(fps);
        self
    }

    /// The viewer's screen digest (tests compare with the server).
    pub fn screen_digest(&self) -> u64 {
        self.fb.digest()
    }

    /// Achieved update rate over `horizon`.
    pub fn achieved_fps(&self, horizon: SimDuration) -> f64 {
        let secs = horizon.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.updates_completed as f64 / secs
        }
    }

    fn request(&mut self, ctx: &mut NetCtx<'_>, incremental: bool) {
        self.request_sent_at = Some(ctx.now());
        self.last_progress_at = Some(ctx.now());
        self.awaiting_update = true;
        self.reassembler.reset();
        let rec = ctx.telemetry();
        rec.count("vnc.requests", 1);
        rec.event(
            self.request_sent_at.unwrap().as_nanos(),
            Layer::Resource,
            "vnc.request",
            self.server.0,
            incremental as i64,
            self.degraded as i64,
        );
        ctx.send(
            Address::Node(self.server),
            VncMsg::UpdateRequest {
                incremental,
                coarse: self.degraded,
            }
            .encode(),
        );
        ctx.set_timer(STALL_TIMEOUT, T_STALL);
    }

    fn schedule_next_request(&mut self, ctx: &mut NetCtx<'_>) {
        match self.target_fps {
            None => self.request(ctx, true),
            Some(fps) => {
                // Degraded mode halves the pull rate: fewer, smaller
                // updates while the link is bad.
                let fps = if self.degraded { fps * 0.5 } else { fps };
                let interval = SimDuration::from_secs_f64(1.0 / fps);
                let since = self
                    .request_sent_at
                    .map(|t| ctx.now().saturating_since(t))
                    .unwrap_or(SimDuration::ZERO);
                if since >= interval {
                    self.request(ctx, true);
                } else {
                    ctx.set_timer(interval - since, T_NEXT_REQUEST);
                }
            }
        }
    }

    fn apply_stream(&mut self, stream: Bytes) -> bool {
        self.stream_bytes_received += stream.len() as u64;
        let Ok(tiles) = read_tile_stream(stream) else {
            return false;
        };
        let had_content = !tiles.is_empty();
        for t in &tiles {
            let Ok(pixels) = decode_tile(t, TILE * TILE) else {
                return false;
            };
            self.fb.write_tile(t.tx as usize, t.ty as usize, &pixels);
        }
        if had_content {
            self.frames_with_content += 1;
        }
        true
    }

    /// One loss recovery: count it, maybe degrade, and either retry
    /// immediately (first failure — the original behaviour) or pause with
    /// exponential backoff so a dead server is probed, not hammered.
    fn recover(&mut self, ctx: &mut NetCtx<'_>, incremental: bool) {
        self.recoveries += 1;
        self.consecutive_recoveries += 1;
        self.clean_completes = 0;
        if !self.degraded && self.consecutive_recoveries >= DEGRADE_AFTER {
            self.degraded = true;
            self.degradations += 1;
            let now_ns = ctx.now().as_nanos();
            let rec = ctx.telemetry();
            rec.count("vnc.degrade", 1);
            rec.event(
                now_ns,
                Layer::Resource,
                "vnc.degrade",
                self.server.0,
                self.consecutive_recoveries as i64,
                0,
            );
        }
        if self.consecutive_recoveries <= 1 {
            self.request(ctx, incremental);
        } else {
            let shift = (self.consecutive_recoveries - 2).min(MAX_RECONNECT_SHIFT);
            let delay = SimDuration::from_nanos(RECONNECT_BASE.as_nanos() << shift);
            self.pending_incremental = incremental;
            self.awaiting_update = false;
            ctx.set_timer(delay, T_RECONNECT);
        }
    }

    /// A clean completion: reset the failure streak and, after
    /// [`RECOVER_AFTER`] of them in degraded mode, restore full quality.
    fn note_clean_complete(&mut self, ctx: &mut NetCtx<'_>) {
        self.consecutive_recoveries = 0;
        if self.degraded {
            self.clean_completes += 1;
            if self.clean_completes >= RECOVER_AFTER {
                self.degraded = false;
                self.clean_completes = 0;
                self.quality_recoveries += 1;
                let now_ns = ctx.now().as_nanos();
                let rec = ctx.telemetry();
                rec.count("vnc.recover", 1);
                rec.event(now_ns, Layer::Resource, "vnc.recover", self.server.0, 0, 0);
            }
        }
    }
}

impl NetApp for VncViewerApp {
    fn on_start(&mut self, ctx: &mut NetCtx<'_>) {
        self.request(ctx, false);
    }

    fn on_packet(&mut self, ctx: &mut NetCtx<'_>, from: NodeId, payload: &Bytes) {
        if from != self.server {
            return;
        }
        let Ok(VncMsg::UpdateChunk {
            update_id,
            seq,
            last,
            payload,
        }) = VncMsg::decode(payload.clone())
        else {
            return;
        };
        self.last_progress_at = Some(ctx.now());
        match self.reassembler.push(update_id, seq, last, &payload) {
            PushResult::Incomplete => {}
            PushResult::Gap => {
                // Lost a chunk: resynchronise with a full update.
                ctx.telemetry().count("vnc.gaps", 1);
                self.recover(ctx, false);
            }
            PushResult::Complete(stream) => {
                self.awaiting_update = false;
                if let Some(at) = self.request_sent_at {
                    let latency = ctx.now().saturating_since(at);
                    self.update_latency.record(latency.as_secs_f64());
                    let now_ns = ctx.now().as_nanos();
                    let rec = ctx.telemetry();
                    rec.observe("vnc.update_latency_s", latency.as_secs_f64());
                    rec.event(
                        now_ns,
                        Layer::Physical,
                        "vnc.update.deliver",
                        self.server.0,
                        stream.len() as i64,
                        latency.as_nanos() as i64,
                    );
                }
                if self.apply_stream(stream) {
                    self.updates_completed += 1;
                    self.first_update_done = true;
                    self.note_clean_complete(ctx);
                    self.schedule_next_request(ctx);
                } else {
                    self.recover(ctx, false);
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut NetCtx<'_>, token: u64) {
        match token {
            T_NEXT_REQUEST => self.request(ctx, true),
            T_STALL => {
                // Recover only when nothing has arrived for a full stall
                // window — a slow-but-progressing transfer (a big frame on
                // a thin link) must be left alone.
                if !self.awaiting_update {
                    return; // the watched update already completed
                }
                if let Some(progress) = self.last_progress_at {
                    let idle = ctx.now().saturating_since(progress);
                    if idle >= STALL_TIMEOUT {
                        self.recover(ctx, !self.first_update_done);
                    } else {
                        ctx.set_timer(STALL_TIMEOUT - idle, T_STALL);
                    }
                }
            }
            T_RECONNECT => {
                // Skip if a late completion ended the failure streak (a
                // normal request cycle is running again), or a request is
                // already in flight.
                if self.consecutive_recoveries == 0 || self.awaiting_update {
                    return;
                }
                self.request(ctx, self.pending_incremental);
            }
            _ => {}
        }
    }

    /// An adapter crash forgets the transfer in progress; the restart's
    /// `on_start` re-requests the full screen from scratch.
    fn on_crash(&mut self, _ctx: &mut NetCtx<'_>) {
        self.reassembler.reset();
        self.awaiting_update = false;
        self.request_sent_at = None;
        self.last_progress_at = None;
        self.consecutive_recoveries = 0;
        self.clean_completes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::{BouncingBox, SlideDeck};
    use aroma_env::radio::RadioEnvironment;
    use aroma_env::space::Point;
    use aroma_net::{MacConfig, Network, NodeConfig};

    fn quiet() -> RadioEnvironment {
        RadioEnvironment {
            shadowing_sigma_db: 0.0,
            ..Default::default()
        }
    }

    fn pair(
        source: Box<dyn ScreenSource>,
        w: usize,
        h: usize,
        seed: u64,
    ) -> (Network, NodeId, NodeId) {
        let mut net = Network::new(quiet(), MacConfig::default(), seed);
        let server = net.add_node(
            NodeConfig::at(Point::new(0.0, 0.0)),
            Box::new(VncServerApp::new(w, h, source)),
        );
        let viewer = net.add_node(
            NodeConfig::at(Point::new(4.0, 0.0)),
            Box::new(VncViewerApp::new(server, w, h)),
        );
        (net, server, viewer)
    }

    #[test]
    fn traced_profile_never_reaches_deterministic_sections() {
        // The three `Instant::now` sites in serve_update are waived with
        // `lint:allow(sim-wall-clock)` on the claim that their nanos feed
        // ONLY the snapshot's profile section, which deterministic_eq
        // excludes. Pin that claim: two traced runs of the same seed must
        // compare deterministic_eq even though both recorded real (and
        // almost surely different) wall-clock stage timings.
        use aroma_sim::telemetry::TelemetryConfig;
        let run = || {
            let (mut net, _server, _viewer) = pair(Box::new(BouncingBox::new()), 320, 240, 7);
            net.attach_telemetry(TelemetryConfig::default());
            net.run_for(SimDuration::from_secs(2));
            net.telemetry_snapshot().expect("telemetry attached")
        };
        let (a, b) = (run(), run());
        for stage in ["vnc.render", "vnc.encode", "vnc.chunk"] {
            assert!(
                a.profile.iter().any(|p| p.name == stage && p.calls > 0),
                "profiling stage {stage} never recorded — the waived wall-clock \
                 sites are not exercising the profile-only path this test pins"
            );
        }
        assert!(
            a.deterministic_eq(&b),
            "wall-clock profiling leaked into a deterministic_eq-compared section"
        );
    }

    #[test]
    fn initial_full_update_transfers_screen() {
        let (mut net, server, viewer) = pair(Box::new(SlideDeck::new(10.0)), 320, 240, 1);
        net.run_for(SimDuration::from_secs(2));
        let s = net.app_as::<VncServerApp>(server).unwrap();
        let v = net.app_as::<VncViewerApp>(viewer).unwrap();
        assert!(v.updates_completed >= 1);
        assert_eq!(
            s.screen_digest(),
            v.screen_digest(),
            "viewer screen diverged from server"
        );
        assert_eq!(v.recoveries, 0);
    }

    #[test]
    fn static_screen_sends_tiny_incremental_updates() {
        let (mut net, server, viewer) = pair(Box::new(SlideDeck::new(60.0)), 320, 240, 2);
        net.run_for(SimDuration::from_secs(3));
        let s = net.app_as::<VncServerApp>(server).unwrap();
        let v = net.app_as::<VncViewerApp>(viewer).unwrap();
        // Many updates completed, but only the first carried tiles.
        assert!(v.updates_completed > 10);
        assert_eq!(v.frames_with_content, 1, "static screen resent content");
        // Stream bytes ≈ one full screen; later updates are headers only.
        assert!(s.stream_bytes_sent < 320 * 240 * 2 / 4, "slides should compress");
    }

    #[test]
    fn animation_keeps_sending_content() {
        let (mut net, _server, viewer) = pair(Box::new(BouncingBox::new()), 320, 240, 3);
        net.run_for(SimDuration::from_secs(3));
        let v = net.app_as::<VncViewerApp>(viewer).unwrap();
        assert!(v.updates_completed > 5);
        // Nearly every update of a moving box has content.
        assert!(
            v.frames_with_content as f64 >= v.updates_completed as f64 * 0.8,
            "content {} of {}",
            v.frames_with_content,
            v.updates_completed
        );
    }

    #[test]
    fn viewer_tracks_moving_screen_to_convergence() {
        // Run, then freeze the source by letting time settle: with a slide
        // deck, after the final slide change the screens must converge.
        let (mut net, server, viewer) = pair(Box::new(SlideDeck::new(1.0)), 320, 240, 4);
        net.run_for(SimDuration::from_secs(5));
        // Settle within the current slide (period 1 s: run a bit more and
        // compare right after an update completes).
        net.run_for(SimDuration::from_millis(400));
        let s = net.app_as::<VncServerApp>(server).unwrap();
        let v = net.app_as::<VncViewerApp>(viewer).unwrap();
        assert_eq!(s.screen_digest(), v.screen_digest());
    }

    #[test]
    fn target_fps_caps_request_rate() {
        let mut net = Network::new(quiet(), MacConfig::default(), 5);
        let server = net.add_node(
            NodeConfig::at(Point::new(0.0, 0.0)),
            Box::new(VncServerApp::new(320, 240, Box::new(SlideDeck::new(60.0)))),
        );
        let viewer = net.add_node(
            NodeConfig::at(Point::new(4.0, 0.0)),
            Box::new(VncViewerApp::new(server, 320, 240).with_target_fps(5.0)),
        );
        net.run_for(SimDuration::from_secs(4));
        let v = net.app_as::<VncViewerApp>(viewer).unwrap();
        let fps = v.achieved_fps(SimDuration::from_secs(4));
        assert!(fps <= 5.5, "fps {fps} exceeds the 5 fps cap");
        assert!(fps >= 3.0, "fps {fps} far below the cap on an idle link");
    }

    #[test]
    fn server_outage_degrades_then_recovers_full_quality() {
        use aroma_sim::faults::FaultSchedule;

        let mut net = Network::new(quiet(), MacConfig::default(), 7);
        let server = net.add_node(
            NodeConfig::at(Point::new(0.0, 0.0)),
            Box::new(VncServerApp::new(320, 240, Box::new(SlideDeck::new(60.0)))),
        );
        let viewer = net.add_node(
            NodeConfig::at(Point::new(4.0, 0.0)),
            Box::new(VncViewerApp::new(server, 320, 240).with_target_fps(10.0)),
        );
        // Server dies at 3 s and stays dead long enough for the viewer's
        // stall→reconnect streak to cross DEGRADE_AFTER, then comes back.
        let schedule = FaultSchedule::builder(99)
            .crash_restart(
                SimDuration::from_secs(3).as_nanos(),
                SimDuration::from_secs(11).as_nanos(),
                server.0,
            )
            .build();
        net.attach_faults(&schedule);
        net.run_for(SimDuration::from_secs(25));

        let s = net.app_as::<VncServerApp>(server).unwrap();
        let v = net.app_as::<VncViewerApp>(viewer).unwrap();
        assert!(v.degradations >= 1, "outage never degraded the viewer");
        assert!(s.coarse_updates_sent >= 1, "no coarse update was served");
        assert!(
            v.quality_recoveries >= 1 && !v.degraded,
            "viewer never climbed back to full quality"
        );
        // The post-recovery full update restores exact fidelity.
        assert_eq!(s.screen_digest(), v.screen_digest());
    }

    #[test]
    fn update_latency_is_recorded() {
        let (mut net, _server, viewer) = pair(Box::new(SlideDeck::new(10.0)), 320, 240, 6);
        net.run_for(SimDuration::from_secs(2));
        let v = net.app_as::<VncViewerApp>(viewer).unwrap();
        assert!(v.update_latency.count() >= 1);
        // The first (full) update of a 320×240 screen at ~11 Mbps with RLE
        // slides is a handful of chunks: tens of ms at most.
        assert!(v.update_latency.max().unwrap() < 0.5);
    }

    /// A bare-bones second viewer: one full-update request at a chosen
    /// time, then reassemble whatever comes back. Exists to interleave a
    /// request into the middle of another viewer's transfer.
    struct ProbeViewer {
        server: NodeId,
        request_at: SimDuration,
        reassembler: Reassembler,
        fb: Framebuffer,
        completed: u64,
    }

    impl ProbeViewer {
        fn new(server: NodeId, request_at: SimDuration, w: usize, h: usize) -> Self {
            ProbeViewer {
                server,
                request_at,
                reassembler: Reassembler::new(),
                fb: Framebuffer::new(w, h),
                completed: 0,
            }
        }
    }

    impl NetApp for ProbeViewer {
        fn on_start(&mut self, ctx: &mut NetCtx<'_>) {
            ctx.set_timer(self.request_at, 1);
        }

        fn on_timer(&mut self, ctx: &mut NetCtx<'_>, _token: u64) {
            self.reassembler.reset();
            ctx.send(
                Address::Node(self.server),
                VncMsg::UpdateRequest {
                    incremental: false,
                    coarse: false,
                }
                .encode(),
            );
        }

        fn on_packet(&mut self, _ctx: &mut NetCtx<'_>, from: NodeId, payload: &Bytes) {
            if from != self.server {
                return;
            }
            let Ok(VncMsg::UpdateChunk {
                update_id,
                seq,
                last,
                payload,
            }) = VncMsg::decode(payload.clone())
            else {
                return;
            };
            if let PushResult::Complete(stream) = self.reassembler.push(update_id, seq, last, &payload)
            {
                for t in &read_tile_stream(stream).expect("valid stream") {
                    let pixels = decode_tile(t, TILE * TILE).expect("valid tile");
                    self.fb.write_tile(t.tx as usize, t.ty as usize, &pixels);
                }
                self.completed += 1;
            }
        }
    }

    /// The viewer-steal regression: under the old single-slot server, a
    /// request from viewer B mid-transfer redirected A's remaining chunks
    /// to B — A stalled into recovery and B reassembled a torn update.
    /// With the broadcast registry, A's in-flight update reassembles
    /// intact and B gets its own complete full update.
    #[test]
    fn second_viewer_request_does_not_steal_the_first_transfer() {
        let mut net = Network::new(quiet(), MacConfig::default(), 11);
        let server = net.add_node(
            NodeConfig::at(Point::new(0.0, 0.0)),
            Box::new(VncServerApp::new(320, 240, Box::new(SlideDeck::new(60.0)))),
        );
        let a = net.add_node(
            NodeConfig::at(Point::new(4.0, 0.0)),
            Box::new(VncViewerApp::new(server, 320, 240).with_target_fps(5.0)),
        );
        // B barges in ~2 ms after A's full update started streaming (a
        // 320×240 full screen is dozens of chunks — well past 2 ms of air).
        let b = net.add_node(
            NodeConfig::at(Point::new(0.0, 4.0)),
            Box::new(ProbeViewer::new(server, SimDuration::from_millis(2), 320, 240)),
        );
        net.run_for(SimDuration::from_secs(2));
        let digest = net.app_as::<VncServerApp>(server).unwrap().screen_digest();
        let s = net.app_as::<VncServerApp>(server).unwrap();
        assert_eq!(s.viewer_count(), 2, "both viewers should be registered");
        let va = net.app_as::<VncViewerApp>(a).unwrap();
        assert_eq!(va.recoveries, 0, "A's transfer was disrupted by B's request");
        assert_eq!(va.screen_digest(), digest, "A's screen diverged");
        let vb = net.app_as::<ProbeViewer>(b).unwrap();
        assert!(vb.completed >= 1, "B never reassembled a complete update");
        assert_eq!(vb.fb.digest(), digest, "B's full update was torn");
    }

    /// Mixed sync/async send failures must leave the window accounting
    /// balanced. The old pump dropped chunks on synchronous MAC rejection
    /// while `on_send_failed` still decremented the shared window — under
    /// a tiny MAC queue plus a loss burst the counter overfilled or
    /// underflowed. Now the pump budgets against real queue space (no sync
    /// rejections from our own sends) and failures decrement exactly the
    /// owning viewer's window.
    #[test]
    fn in_flight_accounting_survives_mixed_failures() {
        use aroma_sim::faults::FaultSchedule;
        let mut net = Network::new(quiet(), MacConfig { queue_cap: 2, ..Default::default() }, 13);
        let server = net.add_node(
            NodeConfig::at(Point::new(0.0, 0.0)),
            Box::new(VncServerApp::new(160, 128, Box::new(BouncingBox::new()))),
        );
        let viewer = net.add_node(
            NodeConfig::at(Point::new(4.0, 0.0)),
            Box::new(VncViewerApp::new(server, 160, 128)),
        );
        // Continuous animation pulls keep the server mid-transfer, a
        // total-loss burst kills its in-flight chunks by retry exhaustion,
        // and finally the viewer dies for good — the server must drain the
        // remaining backlog through failures to a provably quiescent
        // state.
        let schedule = FaultSchedule::builder(3)
            .burst_loss(
                SimDuration::from_millis(400).as_nanos(),
                SimDuration::from_millis(900).as_nanos(),
                1.0,
            )
            .crash_restart(
                SimDuration::from_millis(1500).as_nanos(),
                SimDuration::from_secs(60).as_nanos(),
                viewer.0,
            )
            .build();
        net.attach_faults(&schedule);
        net.run_for(SimDuration::from_secs(4));
        let s = net.app_as::<VncServerApp>(server).unwrap();
        assert!(s.chunk_failures > 0, "no async failures were provoked");
        assert_eq!(
            s.sync_send_rejections, 0,
            "budgeted pump should never hit a synchronous MAC rejection"
        );
        assert_eq!(s.in_flight_total(), 0, "window accounting leaked");
        assert_eq!(s.queued_total(), 0, "stale chunks left queued");
    }

    /// End-to-end across the update-id wrap: ids MAX-2, MAX-1, MAX, 0, 1…
    /// must stream through without the viewer ever mistaking the wrapped
    /// id for a stale update (the reassembler keys on id *equality*, not
    /// ordering — pinned at the protocol level too).
    #[test]
    fn update_ids_wrap_through_u32_max_without_a_hiccup() {
        let mut net = Network::new(quiet(), MacConfig::default(), 17);
        let server = net.add_node(
            NodeConfig::at(Point::new(0.0, 0.0)),
            Box::new(
                VncServerApp::new(320, 240, Box::new(BouncingBox::new()))
                    .with_first_update_id(u32::MAX - 2),
            ),
        );
        let viewer = net.add_node(
            NodeConfig::at(Point::new(4.0, 0.0)),
            Box::new(VncViewerApp::new(server, 320, 240)),
        );
        net.run_for(SimDuration::from_secs(3));
        let s = net.app_as::<VncServerApp>(server).unwrap();
        assert!(
            s.encodes > 3,
            "only {} encodes — the id counter never crossed the wrap",
            s.encodes
        );
        let v = net.app_as::<VncViewerApp>(viewer).unwrap();
        assert!(v.updates_completed > 5);
        assert_eq!(v.recoveries, 0, "the id wrap broke reassembly");
    }

    /// Broadcast fan-out: several viewers pull the same static screen, the
    /// server answers every one from a handful of shared encodings, and
    /// all screens converge. `encodes` staying flat while `updates_sent`
    /// scales with the audience is the encode-once invariant.
    #[test]
    fn broadcast_fans_out_with_shared_encodings() {
        let mut net = Network::new(quiet(), MacConfig::default(), 19);
        let server = net.add_node(
            NodeConfig::at(Point::new(0.0, 0.0)),
            Box::new(VncServerApp::new(320, 240, Box::new(SlideDeck::new(60.0)))),
        );
        let viewers: Vec<NodeId> = (0..6)
            .map(|i| {
                let angle = i as f64;
                net.add_node(
                    NodeConfig::at(Point::new(3.0 * angle.cos(), 3.0 * angle.sin())),
                    Box::new(VncViewerApp::new(server, 320, 240).with_target_fps(4.0)),
                )
            })
            .collect();
        net.run_for(SimDuration::from_secs(4));
        let digest = net.app_as::<VncServerApp>(server).unwrap().screen_digest();
        let s = net.app_as::<VncServerApp>(server).unwrap();
        assert_eq!(s.viewer_count(), 6);
        assert!(s.updates_sent > 50, "only {} updates served", s.updates_sent);
        // One full encode + one empty incremental encode (plus slack for
        // request-time staggering) serve the entire audience.
        assert!(
            s.encodes <= 6,
            "{} encodes for {} serves — fan-out is re-encoding per viewer",
            s.encodes,
            s.updates_sent
        );
        assert!(s.encode_cache_hits > s.encodes, "cache never took over");
        let (hits, misses) = s.pool_stats();
        assert!(hits > misses, "buffer pool never reached steady state");
        for &vid in &viewers {
            let v = net.app_as::<VncViewerApp>(vid).unwrap();
            assert!(v.updates_completed >= 1);
            assert_eq!(v.screen_digest(), digest, "viewer {vid:?} diverged");
        }
    }
}
