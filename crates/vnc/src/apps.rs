//! The VNC roles as network applications.
//!
//! [`VncServerApp`] plays the presenter's laptop: it renders the current
//! screen on demand, diffs it against what it last sent, and streams the
//! changed tiles. [`VncViewerApp`] plays the Aroma Adapter driving the
//! projector: it pulls updates as fast as it can (optionally capped to a
//! target frame rate), reassembles them, and applies them to its local
//! framebuffer. Achieved frame rate, frame latency and bytes on the air are
//! the E1 observables.

use crate::encoding::{coarsen_pixels, decode_tile, encode_tile, read_tile_stream, write_tile_stream};
use crate::framebuffer::{Framebuffer, TILE};
use crate::protocol::{chunk_update, PushResult, Reassembler, VncMsg};
use crate::workloads::ScreenSource;
use aroma_net::{Address, NetApp, NetCtx, NodeId};
use aroma_sim::stats::Summary;
use aroma_sim::telemetry::{Layer, Recorder};
use aroma_sim::{SimDuration, SimTime};
use bytes::Bytes;
use std::collections::VecDeque;
use std::time::Instant;

/// How many chunks the server keeps in the MAC queue at once.
const SEND_WINDOW: usize = 8;

const T_STALL: u64 = 1;
const T_NEXT_REQUEST: u64 = 2;
const T_RECONNECT: u64 = 3;

/// Viewer-side stall timeout before re-requesting a full update.
pub const STALL_TIMEOUT: SimDuration = SimDuration::from_secs(2);
/// Consecutive loss recoveries that flip the viewer into degraded mode
/// (halved target fps, coarse tiles). Consecutive — a single gap on a
/// lossy-but-live link never degrades, because completions reset the count.
pub const DEGRADE_AFTER: u32 = 3;
/// Consecutive clean updates that restore full quality.
pub const RECOVER_AFTER: u32 = 5;
/// Base pause before a repeated reconnect attempt (doubles per failure).
pub const RECONNECT_BASE: SimDuration = SimDuration::from_millis(500);
/// Reconnect backoff cap: pauses never exceed `RECONNECT_BASE << 3` = 4 s.
pub const MAX_RECONNECT_SHIFT: u32 = 3;

/// The screen server (the presenter's laptop).
pub struct VncServerApp {
    fb: Framebuffer,
    source: Box<dyn ScreenSource>,
    /// Tile hashes of the screen as last sent (None = nothing sent yet).
    last_sent: Option<Vec<u64>>,
    /// The last update was served coarse. A fidelity switch in either
    /// direction forces a full update, so a viewer leaving degraded mode
    /// gets every tile back at full colour depth.
    last_sent_coarse: bool,
    next_update_id: u32,
    outgoing: VecDeque<Bytes>,
    in_flight: usize,
    viewer: Option<NodeId>,
    /// Updates served.
    pub updates_sent: u64,
    /// Tiles encoded and sent across all updates.
    pub tiles_sent: u64,
    /// Tile-stream bytes sent (before MAC overhead).
    pub stream_bytes_sent: u64,
    /// Chunks that failed at the MAC (retry exhaustion).
    pub chunk_failures: u64,
    /// Updates served in degraded (coarse) mode.
    pub coarse_updates_sent: u64,
}

impl VncServerApp {
    /// Server for a `width`×`height` screen rendered by `source`.
    pub fn new(width: usize, height: usize, source: Box<dyn ScreenSource>) -> Self {
        VncServerApp {
            fb: Framebuffer::new(width, height),
            source,
            last_sent: None,
            last_sent_coarse: false,
            next_update_id: 0,
            outgoing: VecDeque::new(),
            in_flight: 0,
            viewer: None,
            updates_sent: 0,
            tiles_sent: 0,
            stream_bytes_sent: 0,
            chunk_failures: 0,
            coarse_updates_sent: 0,
        }
    }

    /// The server's current screen digest (tests compare with the viewer).
    pub fn screen_digest(&self) -> u64 {
        self.fb.digest()
    }

    fn serve_update(&mut self, ctx: &mut NetCtx<'_>, incremental: bool, coarse: bool) {
        // Pipeline stage timing is wall clock: in a discrete-event world the
        // compute stages (render/encode/chunk) occupy zero simulated time,
        // so their cost only shows up in the self-profiling section.
        let profiling = ctx.telemetry().enabled();
        // lint:allow(sim-wall-clock): render-stage profile timing feeds only Snapshot's profile section, which deterministic_eq excludes (pinned by traced_profile_never_reaches_deterministic_sections)
        let t0 = profiling.then(Instant::now);
        self.source.render(ctx.now(), &mut self.fb);
        if let Some(t) = t0 {
            ctx.telemetry()
                .profile("vnc.render", t.elapsed().as_nanos() as u64);
        }

        // lint:allow(sim-wall-clock): encode-stage profile timing, same profile-only path as above
        let t0 = profiling.then(Instant::now);
        // An incremental diff is only valid against content of the *same*
        // fidelity; switching between coarse and full forces a full update.
        let same_mode = coarse == self.last_sent_coarse;
        let dirty: Vec<usize> = match (&self.last_sent, incremental && same_mode) {
            (Some(prev), true) => self.fb.dirty_tiles(prev),
            _ => (0..self.fb.tile_count()).collect(),
        };
        let tx_count = self.fb.tiles_x();
        let mut buf = vec![0u16; TILE * TILE];
        let tiles: Vec<_> = dirty
            .iter()
            .map(|&idx| {
                let (tx, ty) = (idx % tx_count, idx / tx_count);
                self.fb.read_tile(tx, ty, &mut buf);
                if coarse {
                    coarsen_pixels(&mut buf);
                }
                encode_tile(tx as u16, ty as u16, &buf)
            })
            .collect();
        let stream = write_tile_stream(&tiles);
        if let Some(t) = t0 {
            ctx.telemetry()
                .profile("vnc.encode", t.elapsed().as_nanos() as u64);
        }
        self.last_sent = Some(self.fb.tile_hashes());
        self.last_sent_coarse = coarse;
        self.updates_sent += 1;
        if coarse {
            self.coarse_updates_sent += 1;
        }
        self.tiles_sent += tiles.len() as u64;
        self.stream_bytes_sent += stream.len() as u64;
        let id = self.next_update_id;
        self.next_update_id = self.next_update_id.wrapping_add(1);

        // lint:allow(sim-wall-clock): chunk-stage profile timing, same profile-only path as above
        let t0 = profiling.then(Instant::now);
        let stream_len = stream.len();
        let mut chunks = 0i64;
        for chunk in chunk_update(id, stream) {
            self.outgoing.push_back(chunk.encode());
            chunks += 1;
        }
        if let Some(t) = t0 {
            ctx.telemetry()
                .profile("vnc.chunk", t.elapsed().as_nanos() as u64);
        }
        let now_ns = ctx.now().as_nanos();
        let rec = ctx.telemetry();
        rec.count("vnc.updates_served", 1);
        rec.observe("vnc.update_bytes", stream_len as f64);
        rec.event(
            now_ns,
            Layer::Resource,
            "vnc.update.serve",
            0,
            tiles.len() as i64,
            chunks,
        );
        self.pump(ctx);
    }

    fn pump(&mut self, ctx: &mut NetCtx<'_>) {
        let Some(viewer) = self.viewer else { return };
        while self.in_flight < SEND_WINDOW {
            let Some(chunk) = self.outgoing.pop_front() else {
                break;
            };
            if ctx.send(Address::Node(viewer), chunk) {
                self.in_flight += 1;
            } else {
                // MAC queue full despite the window: drop and count; the
                // viewer's stall timer recovers.
                self.chunk_failures += 1;
            }
        }
    }
}

impl NetApp for VncServerApp {
    fn on_packet(&mut self, ctx: &mut NetCtx<'_>, from: NodeId, payload: &Bytes) {
        let Ok(VncMsg::UpdateRequest {
            incremental,
            coarse,
        }) = VncMsg::decode(payload.clone())
        else {
            return;
        };
        self.viewer = Some(from);
        self.serve_update(ctx, incremental, coarse);
    }

    fn on_sent(&mut self, ctx: &mut NetCtx<'_>, _to: Address) {
        self.in_flight = self.in_flight.saturating_sub(1);
        self.pump(ctx);
    }

    fn on_send_failed(&mut self, ctx: &mut NetCtx<'_>, _to: NodeId, _payload: &Bytes) {
        self.chunk_failures += 1;
        self.in_flight = self.in_flight.saturating_sub(1);
        self.pump(ctx);
    }

    /// A crash drops the send pipeline and the diff baseline: the restarted
    /// server serves a full update to whoever asks next.
    fn on_crash(&mut self, _ctx: &mut NetCtx<'_>) {
        self.last_sent = None;
        self.last_sent_coarse = false;
        self.outgoing.clear();
        self.in_flight = 0;
        self.viewer = None;
    }
}

/// The screen viewer (the Aroma Adapter + projector).
pub struct VncViewerApp {
    /// The server to pull from.
    pub server: NodeId,
    fb: Framebuffer,
    reassembler: Reassembler,
    request_sent_at: Option<SimTime>,
    /// Last instant a chunk of the pending update arrived (stall detection
    /// must not kill a transfer that is merely *slow*).
    last_progress_at: Option<SimTime>,
    /// An update request is outstanding (gates the stall watchdog).
    awaiting_update: bool,
    /// Cap on request rate (None = pull as fast as updates complete).
    pub target_fps: Option<f64>,
    /// Completed updates (including empty ones).
    pub updates_completed: u64,
    /// Completed updates that contained at least one tile.
    pub frames_with_content: u64,
    /// Tile-stream bytes received.
    pub stream_bytes_received: u64,
    /// Per-update latency (request → fully applied), seconds.
    pub update_latency: Summary,
    /// Full (non-incremental) re-requests triggered by loss/stall.
    pub recoveries: u64,
    /// Degraded mode active: requests are coarse and the fps cap is halved.
    pub degraded: bool,
    /// Times the viewer entered degraded mode.
    pub degradations: u64,
    /// Times it climbed back to full quality.
    pub quality_recoveries: u64,
    /// Loss recoveries since the last completed update (drives both the
    /// degrade decision and the reconnect backoff).
    consecutive_recoveries: u32,
    /// Clean completions since entering degraded mode.
    clean_completes: u32,
    /// The incremental flag to use when the reconnect pause elapses.
    pending_incremental: bool,
    first_update_done: bool,
}

impl VncViewerApp {
    /// Viewer pulling a `width`×`height` screen from `server`.
    pub fn new(server: NodeId, width: usize, height: usize) -> Self {
        VncViewerApp {
            server,
            fb: Framebuffer::new(width, height),
            reassembler: Reassembler::new(),
            request_sent_at: None,
            last_progress_at: None,
            awaiting_update: false,
            target_fps: None,
            updates_completed: 0,
            frames_with_content: 0,
            stream_bytes_received: 0,
            update_latency: Summary::new(),
            recoveries: 0,
            degraded: false,
            degradations: 0,
            quality_recoveries: 0,
            consecutive_recoveries: 0,
            clean_completes: 0,
            pending_incremental: false,
            first_update_done: false,
        }
    }

    /// Cap the pull rate at `fps` updates per second.
    pub fn with_target_fps(mut self, fps: f64) -> Self {
        assert!(fps > 0.0);
        self.target_fps = Some(fps);
        self
    }

    /// The viewer's screen digest (tests compare with the server).
    pub fn screen_digest(&self) -> u64 {
        self.fb.digest()
    }

    /// Achieved update rate over `horizon`.
    pub fn achieved_fps(&self, horizon: SimDuration) -> f64 {
        let secs = horizon.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.updates_completed as f64 / secs
        }
    }

    fn request(&mut self, ctx: &mut NetCtx<'_>, incremental: bool) {
        self.request_sent_at = Some(ctx.now());
        self.last_progress_at = Some(ctx.now());
        self.awaiting_update = true;
        self.reassembler.reset();
        let rec = ctx.telemetry();
        rec.count("vnc.requests", 1);
        rec.event(
            self.request_sent_at.unwrap().as_nanos(),
            Layer::Resource,
            "vnc.request",
            self.server.0,
            incremental as i64,
            self.degraded as i64,
        );
        ctx.send(
            Address::Node(self.server),
            VncMsg::UpdateRequest {
                incremental,
                coarse: self.degraded,
            }
            .encode(),
        );
        ctx.set_timer(STALL_TIMEOUT, T_STALL);
    }

    fn schedule_next_request(&mut self, ctx: &mut NetCtx<'_>) {
        match self.target_fps {
            None => self.request(ctx, true),
            Some(fps) => {
                // Degraded mode halves the pull rate: fewer, smaller
                // updates while the link is bad.
                let fps = if self.degraded { fps * 0.5 } else { fps };
                let interval = SimDuration::from_secs_f64(1.0 / fps);
                let since = self
                    .request_sent_at
                    .map(|t| ctx.now().saturating_since(t))
                    .unwrap_or(SimDuration::ZERO);
                if since >= interval {
                    self.request(ctx, true);
                } else {
                    ctx.set_timer(interval - since, T_NEXT_REQUEST);
                }
            }
        }
    }

    fn apply_stream(&mut self, stream: Bytes) -> bool {
        self.stream_bytes_received += stream.len() as u64;
        let Ok(tiles) = read_tile_stream(stream) else {
            return false;
        };
        let had_content = !tiles.is_empty();
        for t in &tiles {
            let Ok(pixels) = decode_tile(t, TILE * TILE) else {
                return false;
            };
            self.fb.write_tile(t.tx as usize, t.ty as usize, &pixels);
        }
        if had_content {
            self.frames_with_content += 1;
        }
        true
    }

    /// One loss recovery: count it, maybe degrade, and either retry
    /// immediately (first failure — the original behaviour) or pause with
    /// exponential backoff so a dead server is probed, not hammered.
    fn recover(&mut self, ctx: &mut NetCtx<'_>, incremental: bool) {
        self.recoveries += 1;
        self.consecutive_recoveries += 1;
        self.clean_completes = 0;
        if !self.degraded && self.consecutive_recoveries >= DEGRADE_AFTER {
            self.degraded = true;
            self.degradations += 1;
            let now_ns = ctx.now().as_nanos();
            let rec = ctx.telemetry();
            rec.count("vnc.degrade", 1);
            rec.event(
                now_ns,
                Layer::Resource,
                "vnc.degrade",
                self.server.0,
                self.consecutive_recoveries as i64,
                0,
            );
        }
        if self.consecutive_recoveries <= 1 {
            self.request(ctx, incremental);
        } else {
            let shift = (self.consecutive_recoveries - 2).min(MAX_RECONNECT_SHIFT);
            let delay = SimDuration::from_nanos(RECONNECT_BASE.as_nanos() << shift);
            self.pending_incremental = incremental;
            self.awaiting_update = false;
            ctx.set_timer(delay, T_RECONNECT);
        }
    }

    /// A clean completion: reset the failure streak and, after
    /// [`RECOVER_AFTER`] of them in degraded mode, restore full quality.
    fn note_clean_complete(&mut self, ctx: &mut NetCtx<'_>) {
        self.consecutive_recoveries = 0;
        if self.degraded {
            self.clean_completes += 1;
            if self.clean_completes >= RECOVER_AFTER {
                self.degraded = false;
                self.clean_completes = 0;
                self.quality_recoveries += 1;
                let now_ns = ctx.now().as_nanos();
                let rec = ctx.telemetry();
                rec.count("vnc.recover", 1);
                rec.event(now_ns, Layer::Resource, "vnc.recover", self.server.0, 0, 0);
            }
        }
    }
}

impl NetApp for VncViewerApp {
    fn on_start(&mut self, ctx: &mut NetCtx<'_>) {
        self.request(ctx, false);
    }

    fn on_packet(&mut self, ctx: &mut NetCtx<'_>, from: NodeId, payload: &Bytes) {
        if from != self.server {
            return;
        }
        let Ok(VncMsg::UpdateChunk {
            update_id,
            seq,
            last,
            payload,
        }) = VncMsg::decode(payload.clone())
        else {
            return;
        };
        self.last_progress_at = Some(ctx.now());
        match self.reassembler.push(update_id, seq, last, &payload) {
            PushResult::Incomplete => {}
            PushResult::Gap => {
                // Lost a chunk: resynchronise with a full update.
                ctx.telemetry().count("vnc.gaps", 1);
                self.recover(ctx, false);
            }
            PushResult::Complete(stream) => {
                self.awaiting_update = false;
                if let Some(at) = self.request_sent_at {
                    let latency = ctx.now().saturating_since(at);
                    self.update_latency.record(latency.as_secs_f64());
                    let now_ns = ctx.now().as_nanos();
                    let rec = ctx.telemetry();
                    rec.observe("vnc.update_latency_s", latency.as_secs_f64());
                    rec.event(
                        now_ns,
                        Layer::Physical,
                        "vnc.update.deliver",
                        self.server.0,
                        stream.len() as i64,
                        latency.as_nanos() as i64,
                    );
                }
                if self.apply_stream(stream) {
                    self.updates_completed += 1;
                    self.first_update_done = true;
                    self.note_clean_complete(ctx);
                    self.schedule_next_request(ctx);
                } else {
                    self.recover(ctx, false);
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut NetCtx<'_>, token: u64) {
        match token {
            T_NEXT_REQUEST => self.request(ctx, true),
            T_STALL => {
                // Recover only when nothing has arrived for a full stall
                // window — a slow-but-progressing transfer (a big frame on
                // a thin link) must be left alone.
                if !self.awaiting_update {
                    return; // the watched update already completed
                }
                if let Some(progress) = self.last_progress_at {
                    let idle = ctx.now().saturating_since(progress);
                    if idle >= STALL_TIMEOUT {
                        self.recover(ctx, !self.first_update_done);
                    } else {
                        ctx.set_timer(STALL_TIMEOUT - idle, T_STALL);
                    }
                }
            }
            T_RECONNECT => {
                // Skip if a late completion ended the failure streak (a
                // normal request cycle is running again), or a request is
                // already in flight.
                if self.consecutive_recoveries == 0 || self.awaiting_update {
                    return;
                }
                self.request(ctx, self.pending_incremental);
            }
            _ => {}
        }
    }

    /// An adapter crash forgets the transfer in progress; the restart's
    /// `on_start` re-requests the full screen from scratch.
    fn on_crash(&mut self, _ctx: &mut NetCtx<'_>) {
        self.reassembler.reset();
        self.awaiting_update = false;
        self.request_sent_at = None;
        self.last_progress_at = None;
        self.consecutive_recoveries = 0;
        self.clean_completes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::{BouncingBox, SlideDeck};
    use aroma_env::radio::RadioEnvironment;
    use aroma_env::space::Point;
    use aroma_net::{MacConfig, Network, NodeConfig};

    fn quiet() -> RadioEnvironment {
        RadioEnvironment {
            shadowing_sigma_db: 0.0,
            ..Default::default()
        }
    }

    fn pair(
        source: Box<dyn ScreenSource>,
        w: usize,
        h: usize,
        seed: u64,
    ) -> (Network, NodeId, NodeId) {
        let mut net = Network::new(quiet(), MacConfig::default(), seed);
        let server = net.add_node(
            NodeConfig::at(Point::new(0.0, 0.0)),
            Box::new(VncServerApp::new(w, h, source)),
        );
        let viewer = net.add_node(
            NodeConfig::at(Point::new(4.0, 0.0)),
            Box::new(VncViewerApp::new(server, w, h)),
        );
        (net, server, viewer)
    }

    #[test]
    fn traced_profile_never_reaches_deterministic_sections() {
        // The three `Instant::now` sites in serve_update are waived with
        // `lint:allow(sim-wall-clock)` on the claim that their nanos feed
        // ONLY the snapshot's profile section, which deterministic_eq
        // excludes. Pin that claim: two traced runs of the same seed must
        // compare deterministic_eq even though both recorded real (and
        // almost surely different) wall-clock stage timings.
        use aroma_sim::telemetry::TelemetryConfig;
        let run = || {
            let (mut net, _server, _viewer) = pair(Box::new(BouncingBox::new()), 320, 240, 7);
            net.attach_telemetry(TelemetryConfig::default());
            net.run_for(SimDuration::from_secs(2));
            net.telemetry_snapshot().expect("telemetry attached")
        };
        let (a, b) = (run(), run());
        for stage in ["vnc.render", "vnc.encode", "vnc.chunk"] {
            assert!(
                a.profile.iter().any(|p| p.name == stage && p.calls > 0),
                "profiling stage {stage} never recorded — the waived wall-clock \
                 sites are not exercising the profile-only path this test pins"
            );
        }
        assert!(
            a.deterministic_eq(&b),
            "wall-clock profiling leaked into a deterministic_eq-compared section"
        );
    }

    #[test]
    fn initial_full_update_transfers_screen() {
        let (mut net, server, viewer) = pair(Box::new(SlideDeck::new(10.0)), 320, 240, 1);
        net.run_for(SimDuration::from_secs(2));
        let s = net.app_as::<VncServerApp>(server).unwrap();
        let v = net.app_as::<VncViewerApp>(viewer).unwrap();
        assert!(v.updates_completed >= 1);
        assert_eq!(
            s.screen_digest(),
            v.screen_digest(),
            "viewer screen diverged from server"
        );
        assert_eq!(v.recoveries, 0);
    }

    #[test]
    fn static_screen_sends_tiny_incremental_updates() {
        let (mut net, server, viewer) = pair(Box::new(SlideDeck::new(60.0)), 320, 240, 2);
        net.run_for(SimDuration::from_secs(3));
        let s = net.app_as::<VncServerApp>(server).unwrap();
        let v = net.app_as::<VncViewerApp>(viewer).unwrap();
        // Many updates completed, but only the first carried tiles.
        assert!(v.updates_completed > 10);
        assert_eq!(v.frames_with_content, 1, "static screen resent content");
        // Stream bytes ≈ one full screen; later updates are headers only.
        assert!(s.stream_bytes_sent < 320 * 240 * 2 / 4, "slides should compress");
    }

    #[test]
    fn animation_keeps_sending_content() {
        let (mut net, _server, viewer) = pair(Box::new(BouncingBox::new()), 320, 240, 3);
        net.run_for(SimDuration::from_secs(3));
        let v = net.app_as::<VncViewerApp>(viewer).unwrap();
        assert!(v.updates_completed > 5);
        // Nearly every update of a moving box has content.
        assert!(
            v.frames_with_content as f64 >= v.updates_completed as f64 * 0.8,
            "content {} of {}",
            v.frames_with_content,
            v.updates_completed
        );
    }

    #[test]
    fn viewer_tracks_moving_screen_to_convergence() {
        // Run, then freeze the source by letting time settle: with a slide
        // deck, after the final slide change the screens must converge.
        let (mut net, server, viewer) = pair(Box::new(SlideDeck::new(1.0)), 320, 240, 4);
        net.run_for(SimDuration::from_secs(5));
        // Settle within the current slide (period 1 s: run a bit more and
        // compare right after an update completes).
        net.run_for(SimDuration::from_millis(400));
        let s = net.app_as::<VncServerApp>(server).unwrap();
        let v = net.app_as::<VncViewerApp>(viewer).unwrap();
        assert_eq!(s.screen_digest(), v.screen_digest());
    }

    #[test]
    fn target_fps_caps_request_rate() {
        let mut net = Network::new(quiet(), MacConfig::default(), 5);
        let server = net.add_node(
            NodeConfig::at(Point::new(0.0, 0.0)),
            Box::new(VncServerApp::new(320, 240, Box::new(SlideDeck::new(60.0)))),
        );
        let viewer = net.add_node(
            NodeConfig::at(Point::new(4.0, 0.0)),
            Box::new(VncViewerApp::new(server, 320, 240).with_target_fps(5.0)),
        );
        net.run_for(SimDuration::from_secs(4));
        let v = net.app_as::<VncViewerApp>(viewer).unwrap();
        let fps = v.achieved_fps(SimDuration::from_secs(4));
        assert!(fps <= 5.5, "fps {fps} exceeds the 5 fps cap");
        assert!(fps >= 3.0, "fps {fps} far below the cap on an idle link");
    }

    #[test]
    fn server_outage_degrades_then_recovers_full_quality() {
        use aroma_sim::faults::FaultSchedule;

        let mut net = Network::new(quiet(), MacConfig::default(), 7);
        let server = net.add_node(
            NodeConfig::at(Point::new(0.0, 0.0)),
            Box::new(VncServerApp::new(320, 240, Box::new(SlideDeck::new(60.0)))),
        );
        let viewer = net.add_node(
            NodeConfig::at(Point::new(4.0, 0.0)),
            Box::new(VncViewerApp::new(server, 320, 240).with_target_fps(10.0)),
        );
        // Server dies at 3 s and stays dead long enough for the viewer's
        // stall→reconnect streak to cross DEGRADE_AFTER, then comes back.
        let schedule = FaultSchedule::builder(99)
            .crash_restart(
                SimDuration::from_secs(3).as_nanos(),
                SimDuration::from_secs(11).as_nanos(),
                server.0,
            )
            .build();
        net.attach_faults(&schedule);
        net.run_for(SimDuration::from_secs(25));

        let s = net.app_as::<VncServerApp>(server).unwrap();
        let v = net.app_as::<VncViewerApp>(viewer).unwrap();
        assert!(v.degradations >= 1, "outage never degraded the viewer");
        assert!(s.coarse_updates_sent >= 1, "no coarse update was served");
        assert!(
            v.quality_recoveries >= 1 && !v.degraded,
            "viewer never climbed back to full quality"
        );
        // The post-recovery full update restores exact fidelity.
        assert_eq!(s.screen_digest(), v.screen_digest());
    }

    #[test]
    fn update_latency_is_recorded() {
        let (mut net, _server, viewer) = pair(Box::new(SlideDeck::new(10.0)), 320, 240, 6);
        net.run_for(SimDuration::from_secs(2));
        let v = net.app_as::<VncViewerApp>(viewer).unwrap();
        assert!(v.update_latency.count() >= 1);
        // The first (full) update of a 320×240 screen at ~11 Mbps with RLE
        // slides is a handful of chunks: tens of ms at most.
        assert!(v.update_latency.max().unwrap() < 0.5);
    }
}
