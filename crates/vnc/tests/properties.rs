//! Property-based tests for the VNC substrate codecs and framebuffer.

use aroma_vnc::encoding::{
    decode_tile, encode_tile, read_tile_stream, rle_decode, rle_encode, write_tile_stream,
};
use aroma_vnc::protocol::{chunk_update, PushResult, Reassembler, VncMsg};
use aroma_vnc::{Framebuffer, TILE};
use bytes::Bytes;
use proptest::prelude::*;

fn arb_tile_pixels() -> impl Strategy<Value = Vec<u16>> {
    prop_oneof![
        // Flat-ish content (RLE-friendly).
        (any::<u16>(), prop::collection::vec(0usize..TILE * TILE, 0..8)).prop_map(|(base, hits)| {
            let mut px = vec![base; TILE * TILE];
            for (i, h) in hits.into_iter().enumerate() {
                px[h] = base.wrapping_add(i as u16 + 1);
            }
            px
        }),
        // Arbitrary content.
        prop::collection::vec(any::<u16>(), TILE * TILE),
    ]
}

proptest! {
    /// RLE round-trips any pixel vector of tile size.
    #[test]
    fn rle_round_trip(px in arb_tile_pixels()) {
        let enc = rle_encode(&px);
        let dec = rle_decode(enc, px.len()).unwrap();
        prop_assert_eq!(dec, px);
    }

    /// RLE never exceeds 3 bytes per pixel and never loses a run.
    #[test]
    fn rle_size_bound(px in arb_tile_pixels()) {
        let enc = rle_encode(&px);
        prop_assert!(enc.len() <= px.len() * 3);
        prop_assert!(!enc.is_empty());
    }

    /// Best-of tile encoding round-trips and never exceeds raw size.
    #[test]
    fn tile_encoding_round_trip(px in arb_tile_pixels(), tx in 0u16..64, ty in 0u16..64) {
        let t = encode_tile(tx, ty, &px);
        prop_assert!(t.data.len() <= px.len() * 2, "encoder chose something bigger than raw");
        let dec = decode_tile(&t, px.len()).unwrap();
        prop_assert_eq!(dec, px);
        prop_assert_eq!((t.tx, t.ty), (tx, ty));
    }

    /// Tile streams round-trip any set of encoded tiles.
    #[test]
    fn tile_stream_round_trip(tiles in prop::collection::vec(arb_tile_pixels(), 0..6)) {
        let encoded: Vec<_> = tiles
            .iter()
            .enumerate()
            .map(|(i, px)| encode_tile(i as u16, (i * 3) as u16, px))
            .collect();
        let stream = write_tile_stream(&encoded);
        let parsed = read_tile_stream(stream).unwrap();
        prop_assert_eq!(parsed, encoded);
    }

    /// Chunking + reassembly is the identity for any stream length,
    /// including empty and exact-multiple-of-chunk sizes.
    #[test]
    fn chunk_reassemble_identity(len in 0usize..8000, update_id in any::<u32>()) {
        let stream = Bytes::from((0..len).map(|i| i as u8).collect::<Vec<_>>());
        let chunks = chunk_update(update_id, stream.clone());
        let mut r = Reassembler::new();
        let mut out = None;
        for c in &chunks {
            let VncMsg::UpdateChunk { update_id, seq, last, payload } = c else {
                panic!("chunk_update must emit chunks");
            };
            match r.push(*update_id, *seq, *last, payload) {
                PushResult::Complete(b) => out = Some(b),
                PushResult::Incomplete => {},
                PushResult::Gap => prop_assert!(false, "gap on in-order delivery"),
            }
        }
        prop_assert_eq!(out.expect("last chunk completes"), stream);
    }

    /// Dropping any single chunk of a multi-chunk update produces a Gap (or
    /// an incomplete update if the dropped chunk was the last).
    #[test]
    fn chunk_loss_detected(len in 3001usize..9000, drop_idx in 0usize..6) {
        let stream = Bytes::from(vec![7u8; len]);
        let chunks = chunk_update(1, stream);
        prop_assume!(chunks.len() >= 2);
        let drop_idx = drop_idx % chunks.len();
        let mut r = Reassembler::new();
        let mut completed = false;
        let mut gap = false;
        for (i, c) in chunks.iter().enumerate() {
            if i == drop_idx {
                continue;
            }
            let VncMsg::UpdateChunk { update_id, seq, last, payload } = c else { unreachable!() };
            match r.push(*update_id, *seq, *last, payload) {
                PushResult::Complete(_) => completed = true,
                PushResult::Gap => gap = true,
                PushResult::Incomplete => {}
            }
        }
        prop_assert!(!completed, "an update with a lost chunk must never complete");
        if drop_idx < chunks.len() - 1 {
            prop_assert!(gap, "an interior loss must be flagged");
        }
    }

    /// VNC messages round-trip the wire codec.
    #[test]
    fn vnc_msg_round_trip(update_id in any::<u32>(), seq in any::<u16>(), last in any::<bool>(), payload in prop::collection::vec(any::<u8>(), 0..200)) {
        let m = VncMsg::UpdateChunk { update_id, seq, last, payload: Bytes::from(payload) };
        prop_assert_eq!(VncMsg::decode(m.encode()).unwrap(), m);
    }

    /// Framebuffer tile write/read round-trips at any grid position.
    #[test]
    fn framebuffer_tile_round_trip(px in prop::collection::vec(any::<u16>(), TILE * TILE), tx in 0usize..10, ty in 0usize..8) {
        let mut fb = Framebuffer::new(160, 128);
        fb.write_tile(tx, ty, &px);
        let mut out = vec![0u16; TILE * TILE];
        fb.read_tile(tx, ty, &mut out);
        prop_assert_eq!(out, px);
    }

    /// dirty_tiles is exactly the set of tiles whose hash changed.
    #[test]
    fn dirty_tiles_soundness(writes in prop::collection::vec((0usize..10, 0usize..8, any::<u16>()), 1..12)) {
        let mut fb = Framebuffer::new(160, 128);
        let before = fb.tile_hashes();
        let mut touched = std::collections::BTreeSet::new();
        for (tx, ty, v) in writes {
            // Write a single pixel inside the tile.
            fb.set(tx * TILE + 3, ty * TILE + 5, v);
            if v != 0 {
                touched.insert(ty * fb.tiles_x() + tx);
            }
        }
        let dirty: std::collections::BTreeSet<usize> = fb.dirty_tiles(&before).into_iter().collect();
        // Every dirty tile was touched (soundness). (A touched tile may be
        // clean if the written value matched, or two writes cancelled.)
        for d in &dirty {
            prop_assert!(touched.contains(d), "tile {d} dirty but never written");
        }
    }
}
