//! Deterministic fault-injection plane for the Aroma/LPC stack.
//!
//! The paper's Resource/Abstract cross-relations ("must not be frustrated
//! by", "must be consistent with") are only testable when the substrate
//! actually fails. This crate defines the *description* of those failures:
//! a seed-stable [`FaultSchedule`] of timestamped [`FaultOp`]s that the
//! network simulator consumes and turns into injected faults — node
//! crash/restart, channel partitions, burst frame loss beyond the PHY
//! model, clock skew on a node's timers, and application process kills.
//!
//! Like `aroma-telemetry`, this is deliberately a std-only leaf crate:
//! `aroma-sim` re-exports it as `aroma_sim::faults`, so it cannot depend on
//! the simulation core. Times are raw nanoseconds since simulation start,
//! nodes are raw `u32` indices, and node *sets* are `u64` bitmasks (the
//! simulator asserts node counts fit). `SimTime`/`SimDuration`/`SimRng`
//! builder glue lives in `aroma-sim`.
//!
//! Determinism contract: a schedule is a plain sorted list plus its own
//! `seed`. The injector derives every random decision (burst-loss coin
//! flips) from that seed alone, never from the simulation's main RNG, so
//! attaching an *empty* schedule is guaranteed not to perturb a run.

/// Bitmask of a set of node indices (node `i` ⇒ bit `i`). The simulator
/// supports fault masks over the first 64 nodes, which covers every
/// scenario in this repository.
pub fn node_mask(nodes: &[u32]) -> u64 {
    let mut m = 0u64;
    for &n in nodes {
        assert!(n < 64, "fault masks cover node indices 0..64, got {n}");
        m |= 1 << n;
    }
    m
}

/// One fault operation, applied at a scheduled instant.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultOp {
    /// Power-fail a node: radio silenced, MAC queue and in-flight exchanges
    /// dropped, all pending app timers cancelled. With `drop_state` the
    /// application's in-memory state is dropped too (the app is told via
    /// `on_crash` and must rebuild from scratch on restart); without it the
    /// state survives as a "snapshot restore" — only the timers are lost.
    NodeDown { node: u32, drop_state: bool },
    /// Restore a downed node. The app is told via `on_restart` (which by
    /// default re-runs `on_start`).
    NodeUp { node: u32 },
    /// Open a bidirectional partition: frames between the `a` set and the
    /// `b` set (bitmasks) are silently lost at the receiver. A node-vs-rest
    /// mask pair models a channel blackout around one node.
    PartitionStart { a: u64, b: u64 },
    /// Heal the most recently opened, still-active partition.
    PartitionEnd,
    /// Begin a burst-loss window: every otherwise-successful reception is
    /// additionally lost with probability `loss`, drawn from the fault
    /// plane's own RNG stream (never the simulation RNG).
    BurstStart { loss: f64 },
    /// End the current burst-loss window.
    BurstEnd,
    /// Stretch (`factor > 1`) or compress (`factor < 1`) every *subsequent*
    /// app-timer delay armed by `node`. `factor == 1.0` clears the skew.
    ClockSkew { node: u32, factor: f64 },
    /// Kill just the application process on `node`: the radio and MAC stay
    /// up, but the app's state is dropped (`on_crash`) and its timers are
    /// cancelled. Models a registrar daemon dying on a healthy host.
    ProcessKill { node: u32 },
    /// Restart a killed application process (`on_restart`).
    ProcessRestart { node: u32 },
}

impl FaultOp {
    /// Short stable name for telemetry/trace events.
    pub fn name(&self) -> &'static str {
        match self {
            FaultOp::NodeDown { .. } => "node_down",
            FaultOp::NodeUp { .. } => "node_up",
            FaultOp::PartitionStart { .. } => "partition_start",
            FaultOp::PartitionEnd => "partition_end",
            FaultOp::BurstStart { .. } => "burst_start",
            FaultOp::BurstEnd => "burst_end",
            FaultOp::ClockSkew { .. } => "clock_skew",
            FaultOp::ProcessKill { .. } => "process_kill",
            FaultOp::ProcessRestart { .. } => "process_restart",
        }
    }

    fn validate(&self) -> Result<(), String> {
        match *self {
            FaultOp::PartitionStart { a, b } => {
                if a == 0 || b == 0 {
                    return Err("partition with an empty side".into());
                }
                if a & b != 0 {
                    return Err(format!("partition sides overlap: {a:#x} & {b:#x}"));
                }
            }
            FaultOp::BurstStart { loss } if !(0.0..=1.0).contains(&loss) => {
                return Err(format!("burst loss {loss} outside [0, 1]"));
            }
            FaultOp::ClockSkew { factor, .. } if !(factor.is_finite() && factor > 0.0) => {
                return Err(format!("clock-skew factor {factor} must be finite and > 0"));
            }
            _ => {}
        }
        Ok(())
    }
}

/// A structurally invalid fault schedule, reported by
/// [`FaultScheduleBuilder::try_build`].
#[derive(Clone, Debug, PartialEq)]
pub enum ScheduleError {
    /// An individual operation failed validation (bad mask, probability,
    /// or skew factor).
    InvalidOp {
        /// Scheduled instant of the offending operation.
        t_nanos: u64,
        /// Human-readable reason.
        reason: String,
    },
    /// Two crash/kill intervals for the same node overlap: the second
    /// begins before the first has been restored. Scripted chaos scenarios
    /// should stagger faults per node; stacked downtime is almost always a
    /// scripting bug (the second down-op is a no-op and its paired restart
    /// resurrects the node early).
    OverlappingCrash {
        /// The node with overlapping downtime.
        node: u32,
        /// Start of the earlier interval (nanoseconds).
        first_down: u64,
        /// Start of the later, conflicting interval (nanoseconds).
        second_down: u64,
    },
}

impl core::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ScheduleError::InvalidOp { t_nanos, reason } => {
                write!(f, "invalid fault op at t={t_nanos}: {reason}")
            }
            ScheduleError::OverlappingCrash { node, first_down, second_down } => write!(
                f,
                "overlapping crash intervals for node {node}: \
                 down at t={second_down} while still down since t={first_down}"
            ),
        }
    }
}

impl std::error::Error for ScheduleError {}

/// A seed-stable script of faults: `(t_nanos, op)` pairs sorted by time
/// (ties keep insertion order), plus the seed for the injector's private
/// RNG stream. Build one with [`FaultSchedule::builder`].
#[derive(Clone, Debug, PartialEq)]
pub struct FaultSchedule {
    seed: u64,
    ops: Vec<(u64, FaultOp)>,
}

impl FaultSchedule {
    /// A schedule with no operations. Attaching it to a simulation must be
    /// observationally identical to not attaching the fault plane at all
    /// (enforced by proptest in `aroma-net`).
    pub fn empty(seed: u64) -> Self {
        FaultSchedule { seed, ops: Vec::new() }
    }

    /// Start building a schedule.
    pub fn builder(seed: u64) -> FaultScheduleBuilder {
        FaultScheduleBuilder { seed, ops: Vec::new() }
    }

    /// The injector RNG seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The operations, sorted by time (stable on ties).
    pub fn ops(&self) -> &[(u64, FaultOp)] {
        &self.ops
    }

    pub fn len(&self) -> usize {
        self.ops.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// Builder for [`FaultSchedule`]; `build` stably sorts by time and
/// validates every operation.
#[derive(Clone, Debug)]
pub struct FaultScheduleBuilder {
    seed: u64,
    ops: Vec<(u64, FaultOp)>,
}

impl FaultScheduleBuilder {
    /// Schedule a raw operation at `t_nanos`.
    pub fn op(mut self, t_nanos: u64, op: FaultOp) -> Self {
        self.ops.push((t_nanos, op));
        self
    }

    /// Crash `node` at `t_down` dropping app state, restore it at `t_up`.
    pub fn crash_restart(self, t_down: u64, t_up: u64, node: u32) -> Self {
        assert!(t_down < t_up, "crash at {t_down} must precede restart at {t_up}");
        self.op(t_down, FaultOp::NodeDown { node, drop_state: true })
            .op(t_up, FaultOp::NodeUp { node })
    }

    /// Power-cycle `node` keeping its app state (snapshot restore).
    pub fn power_cycle(self, t_down: u64, t_up: u64, node: u32) -> Self {
        assert!(t_down < t_up, "down at {t_down} must precede up at {t_up}");
        self.op(t_down, FaultOp::NodeDown { node, drop_state: false })
            .op(t_up, FaultOp::NodeUp { node })
    }

    /// Partition the `a` set from the `b` set over `[t0, t1)`.
    pub fn partition(self, t0: u64, t1: u64, a: u64, b: u64) -> Self {
        assert!(t0 < t1, "partition start {t0} must precede end {t1}");
        self.op(t0, FaultOp::PartitionStart { a, b })
            .op(t1, FaultOp::PartitionEnd)
    }

    /// Black out `node` from everyone else over `[t0, t1)`.
    pub fn blackout(self, t0: u64, t1: u64, node: u32, node_count: u32) -> Self {
        assert!(node < node_count && node_count <= 64);
        let a = 1u64 << node;
        let all = if node_count == 64 { u64::MAX } else { (1u64 << node_count) - 1 };
        self.partition(t0, t1, a, all & !a)
    }

    /// Burst frame loss with probability `loss` over `[t0, t1)`.
    pub fn burst_loss(self, t0: u64, t1: u64, loss: f64) -> Self {
        assert!(t0 < t1, "burst start {t0} must precede end {t1}");
        self.op(t0, FaultOp::BurstStart { loss }).op(t1, FaultOp::BurstEnd)
    }

    /// Skew `node`'s timer delays by `factor` from `t` on.
    pub fn clock_skew(self, t: u64, node: u32, factor: f64) -> Self {
        self.op(t, FaultOp::ClockSkew { node, factor })
    }

    /// Kill the app process on `node` at `t_kill`, restart it at `t_up`.
    pub fn process_kill_restart(self, t_kill: u64, t_up: u64, node: u32) -> Self {
        assert!(t_kill < t_up, "kill at {t_kill} must precede restart at {t_up}");
        self.op(t_kill, FaultOp::ProcessKill { node })
            .op(t_up, FaultOp::ProcessRestart { node })
    }

    /// Crash `node` at `t_down` and bring it back `downtime` nanoseconds
    /// later as a *snapshot restore*: the app's in-memory state survives
    /// (only timers are lost), modelling a registrar that recovers from its
    /// persisted snapshot rather than an empty table. One call scripts the
    /// whole crash/restore episode.
    pub fn crash_restore_after(self, t_down: u64, downtime: u64, node: u32) -> Self {
        assert!(downtime > 0, "crash_restore_after needs a non-zero downtime");
        self.op(t_down, FaultOp::NodeDown { node, drop_state: false })
            .op(t_down + downtime, FaultOp::NodeUp { node })
    }

    /// Validate and finish, reporting structural problems as a typed
    /// [`ScheduleError`] instead of panicking. On top of per-op validation
    /// this rejects overlapping crash intervals for the same node (a
    /// `NodeDown`/`ProcessKill` scheduled while an earlier one has not been
    /// matched by its `NodeUp`/`ProcessRestart` yet).
    pub fn try_build(mut self) -> Result<FaultSchedule, ScheduleError> {
        for (t, op) in &self.ops {
            if let Err(reason) = op.validate() {
                return Err(ScheduleError::InvalidOp { t_nanos: *t, reason });
            }
        }
        // Stable sort: ops scheduled for the same instant apply in the
        // order they were scripted.
        self.ops.sort_by_key(|&(t, _)| t);
        // Per-node downtime intervals must not overlap. Node power faults
        // and process kills share one "down since" slot per node: killing a
        // process on a powered-off host (or vice versa) is the same
        // stacked-downtime scripting bug.
        let mut down_since: std::collections::BTreeMap<u32, u64> = std::collections::BTreeMap::new();
        for &(t, op) in &self.ops {
            match op {
                FaultOp::NodeDown { node, .. } | FaultOp::ProcessKill { node } => {
                    if let Some(&first_down) = down_since.get(&node) {
                        return Err(ScheduleError::OverlappingCrash {
                            node,
                            first_down,
                            second_down: t,
                        });
                    }
                    down_since.insert(node, t);
                }
                FaultOp::NodeUp { node } | FaultOp::ProcessRestart { node } => {
                    down_since.remove(&node);
                }
                _ => {}
            }
        }
        Ok(FaultSchedule { seed: self.seed, ops: self.ops })
    }

    /// Validate and finish. Panics on an invalid operation (this is a test
    /// and experiment authoring API; bad scripts are programming errors).
    /// Unlike [`Self::try_build`] this does *not* reject overlapping crash
    /// intervals — `random_storm` deliberately stacks arbitrary faults and
    /// the injector tolerates them; use `try_build` for hand-authored
    /// scripts that should be overlap-checked.
    pub fn build(mut self) -> FaultSchedule {
        for (t, op) in &self.ops {
            if let Err(e) = op.validate() {
                panic!("invalid fault op at t={t}: {e}");
            }
        }
        // Stable sort: ops scheduled for the same instant apply in the
        // order they were scripted.
        self.ops.sort_by_key(|&(t, _)| t);
        FaultSchedule { seed: self.seed, ops: self.ops }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sorts_stably() {
        let s = FaultSchedule::builder(1)
            .op(500, FaultOp::BurstEnd)
            .op(100, FaultOp::ProcessKill { node: 0 })
            .op(500, FaultOp::PartitionEnd)
            .op(100, FaultOp::NodeUp { node: 2 })
            .build();
        let ops: Vec<_> = s.ops().iter().map(|&(t, op)| (t, op.name())).collect();
        assert_eq!(
            ops,
            vec![
                (100, "process_kill"),
                (100, "node_up"),
                (500, "burst_end"),
                (500, "partition_end"),
            ]
        );
    }

    #[test]
    fn empty_schedule_is_empty() {
        let s = FaultSchedule::empty(42);
        assert!(s.is_empty());
        assert_eq!(s.seed(), 42);
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn convenience_pairs_expand() {
        let s = FaultSchedule::builder(7)
            .crash_restart(1_000, 2_000, 3)
            .partition(10, 20, 0b01, 0b10)
            .burst_loss(5, 6, 0.5)
            .build();
        assert_eq!(s.len(), 6);
        assert_eq!(s.ops()[0], (5, FaultOp::BurstStart { loss: 0.5 }));
        assert_eq!(
            s.ops()[4],
            (1_000, FaultOp::NodeDown { node: 3, drop_state: true })
        );
    }

    #[test]
    fn blackout_masks() {
        let s = FaultSchedule::builder(0).blackout(1, 2, 1, 4).build();
        assert_eq!(s.ops()[0], (1, FaultOp::PartitionStart { a: 0b0010, b: 0b1101 }));
    }

    #[test]
    fn node_mask_builds() {
        assert_eq!(node_mask(&[0, 2, 5]), 0b100101);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn bad_burst_loss_rejected() {
        FaultSchedule::builder(0).op(0, FaultOp::BurstStart { loss: 1.5 }).build();
    }

    #[test]
    #[should_panic(expected = "partition sides overlap")]
    fn overlapping_partition_rejected() {
        FaultSchedule::builder(0)
            .op(0, FaultOp::PartitionStart { a: 0b11, b: 0b10 })
            .build();
    }

    #[test]
    #[should_panic(expected = "must be finite and > 0")]
    fn bad_skew_rejected() {
        FaultSchedule::builder(0)
            .op(0, FaultOp::ClockSkew { node: 0, factor: 0.0 })
            .build();
    }

    #[test]
    fn crash_restore_after_expands_to_snapshot_restore_pair() {
        let s = FaultSchedule::builder(3).crash_restore_after(1_000, 500, 7).build();
        assert_eq!(
            s.ops(),
            &[
                (1_000, FaultOp::NodeDown { node: 7, drop_state: false }),
                (1_500, FaultOp::NodeUp { node: 7 }),
            ]
        );
    }

    #[test]
    fn try_build_accepts_staggered_crashes() {
        let s = FaultSchedule::builder(0)
            .crash_restart(100, 200, 1)
            .crash_restore_after(300, 50, 1)
            .process_kill_restart(400, 500, 1)
            .crash_restart(150, 180, 2) // other node, nested in node 1's window
            .try_build()
            .expect("staggered per-node intervals are valid");
        assert_eq!(s.len(), 8);
    }

    #[test]
    fn try_build_rejects_overlapping_crash_intervals() {
        let err = FaultSchedule::builder(0)
            .crash_restart(100, 400, 5)
            .crash_restore_after(250, 100, 5)
            .try_build()
            .unwrap_err();
        assert_eq!(
            err,
            ScheduleError::OverlappingCrash { node: 5, first_down: 100, second_down: 250 }
        );
        assert!(err.to_string().contains("node 5"));
    }

    #[test]
    fn try_build_rejects_kill_during_power_fault() {
        // Cross-family overlap: a process kill while the host is powered
        // off is the same stacked-downtime bug.
        let err = FaultSchedule::builder(0)
            .power_cycle(100, 300, 2)
            .process_kill_restart(200, 250, 2)
            .try_build()
            .unwrap_err();
        assert!(matches!(err, ScheduleError::OverlappingCrash { node: 2, .. }));
    }

    #[test]
    fn try_build_reports_invalid_ops_as_typed_errors() {
        let err = FaultSchedule::builder(0)
            .op(9, FaultOp::BurstStart { loss: 2.0 })
            .try_build()
            .unwrap_err();
        assert!(matches!(err, ScheduleError::InvalidOp { t_nanos: 9, .. }));
        assert!(err.to_string().contains("outside [0, 1]"));
    }

    #[test]
    fn try_build_allows_unhealed_crash() {
        // A never-restored node is a legal script (unhealed-fault tests rely
        // on it); only *stacked* downtime is rejected.
        let s = FaultSchedule::builder(0)
            .op(100, FaultOp::NodeDown { node: 0, drop_state: true })
            .try_build()
            .expect("a single unhealed crash is fine");
        assert_eq!(s.len(), 1);
    }
}
