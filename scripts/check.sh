#!/usr/bin/env bash
# Full local gate: release build, test suite, warning-free clippy, the
# model checker in smoke mode (bounded exhaustive sweep of the session,
# lease, and registrar-replication protocols — see DESIGN.md §9/§15) run
# sequentially and with 2 and 4 workers and diffed (the sharded engine's
# determinism contract, DESIGN.md §12), one traced smoke experiment
# exercising the telemetry pipeline end to end (DESIGN.md §10), the
# fixed-seed E9 chaos walkthrough — every layer recovered within its
# deadline, zero stale lookups through the registrar-churn storm, and the
# whole report byte-identical across two runs (DESIGN.md §11/§15) — the
# optimizer-validation smoke gate: optimize the shipped brightness
# registration and diff its results against the unoptimized program on
# three seed-driven input sweeps (DESIGN.md §13), and the aroma-lint
# determinism gate: zero unwaived nondet-order or sim-purity findings
# across the workspace, every waiver carrying a reason (DESIGN.md §14).
# Run from the repository root: ./scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --all-targets -- -D warnings

# Parallel-determinism gate: the 50k-state smoke sweep must print the
# byte-identical report at 1, 2, and 4 workers (only the
# wall-clock-dependent transitions/s figure is stripped before the diff).
strip_rates='s/([0-9]* transitions\/s)//; s/, [0-9]* worker(s))/)/'
seq_out=$(cargo run --release --example model_check -- --max-states 50000 --workers 1 \
  | sed "$strip_rates")
for workers in 2 4; do
  par_out=$(cargo run --release --example model_check -- --max-states 50000 --workers "$workers" \
    | sed "$strip_rates")
  diff <(printf '%s\n' "$seq_out") <(printf '%s\n' "$par_out") \
    || { echo "FAIL: model-check report at $workers workers diverges from sequential"; exit 1; }
done
printf '%s\n' "$seq_out" | grep -q 'model_check: all protocol properties verified'
# The smoke sweep must include the replication model with zero violations
# (the PR 9 safety gate: at-most-one-active-primary, no-committed-lease-
# lost, no-stale-lookup over the bounded interleaving sweep).
printf '%s\n' "$seq_out" | grep -q 'replication protocol'

# Capture before grepping: `… | grep -q` closes the pipe at the first
# match and the producer's remaining println!s die on EPIPE — a race that
# fails the gate on output that is actually correct.
e2_out=$(cargo run --release -p lpc-bench --bin repro -- --quick --metrics e2)
grep -q '"net.mac.tx_attempts"' <<<"$e2_out"
e9_out=$(cargo run --release -p lpc-bench --bin repro -- --experiment e9 --seed 233)
grep -q 'chaos recovery: all layers within deadline' <<<"$e9_out"
# Registrar-churn gate: the replicated cluster must have served zero
# stale rows through replica rejoin, primary failover, and the flapper…
grep -q 'registrar churn: zero stale lookups' <<<"$e9_out"
# …and the storm must be a pure function of its seed: a second run of
# the same walkthrough diffs byte-for-byte against the first.
e9_out2=$(cargo run --release -p lpc-bench --bin repro -- --experiment e9 --seed 233)
diff <(printf '%s\n' "$e9_out") <(printf '%s\n' "$e9_out2") \
  || { echo "FAIL: E9 chaos walkthrough is not byte-identical across runs"; exit 1; }

# Broadcast-determinism gate: a fixed-seed multi-viewer fan-out run must
# be a pure function of its seed — `fanout-smoke` prints the run's
# digest, counters, and convergence, and two runs must agree byte-for-
# byte (the same double-run check every `--fanout` scale point applies
# internally; DESIGN.md §16).
fan_a=$(cargo run --release -p lpc-bench --bin repro -- --quick fanout-smoke)
fan_b=$(cargo run --release -p lpc-bench --bin repro -- --quick fanout-smoke)
diff <(printf '%s\n' "$fan_a") <(printf '%s\n' "$fan_b") \
  || { echo "FAIL: broadcast fan-out is not byte-identical across runs"; exit 1; }
grep -q 'converged=100' <<<"$fan_a" \
  || { echo "FAIL: fan-out smoke run left viewers unconverged"; exit 1; }

# Optimizer-validation gate: the translation-validated optimizer's output
# must agree with the unoptimized registration on every probed input, for
# three independent seeds (the example exits non-zero on any divergence).
for seed in 11 42 233; do
  opt_out=$(cargo run --release --example optimize_proxy -- "$seed")
  grep -q 'optimizer validation: OK' <<<"$opt_out" \
    || { echo "FAIL: optimizer validation diverged at seed $seed"; exit 1; }
done

# Determinism gate: every .rs file in the workspace lexes cleanly and
# carries zero unwaived nondet-order / sim-purity findings (DESIGN.md §14).
# --deny exits 1 on any blocking finding, 2 on any unparseable file.
cargo run --release -p aroma-lint -- --deny \
  || { echo "FAIL: aroma-lint found unwaived determinism hazards"; exit 1; }
# JSON smoke: the machine-readable report renders and carries the summary.
lint_json=$(cargo run --release -p aroma-lint -- --json)
grep -q '"files_scanned"' <<<"$lint_json"
