#!/usr/bin/env bash
# Full local gate: release build, test suite, warning-free clippy, the
# model checker in smoke mode (bounded exhaustive sweep of the session and
# lease protocols — see DESIGN.md §9), and one traced smoke experiment
# exercising the telemetry pipeline end to end (DESIGN.md §10).
# Run from the repository root: ./scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --all-targets -- -D warnings
cargo run --release --example model_check -- --max-states 50000
cargo run --release -p lpc-bench --bin repro -- --quick --metrics e2 \
  | grep -q '"net.mac.tx_attempts"'
