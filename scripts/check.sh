#!/usr/bin/env bash
# Full local gate: release build, test suite, and warning-free clippy.
# Run from the repository root: ./scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --all-targets -- -D warnings
