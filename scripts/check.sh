#!/usr/bin/env bash
# Full local gate: release build, test suite, warning-free clippy, the
# model checker in smoke mode (bounded exhaustive sweep of the session and
# lease protocols — see DESIGN.md §9), one traced smoke experiment
# exercising the telemetry pipeline end to end (DESIGN.md §10), and the
# fixed-seed E9 chaos walkthrough, asserting every layer recovered from the
# injected fault storm within its deadline (DESIGN.md §11).
# Run from the repository root: ./scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --all-targets -- -D warnings
cargo run --release --example model_check -- --max-states 50000
cargo run --release -p lpc-bench --bin repro -- --quick --metrics e2 \
  | grep -q '"net.mac.tx_attempts"'
cargo run --release -p lpc-bench --bin repro -- --experiment e9 --seed 233 \
  | grep -q 'chaos recovery: all layers within deadline'
