#!/usr/bin/env bash
# Perf trajectory: run the model-checker thread-scaling sweep (states/sec
# at 1/2/4 workers on the session and lease models, cross-checked for
# byte-identical reports) plus the fixed-seed E9 chaos recovery times, and
# write the result to BENCH_check.json at the repository root; then run
# the mobile-code execution-tier sweep (checked interpreter vs verified
# fast path vs translation-validated optimized programs, runs/sec on the
# brightness proxy, a padded registration, and a counted loop) and write
# BENCH_mcode.json. Numbers are hardware-honest — the JSON records
# available_parallelism, and every point with workers beyond it is tagged
# oversubscribed: true (coordination overhead, not speedup). Pass --quick
# for a reduced sweep (20k-state / 20k-run bounds).
#
# Pass --scaling for the quick sharded-scaling mode: only the checker
# sweep runs (states/sec at 1/2/4 workers with oversubscription flags),
# and the entry is APPENDED to BENCH_check.json so the perf trajectory
# accumulates across engine changes instead of overwriting its history.
#
# Pass --discovery for the lease-table scaling mode: the flat
# ServiceRegistry and the hash-sharded ShardedRegistry are swept at 10^4,
# 10^5, and 10^6 live leases (register/renew throughput, lookup
# throughput, and p50/p99 lookup latency), and the entry is APPENDED to
# BENCH_disc.json under the same trajectory-accumulation contract.
#
# Pass --fanout for the broadcast fan-out mode: one screen server streams
# to 10/100/1k/10k viewers over a wired star (msgs per wall-clock second,
# bytes per update, allocations per update from buffer-pool misses, and
# the encodes-vs-updates ratio that proves encode-once fan-out); each
# scale point runs twice with the same seed and refuses to report unless
# the runs' digests match. The entry is APPENDED to BENCH_fanout.json.
# Run from the repository root:
#   ./scripts/bench.sh [--quick] [--scaling | --discovery | --fanout]
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p lpc-bench
cargo run --release -p lpc-bench --bin repro -- "$@" bench
