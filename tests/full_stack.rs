//! Workspace-spanning integration tests: the complete Smart Projector
//! pipeline (discovery → sessions → VNC → control) across every crate, and
//! the correspondence between the *executable* system and its *LPC
//! analysis* description.

use aroma_discovery::apps::RegistrarApp;
use aroma_env::radio::RadioEnvironment;
use aroma_env::space::Point;
use aroma_env::EnvironmentKind;
use aroma_net::{MacConfig, Network, NodeConfig};
use aroma_sim::SimDuration;
use aroma_vnc::SlideDeck;
use lpc_core::{Layer, UserProfile};
use smart_projector::laptop::{Phase, PresenterLaptopApp, PresenterScript};
use smart_projector::session::SessionPolicy;
use smart_projector::{smart_projector_system, ProjectorVariant, SmartProjectorApp};

fn env() -> RadioEnvironment {
    RadioEnvironment {
        shadowing_sigma_db: 0.0,
        ..Default::default()
    }
}

#[test]
fn the_papers_four_entities_cooperate_end_to_end() {
    // "There are four major physical and logical entities in our example:
    // a user wishing to make a presentation; the laptop; the smart
    // projector; and the Jini Lookup Service."
    let mut net = Network::new(env(), MacConfig::default(), 11);
    let _lookup = net.add_node(
        NodeConfig::at(Point::new(0.0, 0.0)),
        Box::new(RegistrarApp::new(SimDuration::from_secs(30))),
    );
    let projector = net.add_node(
        NodeConfig::at(Point::new(4.0, 0.0)),
        Box::new(SmartProjectorApp::new(
            320,
            240,
            SessionPolicy::ManualRelease,
            "A-101",
        )),
    );
    let laptop = net.add_node(
        NodeConfig::at(Point::new(2.0, 3.0)),
        Box::new(PresenterLaptopApp::new(
            PresenterScript {
                present_for: SimDuration::from_secs(10),
                ..Default::default()
            },
            320,
            240,
            Box::new(SlideDeck::new(5.0)),
        )),
    );
    net.run_for(SimDuration::from_secs(8));

    let lap = net.app_as::<PresenterLaptopApp>(laptop).unwrap();
    assert_eq!(lap.phase, Phase::Presenting);
    assert!(lap.projecting_at.is_some());
    assert!(lap.commands_ok >= 1);
    let proj = net.app_as::<SmartProjectorApp>(projector).unwrap();
    assert_eq!(proj.registrations, 2);
    assert!(proj.state.powered);
    assert_eq!(
        proj.projected_digest().expect("projection live"),
        lap.screen_digest(),
        "the audience must see the presenter's screen"
    );
}

#[test]
fn rapid_animation_degrades_on_the_wireless_link() {
    // The executable counterpart of the analysis's physical-layer issue:
    // the same pipeline with animation content completes far fewer frames
    // at a forced-low rate than with slides.
    use aroma_net::{Rate, RateAdaptation};
    let run = |animation: bool| -> u64 {
        let mut net = Network::new(env(), MacConfig::default(), 13);
        let cfg = |p| NodeConfig {
            adapt: RateAdaptation::Fixed(Rate::R2),
            ..NodeConfig::at(p)
        };
        let _lookup = net.add_node(
            cfg(Point::new(0.0, 0.0)),
            Box::new(RegistrarApp::new(SimDuration::from_secs(30))),
        );
        let projector = net.add_node(
            cfg(Point::new(4.0, 0.0)),
            Box::new(SmartProjectorApp::new(
                320,
                240,
                SessionPolicy::ManualRelease,
                "A-101",
            )),
        );
        // "Rapid animation" with video-like (incompressible) content — a
        // solid bouncing box would RLE away; full-motion content is what
        // actually saturated VNC over the 2.4 GHz card.
        let source: Box<dyn aroma_vnc::ScreenSource> = if animation {
            Box::new(aroma_vnc::NoiseVideo::new(15.0, 5))
        } else {
            Box::new(SlideDeck::new(30.0))
        };
        let _laptop = net.add_node(
            cfg(Point::new(2.0, 3.0)),
            Box::new(PresenterLaptopApp::new(
                PresenterScript {
                    present_for: SimDuration::from_secs(20),
                    commands: vec![],
                    ..Default::default()
                },
                320,
                240,
                source,
            )),
        );
        net.run_for(SimDuration::from_secs(10));
        let proj = net.app_as::<SmartProjectorApp>(projector).unwrap();
        proj.viewer
            .as_ref()
            .map(|v| v.updates_completed)
            .unwrap_or(0)
    };
    let slides = run(false);
    let animation = run(true);
    assert!(slides > 0 && animation > 0);
    assert!(
        animation * 2 <= slides + slides / 2 + 2,
        "animation ({animation}) should complete clearly fewer updates than slides ({slides}) at 2 Mbps"
    );
}

#[test]
fn analysis_predicts_what_the_simulation_shows() {
    // The LPC analysis flags the prototype as abandoning casual users at
    // the abstract layer; the behavioural simulator must agree.
    let sys = smart_projector_system(
        ProjectorVariant::Prototype,
        EnvironmentKind::ConferenceHall,
        vec![UserProfile::casual()],
        false,
    );
    let report = sys.analyze(3);
    let predicted_abandon = report
        .in_layer(Layer::Abstract)
        .any(|i| i.description.contains("abandons"));

    // Behavioural ground truth over many seeds.
    let burden = lpc_bench::experiments::burden::run_burden(
        &UserProfile::casual(),
        ProjectorVariant::Prototype,
        lpc_core::user_sim::PlannerKind::Bfs,
        300,
        99,
    );
    if predicted_abandon {
        assert!(
            burden.abandonment > 0.2,
            "analysis predicted abandonment but simulation says {:.2}",
            burden.abandonment
        );
    }
    // And the commercial variant must clear it in both views.
    let sys_c = smart_projector_system(
        ProjectorVariant::Commercial,
        EnvironmentKind::ConferenceHall,
        vec![UserProfile::casual()],
        false,
    );
    let report_c = sys_c.analyze(3);
    assert!(
        !report_c
            .in_layer(Layer::Abstract)
            .any(|i| i.description.contains("abandons")),
        "{}",
        report_c.render()
    );
    let burden_c = lpc_bench::experiments::burden::run_burden(
        &UserProfile::casual(),
        ProjectorVariant::Commercial,
        lpc_core::user_sim::PlannerKind::Bfs,
        300,
        99,
    );
    assert_eq!(burden_c.abandonment, 0.0);
}

#[test]
fn every_experiment_runs_in_quick_mode() {
    for id in lpc_bench::experiments::ALL_IDS {
        let out = lpc_bench::experiments::run(id, true).expect("registered");
        assert!(!out.tables.is_empty(), "{id} produced no tables");
        for (caption, table) in &out.tables {
            assert!(!table.is_empty(), "{id}: empty table '{caption}'");
        }
        // Rendering never panics and contains the id header.
        let rendered = out.render();
        assert!(rendered.contains(&id.to_uppercase()));
    }
}
