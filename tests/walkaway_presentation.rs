//! Cross-crate story test: the presenter wanders off mid-presentation.
//!
//! Combines mobility (aroma-net), the VNC pipeline (aroma-vnc), sessions
//! (smart-projector) and auto-expiry: as the laptop walks out of range the
//! projection stalls, the viewer logs recovery attempts, and once the
//! laptop is unreachable the idle session eventually expires so the next
//! presenter can take over — no administrator involved.

use aroma_discovery::apps::RegistrarApp;
use aroma_env::radio::RadioEnvironment;
use aroma_env::space::Point;
use aroma_net::{MacConfig, MobilityPath, Network, NodeConfig, NodeId};
use aroma_sim::{SimDuration, SimTime};
use aroma_vnc::BouncingBox;
use smart_projector::laptop::{PresenterLaptopApp, PresenterScript};
use smart_projector::session::SessionPolicy;
use smart_projector::SmartProjectorApp;

#[test]
fn wandering_presenter_loses_projection_and_session_recovers() {
    let env = RadioEnvironment {
        shadowing_sigma_db: 0.0,
        ..Default::default()
    };
    let mut net = Network::new(env, MacConfig::default(), 77);
    let _registrar = net.add_node(
        NodeConfig::at(Point::new(0.0, 0.0)),
        Box::new(RegistrarApp::new(SimDuration::from_secs(60))),
    );
    let projector = net.add_node(
        NodeConfig::at(Point::new(3.0, 0.0)),
        Box::new(SmartProjectorApp::new(
            160,
            128,
            SessionPolicy::AutoExpire {
                idle: SimDuration::from_secs(10),
            },
            "A-101",
        )),
    );
    // The presenter starts nearby, presents, then strolls 600 m away
    // between t=10 s and t=30 s (animation keeps content flowing while the
    // link lasts). The presenter never releases — walking off is the bug.
    let walk = MobilityPath::line(
        Point::new(2.0, 3.0),
        Point::new(600.0, 3.0),
        SimTime::ZERO + SimDuration::from_secs(10),
        SimDuration::from_secs(20),
    );
    let wanderer: NodeId = net.add_node(
        NodeConfig::at(Point::new(2.0, 3.0)).moving(walk),
        Box::new(PresenterLaptopApp::new(
            PresenterScript {
                present_for: SimDuration::from_secs(120), // intends to stay
                release_on_finish: false,
                ..Default::default()
            },
            160,
            128,
            Box::new(BouncingBox::new()),
        )),
    );

    // Phase 1: presenting normally.
    net.run_for(SimDuration::from_secs(8));
    {
        let proj = net.app_as::<SmartProjectorApp>(projector).unwrap();
        assert!(proj.viewer.is_some(), "projection should be live");
        let updates_early = proj.viewer.as_ref().unwrap().updates_completed;
        assert!(updates_early > 20, "updates before walking: {updates_early}");
    }

    // Phase 2: walk away; the link dies somewhere past ~250 m.
    net.run_for(SimDuration::from_secs(25));
    let far = net.position_of(wanderer).x;
    assert!(far > 500.0, "walker should be far away: {far}");

    // Phase 3: with the owner unreachable and idle, the projection session
    // expires and the projector is free again.
    net.run_for(SimDuration::from_secs(30));
    let proj = net.app_as::<SmartProjectorApp>(projector).unwrap();
    let mut sessions = proj.projection_sessions.clone();
    assert!(
        sessions.is_free(net.now()),
        "auto-expiry should have freed the projection session"
    );
    assert!(
        proj.projection_sessions.stats.expirations + proj.control_sessions.stats.expirations >= 1,
        "at least one session must have lapsed by inactivity"
    );
}
