//! Offline stand-in for `proptest`.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a generate-only property-testing core with the API subset its tests
//! use: the [`proptest!`] macro (with `#![proptest_config(..)]`),
//! `prop_assert*`/`prop_assume!`, [`Strategy`] with
//! `prop_map`/`prop_flat_map`/`boxed`, [`prop_oneof!`], `any::<T>()`,
//! integer/float range strategies, tuple strategies, `Just`,
//! `prop::collection::vec`, `prop::option::of`, and regex-literal string
//! strategies (a small generator covering the patterns used here).
//!
//! Differences from the real crate, deliberately accepted:
//! - **No shrinking.** A failing case reports its case number and the
//!   test's deterministic seed; re-running reproduces it exactly.
//! - **Fixed deterministic seeding** per test name, so CI runs are stable.
//! - Value distributions are simpler (uniform with a light bias toward
//!   edge values for `any`), which is adequate for the invariants tested.

#![forbid(unsafe_code)]

pub mod rng {
    //! Deterministic generator driving all strategies (SplitMix64).

    /// Deterministic RNG; equal seeds give equal streams.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Stream from a raw seed.
        pub fn new(seed: u64) -> TestRng {
            TestRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// Stream seeded from a test name (stable FNV-1a hash).
        pub fn from_name(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng::new(h)
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: u128) -> u128 {
            debug_assert!(n > 0);
            let wide = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
            wide % n
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use crate::rng::TestRng;
    use std::rc::Rc;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Produce one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { base: self, f }
        }

        /// Derive a second strategy from each generated value.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { base: self, f }
        }

        /// Type-erase the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.generate(rng)))
        }
    }

    /// Always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) base: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    /// Result of [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        pub(crate) base: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.base.generate(rng)).generate(rng)
        }
    }

    /// Type-erased strategy (what [`prop_oneof!`](crate::prop_oneof) builds on).
    #[derive(Clone)]
    pub struct BoxedStrategy<T>(pub(crate) Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Uniform choice among alternatives of one value type.
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Build from type-erased arms; must be non-empty.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u128) as usize;
            self.arms[i].generate(rng)
        }
    }

    macro_rules! tuple_strategy {
        ($($S:ident $idx:tt),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(S0 0);
    tuple_strategy!(S0 0, S1 1);
    tuple_strategy!(S0 0, S1 1, S2 2);
    tuple_strategy!(S0 0, S1 1, S2 2, S3 3);
    tuple_strategy!(S0 0, S1 1, S2 2, S3 3, S4 4);
    tuple_strategy!(S0 0, S1 1, S2 2, S3 3, S4 4, S5 5);
    tuple_strategy!(S0 0, S1 1, S2 2, S3 3, S4 4, S5 5, S6 6);
    tuple_strategy!(S0 0, S1 1, S2 2, S3 3, S4 4, S5 5, S6 6, S7 7);

    macro_rules! int_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + rng.below(width) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let width = (hi as i128 - lo as i128) as u128 + 1;
                    (lo as i128 + rng.below(width) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeFrom<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let lo = self.start;
                    let width = (<$t>::MAX as i128 - lo as i128) as u128 + 1;
                    (lo as i128 + rng.below(width) as i128) as $t
                }
            }
        )+};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            // Land exactly on the endpoints now and then.
            match rng.below(32) {
                0 => lo,
                1 => hi,
                _ => lo + rng.unit_f64() * (hi - lo),
            }
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` — default strategies per type.

    use crate::rng::TestRng;
    use crate::strategy::Strategy;
    use std::marker::PhantomData;

    /// Types with a default generation recipe.
    pub trait Arbitrary {
        /// Produce an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// Strategy produced by [`any`].
    pub struct Any<T>(PhantomData<T>);

    /// The default strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),+) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    // Bias toward boundary values, where integer bugs live.
                    match rng.below(8) {
                        0 => 0 as $t,
                        1 => 1 as $t,
                        2 => <$t>::MAX,
                        3 => <$t>::MIN,
                        _ => rng.next_u64() as $t,
                    }
                }
            }
        )+};
    }
    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite values only; magnitude spans everyday simulation scales.
            (rng.unit_f64() - 0.5) * 2e9
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> char {
            char::from_u32(0x20 + rng.below(0x5F) as u32).unwrap_or(' ')
        }
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use crate::rng::TestRng;
    use crate::strategy::Strategy;

    /// Inclusive size bounds for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy yielding `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vectors of `element` values with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.lo + rng.below((self.size.hi - self.size.lo + 1) as u128) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! Option strategies (`prop::option::of`).

    use crate::rng::TestRng;
    use crate::strategy::Strategy;

    /// Strategy yielding `Option`s of an inner strategy's values.
    pub struct OptionStrategy<S>(S);

    /// `None` about a quarter of the time, `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

pub mod string {
    //! Regex-literal string strategies.
    //!
    //! `&'static str` is a strategy producing strings matched by the
    //! pattern, like the real crate. The tiny generator covers the
    //! pattern features used in this workspace: literal characters,
    //! character classes with ranges (`[a-z0-9_-]`), the printable class
    //! `\PC`, the escapes `\\ \. \n \t`, and the quantifiers `*`, `+`,
    //! `?`, `{m}`, `{m,n}`.

    use crate::rng::TestRng;
    use crate::strategy::Strategy;

    enum Atom {
        Lit(char),
        Class(Vec<(char, char)>),
        Printable,
    }

    struct Piece {
        atom: Atom,
        min: usize,
        max: usize,
    }

    fn parse(pattern: &str) -> Vec<Piece> {
        let mut chars = pattern.chars().peekable();
        let mut pieces = Vec::new();
        while let Some(c) = chars.next() {
            let atom = match c {
                '[' => {
                    let mut ranges = Vec::new();
                    let mut prev: Option<char> = None;
                    loop {
                        let c = chars.next().expect("unterminated character class");
                        match c {
                            ']' => break,
                            '-' if prev.is_some() && chars.peek() != Some(&']') => {
                                let lo = prev.take().expect("range needs a start");
                                let hi = chars.next().expect("range needs an end");
                                ranges.push((lo, hi));
                            }
                            _ => {
                                if let Some(p) = prev.replace(c) {
                                    ranges.push((p, p));
                                }
                            }
                        }
                    }
                    if let Some(p) = prev {
                        ranges.push((p, p));
                    }
                    assert!(!ranges.is_empty(), "empty character class");
                    Atom::Class(ranges)
                }
                '\\' => match chars.next().expect("dangling escape") {
                    'P' => {
                        // `\PC`: anything that is not a control character.
                        let cat = chars.next().expect("\\P needs a category");
                        assert_eq!(cat, 'C', "only \\PC is supported");
                        Atom::Printable
                    }
                    'n' => Atom::Lit('\n'),
                    't' => Atom::Lit('\t'),
                    other => Atom::Lit(other),
                },
                '.' => Atom::Printable,
                other => Atom::Lit(other),
            };
            let (min, max) = match chars.peek() {
                Some('*') => {
                    chars.next();
                    (0, 16)
                }
                Some('+') => {
                    chars.next();
                    (1, 16)
                }
                Some('?') => {
                    chars.next();
                    (0, 1)
                }
                Some('{') => {
                    chars.next();
                    let mut spec = String::new();
                    for c in chars.by_ref() {
                        if c == '}' {
                            break;
                        }
                        spec.push(c);
                    }
                    match spec.split_once(',') {
                        Some((m, n)) => (
                            m.trim().parse().expect("bad {m,n}"),
                            n.trim().parse().expect("bad {m,n}"),
                        ),
                        None => {
                            let m = spec.trim().parse().expect("bad {m}");
                            (m, m)
                        }
                    }
                }
                _ => (1, 1),
            };
            pieces.push(Piece { atom, min, max });
        }
        pieces
    }

    fn gen_atom(atom: &Atom, rng: &mut TestRng) -> char {
        match atom {
            Atom::Lit(c) => *c,
            Atom::Class(ranges) => {
                let (lo, hi) = ranges[rng.below(ranges.len() as u128) as usize];
                let span = hi as u32 - lo as u32 + 1;
                char::from_u32(lo as u32 + rng.below(span as u128) as u32).unwrap_or(lo)
            }
            Atom::Printable => char::from_u32(0x20 + rng.below(0x5F) as u32).unwrap_or(' '),
        }
    }

    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for piece in parse(self) {
                let n = piece.min + rng.below((piece.max - piece.min + 1) as u128) as usize;
                for _ in 0..n {
                    out.push(gen_atom(&piece.atom, rng));
                }
            }
            out
        }
    }
}

pub mod test_runner {
    //! Run configuration ([`ProptestConfig`]).

    /// Per-test configuration; only `cases` is interpreted.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// How many generated cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }
}

pub mod prelude {
    //! Everything a property test file imports.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// The `prop::` module alias used by test files.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
        pub use crate::strategy;
    }
}

/// Define property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a test running `body` over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::rng::TestRng::from_name(stringify!($name));
                for __case in 0..__cfg.cases {
                    $( let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng); )+
                    let __outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                        || -> ::std::ops::ControlFlow<()> {
                            $body
                            #[allow(unreachable_code)]
                            ::std::ops::ControlFlow::Continue(())
                        },
                    ));
                    if let Err(panic) = __outcome {
                        eprintln!(
                            "proptest stub: `{}` failed on case {}/{} (deterministic seed; rerun reproduces)",
                            stringify!($name), __case + 1, __cfg.cases,
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}

/// Assert within a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Assert equality within a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Assert inequality within a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skip the current case unless a precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::ops::ControlFlow::Break(());
        }
    };
}

/// Uniform choice among strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($arm) ),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u8..7, y in 10u64..=20, z in -5i64..5) {
            prop_assert!((3..7).contains(&x));
            prop_assert!((10..=20).contains(&y));
            prop_assert!((-5..5).contains(&z));
        }

        #[test]
        fn vec_sizes_respected(v in prop::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn oneof_and_just_work(v in prop_oneof![Just(1u8), Just(2u8), 3u8..10]) {
            prop_assert!((1..10).contains(&v));
        }

        #[test]
        fn regex_literals_generate_matching(s in "[a-z]{2,4}") {
            prop_assert!(s.len() >= 2 && s.len() <= 4);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }

        #[test]
        fn assume_skips(n in 0u8..10) {
            prop_assume!(n != 3);
            prop_assert_ne!(n, 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn config_cases_accepted(x in any::<bool>()) {
            let _ = x;
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let mut a = crate::rng::TestRng::from_name("t");
        let mut b = crate::rng::TestRng::from_name("t");
        let s = crate::collection::vec(any::<u64>(), 0..8);
        for _ in 0..16 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
