//! Offline stand-in for `crossbeam`.
//!
//! Re-implements the two pieces the workspace uses — unbounded MPMC-ish
//! channels and scoped threads — over `std::sync::mpsc` and
//! `std::thread::scope`. The visible API mirrors crossbeam 0.8's shapes
//! closely enough for the call sites here (clonable `Sender`, `recv()`
//! ending with an error after all senders drop, `scope(|s| …)` returning
//! `Result`).

#![forbid(unsafe_code)]

/// Channels (`crossbeam::channel` subset).
pub mod channel {
    use std::sync::mpsc;

    /// Sending half; clonable.
    #[derive(Debug)]
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    /// Receiving half.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    /// Error returned when the channel is disconnected.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned when the receiving side is gone.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> Sender<T> {
        /// Send a value; fails only when every receiver is dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value).map_err(|e| SendError(e.0))
        }
    }

    impl<T> Receiver<T> {
        /// Block for the next value; fails when all senders are dropped
        /// and the queue is drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Non-blocking iterator draining currently queued values.
        pub fn try_iter(&self) -> impl Iterator<Item = T> + '_ {
            self.0.try_iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;
        fn into_iter(self) -> Self::IntoIter {
            self.0.into_iter()
        }
    }

    /// An unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }
}

/// Scoped threads (`crossbeam::thread` subset).
pub mod thread {
    /// Spawn handle scope; mirrors crossbeam's closure-takes-scope shape.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread bound to the scope. The closure receives the
        /// scope again (crossbeam's signature) for nested spawns.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            self.inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Run `f` with a scope; all spawned threads join before returning.
    /// A panic in a worker propagates (so `Ok` is the only value actually
    /// returned, matching how the workspace unwraps it).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn channel_and_scope_cooperate() {
        let (tx, rx) = super::channel::unbounded::<usize>();
        super::thread::scope(|scope| {
            for i in 0..4 {
                let tx = tx.clone();
                scope.spawn(move |_| tx.send(i).unwrap());
            }
            drop(tx);
            let mut got: Vec<usize> = Vec::new();
            while let Ok(i) = rx.recv() {
                got.push(i);
            }
            got.sort_unstable();
            assert_eq!(got, vec![0, 1, 2, 3]);
        })
        .unwrap();
    }
}
