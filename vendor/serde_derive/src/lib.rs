//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` only as documentation of
//! which types are snapshot-able — nothing actually serialises through
//! serde (reports use `aroma-sim`'s built-in JSON emitter). The derives
//! therefore expand to nothing, which keeps every `#[derive(Serialize,
//! Deserialize)]` attribute compiling without a registry.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
