//! Offline stand-in for `rand`.
//!
//! The workspace's randomness is its own deterministic SplitMix64 stream
//! (`aroma-sim::rng::SimRng`); `rand` is referenced only for the
//! [`RngCore`] trait that `SimRng` implements for interoperability. This
//! stub carries that trait (0.8-series shape) and the [`Error`] type its
//! fallible method returns.

#![forbid(unsafe_code)]

use std::fmt;

/// Error type for fallible [`RngCore`] operations (never produced by the
/// generators in this workspace).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error")
    }
}

impl std::error::Error for Error {}

/// The core random-number-generator interface (rand 0.8 shape).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible [`RngCore::fill_bytes`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}
