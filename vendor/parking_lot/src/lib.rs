//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s panic-on-poison-free
//! API shape (`lock()` returns the guard directly). Poisoning is converted
//! to a panic, which matches how the workspace uses the real crate: a
//! poisoned lock means a worker already panicked.

#![forbid(unsafe_code)]

/// Mutex whose `lock` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquire the lock.
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.0.lock().expect("mutex poisoned")
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().expect("mutex poisoned")
    }
}

/// Reader-writer lock whose `read`/`write` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Acquire a shared read guard.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0.read().expect("rwlock poisoned")
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0.write().expect("rwlock poisoned")
    }
}
