//! Offline stand-in for `criterion`.
//!
//! A minimal wall-clock benchmark harness exposing the API subset the
//! workspace's benches use: `Criterion::bench_function`,
//! `benchmark_group` (with `sample_size`, ignored beyond scaling the
//! measurement budget), `Bencher::iter`/`iter_batched`, `BatchSize`, and
//! the `criterion_group!`/`criterion_main!` macros. Each bench warms up
//! briefly, then measures for a fixed budget and prints mean ns/iter —
//! no statistics engine, no reports, but relative comparisons (e.g.
//! checked vs verified interpreter) remain meaningful.
//!
//! Set `CRITERION_STUB_MS` to change the per-bench measurement budget
//! (default 120 ms; `CRITERION_STUB_MS=0` runs a single iteration, which
//! is what the test suite uses to smoke the benches quickly).

#![forbid(unsafe_code)]

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How batched inputs are grouped; the stub treats every variant alike.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

fn budget() -> Duration {
    let ms = std::env::var("CRITERION_STUB_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(120);
    Duration::from_millis(ms)
}

/// Per-bench measurement driver.
pub struct Bencher {
    budget: Duration,
    /// (total duration, iterations) accumulated by the routine.
    measured: Option<(Duration, u64)>,
}

impl Bencher {
    /// Time `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + calibration: find an iteration count that fits the budget.
        let start = Instant::now();
        std_black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(10));
        let budget = self.budget;
        let iters = (budget.as_nanos() / once.as_nanos()).clamp(1, 10_000_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            std_black_box(routine());
        }
        self.measured = Some((start.elapsed(), iters));
    }

    /// Time `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        std_black_box(routine(input));
        let once = start.elapsed().max(Duration::from_nanos(10));
        let budget = self.budget;
        let iters = (budget.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let mut total = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            std_black_box(routine(input));
            total += start.elapsed();
        }
        self.measured = Some((total, iters));
    }
}

fn run_one(name: &str, budget: Duration, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        budget,
        measured: None,
    };
    f(&mut b);
    match b.measured {
        Some((total, iters)) if iters > 0 => {
            let per = total.as_nanos() as f64 / iters as f64;
            println!("bench {name:<48} {per:>14.1} ns/iter ({iters} iters)");
        }
        _ => println!("bench {name:<48} (no measurement)"),
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Run a named benchmark.
    pub fn bench_function<N: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        name: N,
        mut f: F,
    ) -> &mut Self {
        run_one(name.as_ref(), budget(), &mut f);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            prefix: name.to_string(),
        }
    }
}

/// A named group; bench names are printed as `group/name`.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    prefix: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub's budget is time-based.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run a named benchmark within the group.
    pub fn bench_function<N: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        name: N,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.prefix, name.as_ref());
        run_one(&full, budget(), &mut f);
        self
    }

    /// End the group (no-op; present for API compatibility).
    pub fn finish(self) {}
}

/// Define a bench group function from target functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Define `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
