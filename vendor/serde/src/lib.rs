//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize`/`Deserialize` *names* (marker traits plus
//! no-op derive macros from the sibling `serde_derive` stub) so the
//! workspace's `#[derive(Serialize, Deserialize)]` annotations compile
//! without crates.io. No serialisation framework is included — the repo's
//! JSON output goes through `aroma-sim::report`'s built-in emitter.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
