//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the small API subset it actually uses: cheaply-cloneable immutable
//! [`Bytes`] (reference-counted storage + view range), growable
//! [`BytesMut`], and the [`Buf`]/[`BufMut`] cursor traits with the
//! big-endian (and the two little-endian) accessors the codecs call.
//! Semantics match the real crate for this subset; anything outside it is
//! intentionally absent so accidental divergence fails at compile time.

#![forbid(unsafe_code)]

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable slice of reference-counted storage.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty `Bytes`.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Wrap a static byte slice (copied into shared storage; the real crate
    /// borrows it, which only affects allocation, not behaviour).
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes::from(bytes.to_vec())
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-view sharing the same storage.
    ///
    /// # Panics
    /// Panics when the range is out of bounds, like the real crate.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Split off and return the first `at` bytes; `self` keeps the rest.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = self.slice(0..at);
        self.start += at;
        head
    }

    /// Split off and return everything from `at` on; `self` keeps the head.
    pub fn split_off(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_off out of bounds");
        let tail = self.slice(at..);
        self.end = self.start + at;
        tail
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let data: Arc<[u8]> = v.into();
        let end = data.len();
        Bytes {
            data,
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Bytes {
        Bytes::from_static(v)
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Bytes {
        Bytes::from(v.into_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self[..] == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        &self[..] == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self[..] == other[..]
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self[..].hash(state)
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self[..].cmp(&other[..])
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer; freeze into [`Bytes`] when done writing.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with `cap` bytes pre-reserved.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.buf.extend_from_slice(extend);
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

/// Read cursor over a byte source. Accessors panic when the source is
/// shorter than the read, exactly like the real crate — callers gate on
/// [`Buf::remaining`] first.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Skip `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }
    /// Read a big-endian u16.
    fn get_u16(&mut self) -> u16 {
        let v = u16::from_be_bytes(self.chunk()[..2].try_into().unwrap());
        self.advance(2);
        v
    }
    /// Read a little-endian u16.
    fn get_u16_le(&mut self) -> u16 {
        let v = u16::from_le_bytes(self.chunk()[..2].try_into().unwrap());
        self.advance(2);
        v
    }
    /// Read a big-endian u32.
    fn get_u32(&mut self) -> u32 {
        let v = u32::from_be_bytes(self.chunk()[..4].try_into().unwrap());
        self.advance(4);
        v
    }
    /// Read a big-endian u64.
    fn get_u64(&mut self) -> u64 {
        let v = u64::from_be_bytes(self.chunk()[..8].try_into().unwrap());
        self.advance(8);
        v
    }
    /// Read a big-endian i64.
    fn get_i64(&mut self) -> i64 {
        let v = i64::from_be_bytes(self.chunk()[..8].try_into().unwrap());
        self.advance(8);
        v
    }
    /// Copy bytes out, consuming them.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.start += cnt;
    }
}

/// Write cursor that appends to a growable buffer.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, n: u8) {
        self.put_slice(&[n]);
    }
    /// Append a big-endian u16.
    fn put_u16(&mut self, n: u16) {
        self.put_slice(&n.to_be_bytes());
    }
    /// Append a little-endian u16.
    fn put_u16_le(&mut self, n: u16) {
        self.put_slice(&n.to_le_bytes());
    }
    /// Append a big-endian u32.
    fn put_u32(&mut self, n: u32) {
        self.put_slice(&n.to_be_bytes());
    }
    /// Append a big-endian u64.
    fn put_u64(&mut self, n: u64) {
        self.put_slice(&n.to_be_bytes());
    }
    /// Append a big-endian i64.
    fn put_i64(&mut self, n: i64) {
        self.put_slice(&n.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_accessors() {
        let mut m = BytesMut::with_capacity(32);
        m.put_u8(0xAB);
        m.put_u16(0x1234);
        m.put_u16_le(0x1234);
        m.put_u32(0xDEAD_BEEF);
        m.put_u64(42);
        m.put_i64(-7);
        m.put_slice(b"xy");
        let mut b = m.freeze();
        assert_eq!(b.remaining(), 1 + 2 + 2 + 4 + 8 + 8 + 2);
        assert_eq!(b.get_u8(), 0xAB);
        assert_eq!(b.get_u16(), 0x1234);
        assert_eq!(b.get_u16_le(), 0x1234);
        assert_eq!(b.get_u32(), 0xDEAD_BEEF);
        assert_eq!(b.get_u64(), 42);
        assert_eq!(b.get_i64(), -7);
        assert_eq!(&b[..], b"xy");
    }

    #[test]
    fn slice_and_split_share_storage() {
        let mut b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let head = b.split_to(2);
        assert_eq!(&head[..], &[0, 1]);
        assert_eq!(&b[..], &[2, 3, 4, 5]);
        let tail = b.split_off(2);
        assert_eq!(&b[..], &[2, 3]);
        assert_eq!(&tail[..], &[4, 5]);
        assert_eq!(&b.slice(1..2)[..], &[3]);
        assert_eq!(b.slice(..), b);
    }

    #[test]
    fn equality_and_hash_follow_contents() {
        use std::collections::HashSet;
        let a = Bytes::from_static(b"abc");
        let b = Bytes::from(vec![b'a', b'b', b'c']);
        assert_eq!(a, b);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
    }
}
